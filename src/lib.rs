//! # mrls — Multi-Resource List Scheduling of Moldable Parallel Jobs
//!
//! A faithful, production-quality Rust reproduction of
//! *"Multi-Resource List Scheduling of Moldable Parallel Jobs under Precedence
//! Constraints"* (Lucas Perotin, Hongyang Sun, Padma Raghavan — ICPP 2021,
//! [arXiv:2106.07059](https://arxiv.org/abs/2106.07059)).
//!
//! This facade crate re-exports the full workspace so downstream users can
//! depend on a single crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dag`] | `mrls-dag` | precedence graphs, critical paths, series-parallel decomposition |
//! | [`lp`] | `mrls-lp` | self-contained dense simplex LP solver |
//! | [`model`] | `mrls-model` | resources, moldable jobs, speedup models, Pareto profiles, instances |
//! | [`workload`] | `mrls-workload` | synthetic workflow and job generators |
//! | [`core`] | `mrls-core` | the two-phase scheduling algorithm, allocators, list scheduler, theory |
//! | [`baseline`] | `mrls-baseline` | rigid / sequential / Sun-et-al. baselines |
//! | [`analysis`] | `mrls-analysis` | schedule validation, interval analysis, Gantt, statistics |
//! | [`sim`] | `mrls-sim` | discrete-event execution runtime: stochastic perturbations, online arrivals, reactive rescheduling |
//! | [`serve`] | `mrls-serve` | online TCP scheduling service: live job streams, batching rounds, per-tenant metrics |
//!
//! The most common entry points are re-exported at the top level.
//!
//! ## Example
//!
//! ```
//! use mrls::{MrlsScheduler, MrlsConfig};
//! use mrls::workload::InstanceRecipe;
//!
//! // Generate a 30-job layered workflow on 3 resource types of 8 units each.
//! let generated = InstanceRecipe::default_layered(30, 3, 8).generate(42);
//! let result = MrlsScheduler::new(MrlsConfig::default())
//!     .schedule(&generated.instance)
//!     .unwrap();
//! println!(
//!     "makespan = {:.2}, lower bound = {:.2}, ratio = {:.2} (guarantee {:.2})",
//!     result.schedule.makespan,
//!     result.lower_bound,
//!     result.measured_ratio(),
//!     result.params.ratio_guarantee
//! );
//! assert!(result.measured_ratio() <= result.params.ratio_guarantee + 1e-6);
//! ```

#![warn(missing_docs)]

/// Analysis and reporting tools (`mrls-analysis`).
pub use mrls_analysis as analysis;
/// Baseline algorithms (`mrls-baseline`).
pub use mrls_baseline as baseline;
/// The scheduling algorithms (`mrls-core`).
pub use mrls_core as core;
/// The DAG substrate (`mrls-dag`).
pub use mrls_dag as dag;
/// The LP solver (`mrls-lp`).
pub use mrls_lp as lp;
/// The moldable multi-resource job model (`mrls-model`).
pub use mrls_model as model;
/// The online TCP scheduling service (`mrls-serve`).
pub use mrls_serve as serve;
/// The discrete-event execution runtime (`mrls-sim`).
pub use mrls_sim as sim;
/// Workload generators (`mrls-workload`).
pub use mrls_workload as workload;

pub use mrls_core::{
    AllocatorKind, ListScheduler, MrlsConfig, MrlsScheduler, PriorityRule, Schedule,
    ScheduleResult, ScheduledJob,
};
pub use mrls_dag::{Dag, DagBuilder, GraphClass};
pub use mrls_model::{
    Allocation, AllocationSpace, ExecTimeSpec, Instance, JobProfile, MoldableJob, SystemConfig,
};
