//! Cross-crate integration tests: the full pipeline on every graph family,
//! serde round-trips of instances and results, baseline comparisons, and the
//! paper's headline invariants end-to-end.

use mrls::analysis::intervals::IntervalReport;
use mrls::analysis::validate_schedule;
use mrls::baseline::{BaselineScheduler, RigidListScheduler, RigidRule, SequentialScheduler};
use mrls::core::theory;
use mrls::workload::{DagRecipe, InstanceRecipe, JobRecipe, SpeedupFamily, SystemRecipe};
use mrls::{
    AllocationSpace, AllocatorKind, GraphClass, Instance, MrlsConfig, MrlsScheduler, PriorityRule,
};

fn recipe(dag: DagRecipe, d: usize, p: u64) -> InstanceRecipe {
    InstanceRecipe {
        system: SystemRecipe::Uniform { d, p },
        dag,
        jobs: JobRecipe {
            family: SpeedupFamily::Amdahl,
            work_range: (5.0, 60.0),
            seq_fraction_range: (0.0, 0.25),
            space: AllocationSpace::PowersOfTwo,
            heavy_kind_factor: 2.0,
        },
    }
}

#[test]
fn every_graph_family_schedules_validly_and_within_guarantee() {
    let families = vec![
        DagRecipe::Independent { n: 20 },
        DagRecipe::Chain { n: 15 },
        DagRecipe::RandomLayered {
            n: 30,
            layers: 5,
            edge_prob: 0.3,
        },
        DagRecipe::ErdosRenyi {
            n: 25,
            edge_prob: 0.15,
        },
        DagRecipe::ForkJoin {
            width: 5,
            stages: 3,
        },
        DagRecipe::RandomOutTree {
            n: 25,
            max_children: 3,
        },
        DagRecipe::RandomInTree {
            n: 25,
            max_children: 3,
        },
        DagRecipe::RandomSeriesParallel {
            n: 25,
            series_prob: 0.5,
        },
        DagRecipe::Cholesky { tiles: 4 },
        DagRecipe::Wavefront { rows: 5, cols: 5 },
        DagRecipe::Montage { width: 6 },
        DagRecipe::Epigenomics {
            branches: 4,
            depth: 4,
        },
    ];
    for (i, dag) in families.into_iter().enumerate() {
        for d in [1usize, 2, 3] {
            let gi = recipe(dag.clone(), d, 8).generate(1000 + i as u64);
            let result = MrlsScheduler::with_defaults()
                .schedule(&gi.instance)
                .unwrap_or_else(|e| panic!("family {i} d={d} failed: {e}"));
            let report = validate_schedule(&gi.instance, &result.schedule);
            assert!(
                report.is_valid(),
                "family {i} d={d}: invalid schedule {report:?}"
            );
            assert!(
                result.measured_ratio() <= result.params.ratio_guarantee + 1e-6,
                "family {i} d={d}: ratio {} > guarantee {}",
                result.measured_ratio(),
                result.params.ratio_guarantee
            );
        }
    }
}

#[test]
fn auto_allocator_matches_graph_class() {
    let cases = vec![
        (DagRecipe::Independent { n: 12 }, "independent-optimal"),
        (
            DagRecipe::RandomOutTree {
                n: 12,
                max_children: 2,
            },
            "sp-fptas",
        ),
        (
            DagRecipe::RandomSeriesParallel {
                n: 12,
                series_prob: 0.5,
            },
            "sp-fptas",
        ),
    ];
    for (dag, expected_allocator) in cases {
        let gi = recipe(dag, 2, 8).generate(7);
        let result = MrlsScheduler::with_defaults()
            .schedule(&gi.instance)
            .unwrap();
        assert_eq!(result.params.allocator, expected_allocator);
    }
    // A graph containing an "N" must fall back to the LP allocator.
    let dag = mrls::Dag::from_edges(4, &[(0, 2), (1, 2), (1, 3)]).unwrap();
    let jobs: Vec<_> = (0..4)
        .map(|j| {
            mrls::MoldableJob::new(
                j,
                mrls::ExecTimeSpec::Amdahl {
                    seq: 1.0,
                    work: vec![5.0, 5.0],
                },
            )
        })
        .collect();
    let inst = Instance::new(mrls::SystemConfig::new(vec![8, 8]).unwrap(), dag, jobs).unwrap();
    assert_eq!(inst.graph_class(), GraphClass::General);
    let result = MrlsScheduler::with_defaults().schedule(&inst).unwrap();
    assert_eq!(result.params.allocator, "lp-rounding");
}

#[test]
fn instance_serde_roundtrip_preserves_scheduling_result() {
    let gi = recipe(
        DagRecipe::RandomLayered {
            n: 20,
            layers: 4,
            edge_prob: 0.3,
        },
        2,
        8,
    )
    .generate(11);
    let json = gi.instance.to_json();
    let back = Instance::from_json(&json).unwrap();
    assert_eq!(gi.instance, back);
    let a = MrlsScheduler::with_defaults()
        .schedule(&gi.instance)
        .unwrap();
    let b = MrlsScheduler::with_defaults().schedule(&back).unwrap();
    assert!((a.schedule.makespan - b.schedule.makespan).abs() < 1e-9);
}

#[test]
fn paper_algorithm_beats_or_matches_naive_baselines_on_average() {
    let mut wins = 0usize;
    let mut total = 0usize;
    for seed in 0..8u64 {
        let gi = recipe(
            DagRecipe::RandomLayered {
                n: 40,
                layers: 6,
                edge_prob: 0.25,
            },
            3,
            16,
        )
        .generate(seed);
        let inst = &gi.instance;
        let mrls_result = MrlsScheduler::with_defaults().schedule(inst).unwrap();
        let fast = RigidListScheduler::new(RigidRule::Fastest, PriorityRule::CriticalPath)
            .run(inst)
            .unwrap();
        let cheap = RigidListScheduler::new(RigidRule::Cheapest, PriorityRule::CriticalPath)
            .run(inst)
            .unwrap();
        let seq = SequentialScheduler::new().run(inst).unwrap();
        // The sequential baseline is never better than the list schedules here.
        assert!(seq.schedule.makespan + 1e-6 >= mrls_result.schedule.makespan);
        total += 2;
        if mrls_result.schedule.makespan <= fast.schedule.makespan + 1e-9 {
            wins += 1;
        }
        if mrls_result.schedule.makespan <= cheap.schedule.makespan + 1e-9 {
            wins += 1;
        }
    }
    // The paper's allocator should win the large majority of head-to-heads on
    // these layered workflows.
    assert!(
        wins * 2 >= total,
        "mrls won only {wins}/{total} comparisons against rigid baselines"
    );
}

#[test]
fn theorem6_family_exhibits_the_d_gap() {
    use mrls::core::theorem6::Theorem6Instance;
    use mrls::ListScheduler;
    let d = 5;
    let t6 = Theorem6Instance::build(d, 40).unwrap();
    let worst = ListScheduler::new(t6.adversarial_priority())
        .schedule(&t6.instance, &t6.decision)
        .unwrap();
    let best = ListScheduler::new(t6.gate_first_priority())
        .schedule(&t6.instance, &t6.decision)
        .unwrap();
    assert!(validate_schedule(&t6.instance, &worst).is_valid());
    assert!(validate_schedule(&t6.instance, &best).is_valid());
    let ratio = worst.makespan / best.makespan;
    assert!(ratio > 0.8 * theory::theorem6_lower_bound(d));
    assert!(ratio <= theory::theorem6_lower_bound(d) + 1.0);
}

#[test]
fn interval_decomposition_consistent_with_lemmas_for_monotone_jobs() {
    let gi = recipe(
        DagRecipe::RandomLayered {
            n: 35,
            layers: 6,
            edge_prob: 0.3,
        },
        2,
        16,
    )
    .generate(3);
    let result = MrlsScheduler::with_defaults()
        .schedule(&gi.instance)
        .unwrap();
    let mu = result.params.mu;
    let report = IntervalReport::build(&gi.instance, &result.schedule, mu);
    assert!((report.total_duration() - result.schedule.makespan).abs() < 1e-6);
    let initial = gi
        .instance
        .evaluate_decision(&result.initial_decision)
        .unwrap();
    let d = gi.instance.num_resource_types() as f64;
    // Lemma 5 and Lemma 6, empirically.
    assert!(report.t1 + mu * report.t2 <= initial.critical_path + 1e-6);
    assert!(mu * report.t2 + (1.0 - mu) * report.t3 <= d * initial.average_total_area + 1e-6);
}

#[test]
fn forcing_every_allocator_still_yields_valid_schedules() {
    let gi = recipe(
        DagRecipe::RandomSeriesParallel {
            n: 18,
            series_prob: 0.5,
        },
        2,
        8,
    )
    .generate(21);
    for kind in [
        AllocatorKind::LpRounding,
        AllocatorKind::SpFptas,
        AllocatorKind::MinTime,
        AllocatorKind::MinArea,
        AllocatorKind::MinLocalMax,
    ] {
        let config = MrlsConfig {
            allocator: kind,
            ..MrlsConfig::default()
        };
        let result = MrlsScheduler::new(config).schedule(&gi.instance).unwrap();
        assert!(validate_schedule(&gi.instance, &result.schedule).is_valid());
    }
}

#[test]
fn theory_table1_is_internally_consistent() {
    for d in 1..=30usize {
        let general = theory::general_ratio(d);
        let sp = theory::sp_ratio(d, 0.05);
        let ind = theory::independent_ratio(d);
        assert!(ind <= sp + 1e-9 || d <= 2);
        assert!(sp <= general * (1.0 + 0.05) + 1e-9);
        assert!(general >= theory::theorem6_lower_bound(d));
    }
}
