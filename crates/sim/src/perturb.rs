//! Stochastic execution-time perturbation models.
//!
//! The paper plans schedules from *exact* execution times (Assumption 2). In
//! practice realized times deviate: background load adds multiplicative
//! noise, a small fraction of jobs straggle badly, and a degraded resource
//! slows every job that touches it. [`PerturbationModel`] describes those
//! deviations declaratively and [`Perturber`] samples them deterministically
//! from a `ChaCha8` stream, so a simulation is reproducible bit-for-bit from
//! its seed.

use mrls_model::Allocation;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How realized execution times deviate from the nominal model `t_j(p_j)`.
///
/// Every model produces a multiplicative factor applied to the nominal time;
/// factors are clamped so realized times stay positive and finite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PerturbationModel {
    /// No deviation: realized time equals nominal time.
    None,
    /// Log-normal multiplicative noise: the factor is `exp(sigma * Z)` with
    /// `Z` standard normal, so `sigma = 0` is noise-free and the median
    /// factor is always 1.
    Multiplicative {
        /// Noise intensity (standard deviation of the log-factor).
        sigma: f64,
    },
    /// Heavy-tail stragglers: with probability `prob` a job's factor is drawn
    /// from a Pareto tail `(1-U)^(-1/alpha)` (shape `alpha`, capped at
    /// `cap`); otherwise the job runs at nominal speed.
    HeavyTail {
        /// Probability that a job straggles.
        prob: f64,
        /// Pareto tail shape; smaller = heavier tail.
        alpha: f64,
        /// Upper bound on the straggler factor.
        cap: f64,
    },
    /// Deterministic per-resource slowdown: resource type `i` runs at
    /// `1/factors[i]` of its nominal speed, and a job is slowed by the worst
    /// factor among the types it actually uses (missing entries default
    /// to 1).
    ResourceSlowdown {
        /// Per-type slowdown factors (`>= 1` means slower).
        factors: Vec<f64>,
    },
    /// Apply several models in sequence (factors multiply).
    Compose(Vec<PerturbationModel>),
}

impl PerturbationModel {
    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            PerturbationModel::None => "none",
            PerturbationModel::Multiplicative { .. } => "multiplicative",
            PerturbationModel::HeavyTail { .. } => "heavy-tail",
            PerturbationModel::ResourceSlowdown { .. } => "resource-slowdown",
            PerturbationModel::Compose(_) => "compose",
        }
    }

    /// `true` iff the model never changes any execution time.
    pub fn is_noise_free(&self) -> bool {
        match self {
            PerturbationModel::None => true,
            PerturbationModel::Multiplicative { sigma } => *sigma == 0.0,
            PerturbationModel::HeavyTail { prob, .. } => *prob == 0.0,
            PerturbationModel::ResourceSlowdown { factors } => {
                factors.iter().all(|&f| (f - 1.0).abs() < 1e-12)
            }
            PerturbationModel::Compose(models) => models.iter().all(|m| m.is_noise_free()),
        }
    }
}

/// Samples perturbation factors deterministically from a seeded stream.
#[derive(Debug, Clone)]
pub struct Perturber {
    model: PerturbationModel,
    rng: ChaCha8Rng,
    realizations: u64,
}

/// Realized times are clamped to `[MIN_FACTOR, MAX_FACTOR] * nominal`.
const MIN_FACTOR: f64 = 1e-6;
const MAX_FACTOR: f64 = 1e6;

impl Perturber {
    /// Creates a perturber for `model` seeded with `seed`.
    pub fn new(model: PerturbationModel, seed: u64) -> Self {
        Perturber {
            model,
            rng: ChaCha8Rng::seed_from_u64(seed),
            realizations: 0,
        }
    }

    /// Recreates a perturber that has already produced `realizations` draws
    /// (a simulation checkpoint being resumed). The stream is fast-forwarded
    /// by replaying that many draws, which is exact because the number of
    /// uniform variates consumed per realization depends only on the model,
    /// never on the allocation or the nominal time.
    pub fn resume(model: PerturbationModel, seed: u64, realizations: u64) -> Self {
        let mut p = Perturber::new(model, seed);
        let dummy = Allocation::new(vec![]);
        for _ in 0..realizations {
            p.realize(&dummy, 1.0);
        }
        p
    }

    /// The model in use.
    pub fn model(&self) -> &PerturbationModel {
        &self.model
    }

    /// How many realizations have been drawn so far (for checkpointing).
    pub fn realizations(&self) -> u64 {
        self.realizations
    }

    /// Draws the realized execution time for one job start. Draws are
    /// consumed in event order, so a fixed seed and event sequence yields a
    /// fixed realization.
    pub fn realize(&mut self, alloc: &Allocation, nominal: f64) -> f64 {
        let factor = Self::factor(&mut self.rng, &self.model, alloc).clamp(MIN_FACTOR, MAX_FACTOR);
        self.realizations += 1;
        nominal * factor
    }

    fn factor(rng: &mut ChaCha8Rng, model: &PerturbationModel, alloc: &Allocation) -> f64 {
        match model {
            PerturbationModel::None => 1.0,
            PerturbationModel::Multiplicative { sigma } => {
                // Box–Muller on two uniform draws; `1 - u` keeps the log away
                // from -inf.
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (sigma * z).exp()
            }
            PerturbationModel::HeavyTail { prob, alpha, cap } => {
                // Always consume both draws so the stream position does not
                // depend on whether this job straggled.
                let hit = rng.gen::<f64>() < *prob;
                let u: f64 = rng.gen();
                if hit {
                    let pareto = (1.0 - u)
                        .max(f64::MIN_POSITIVE)
                        .powf(-1.0 / alpha.max(0.05));
                    pareto.min(cap.max(1.0))
                } else {
                    1.0
                }
            }
            PerturbationModel::ResourceSlowdown { factors } => (0..alloc.dim())
                .filter(|&i| alloc[i] > 0)
                .map(|i| factors.get(i).copied().unwrap_or(1.0))
                .fold(1.0, f64::max),
            PerturbationModel::Compose(models) => {
                let mut f = 1.0;
                for m in models {
                    f *= Self::factor(rng, m, alloc);
                }
                f
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> Allocation {
        Allocation::new(vec![2, 0])
    }

    #[test]
    fn none_is_identity() {
        let mut p = Perturber::new(PerturbationModel::None, 0);
        assert_eq!(p.realize(&alloc(), 3.5), 3.5);
        assert!(PerturbationModel::None.is_noise_free());
    }

    #[test]
    fn multiplicative_zero_sigma_is_identity() {
        let model = PerturbationModel::Multiplicative { sigma: 0.0 };
        assert!(model.is_noise_free());
        let mut p = Perturber::new(model, 1);
        for _ in 0..10 {
            assert!((p.realize(&alloc(), 2.0) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn multiplicative_noise_is_seeded_and_centred() {
        let model = PerturbationModel::Multiplicative { sigma: 0.3 };
        let mut a = Perturber::new(model.clone(), 42);
        let mut b = Perturber::new(model.clone(), 42);
        let mut c = Perturber::new(model, 43);
        let xs: Vec<f64> = (0..200).map(|_| a.realize(&alloc(), 1.0)).collect();
        let ys: Vec<f64> = (0..200).map(|_| b.realize(&alloc(), 1.0)).collect();
        let zs: Vec<f64> = (0..200).map(|_| c.realize(&alloc(), 1.0)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        // The median log-factor is ~0: roughly half the draws land below 1.
        let below = xs.iter().filter(|&&x| x < 1.0).count();
        assert!((40..=160).contains(&below), "below = {below}");
        assert!(xs.iter().all(|&x| x > 0.0 && x.is_finite()));
    }

    #[test]
    fn heavy_tail_stragglers_are_rare_and_bounded() {
        let model = PerturbationModel::HeavyTail {
            prob: 0.1,
            alpha: 1.5,
            cap: 20.0,
        };
        let mut p = Perturber::new(model, 7);
        let xs: Vec<f64> = (0..500).map(|_| p.realize(&alloc(), 1.0)).collect();
        let stragglers = xs.iter().filter(|&&x| x > 1.0).count();
        assert!(stragglers > 10 && stragglers < 150, "{stragglers}");
        assert!(xs.iter().all(|&x| (1.0..=20.0).contains(&x)));
    }

    #[test]
    fn resource_slowdown_only_hits_used_types() {
        let model = PerturbationModel::ResourceSlowdown {
            factors: vec![1.0, 2.5],
        };
        let mut p = Perturber::new(model, 0);
        // Job uses only type 0: unaffected.
        assert!((p.realize(&Allocation::new(vec![2, 0]), 4.0) - 4.0).abs() < 1e-12);
        // Job uses type 1: slowed by 2.5.
        assert!((p.realize(&Allocation::new(vec![1, 1]), 4.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn compose_multiplies_factors() {
        let model = PerturbationModel::Compose(vec![
            PerturbationModel::ResourceSlowdown { factors: vec![2.0] },
            PerturbationModel::ResourceSlowdown { factors: vec![3.0] },
        ]);
        let mut p = Perturber::new(model.clone(), 0);
        assert!((p.realize(&Allocation::new(vec![1]), 1.0) - 6.0).abs() < 1e-12);
        assert!(!model.is_noise_free());
    }

    #[test]
    fn resume_fast_forwards_the_stream_exactly() {
        let model = PerturbationModel::Compose(vec![
            PerturbationModel::Multiplicative { sigma: 0.3 },
            PerturbationModel::HeavyTail {
                prob: 0.2,
                alpha: 1.5,
                cap: 10.0,
            },
        ]);
        let mut full = Perturber::new(model.clone(), 17);
        for _ in 0..25 {
            full.realize(&alloc(), 1.0);
        }
        assert_eq!(full.realizations(), 25);
        let mut resumed = Perturber::resume(model, 17, 25);
        assert_eq!(resumed.realizations(), 25);
        for _ in 0..25 {
            // Resumed draws continue the original stream, regardless of the
            // allocations the skipped draws were made with.
            assert_eq!(
                resumed.realize(&Allocation::new(vec![1, 1]), 2.0),
                full.realize(&Allocation::new(vec![1, 1]), 2.0)
            );
        }
    }

    #[test]
    fn serde_roundtrip() {
        let model = PerturbationModel::Compose(vec![
            PerturbationModel::Multiplicative { sigma: 0.2 },
            PerturbationModel::HeavyTail {
                prob: 0.05,
                alpha: 1.1,
                cap: 10.0,
            },
        ]);
        let json = serde_json::to_string(&model).unwrap();
        let back: PerturbationModel = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
    }
}
