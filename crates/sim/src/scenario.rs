//! Runtime scenarios: online job arrivals and resource-capacity changes.

use mrls_model::Instance;
use serde::{Deserialize, Serialize};

/// A timed change of one resource type's capacity (absolute new value).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityChange {
    /// Virtual time at which the change takes effect.
    pub time: f64,
    /// Affected resource type.
    pub resource: usize,
    /// The new capacity (a drop if below the current value, a recovery if
    /// above).
    pub capacity: u64,
}

/// Everything that happens *to* the system during a run, independent of the
/// scheduling policy: when jobs become known and how the machine degrades.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Scenario {
    /// Per-job release times; an empty vector means every job is available at
    /// time zero (the offline setting).
    pub release_times: Vec<f64>,
    /// Capacity changes, applied in time order.
    pub capacity_changes: Vec<CapacityChange>,
}

impl Scenario {
    /// The offline scenario: all jobs at time zero, machine never changes.
    pub fn offline() -> Self {
        Scenario::default()
    }

    /// Sets per-job release times (e.g. from
    /// `mrls_workload::ArrivalRecipe::release_times`).
    pub fn with_release_times(mut self, release_times: Vec<f64>) -> Self {
        self.release_times = release_times;
        self
    }

    /// Adds capacity changes from `(time, resource, new_capacity)` triples
    /// (e.g. from `mrls_workload::CapacityDropRecipe::changes`).
    pub fn with_capacity_changes(mut self, changes: Vec<(f64, usize, u64)>) -> Self {
        self.capacity_changes = changes
            .into_iter()
            .map(|(time, resource, capacity)| CapacityChange {
                time,
                resource,
                capacity,
            })
            .collect();
        self
    }

    /// The release time of job `j` (zero when no arrival pattern is set).
    pub fn release_time(&self, j: usize) -> f64 {
        self.release_times.get(j).copied().unwrap_or(0.0).max(0.0)
    }

    /// `true` iff the scenario contains no online events at all.
    pub fn is_offline(&self) -> bool {
        self.capacity_changes.is_empty() && self.release_times.iter().all(|&t| t <= 0.0)
    }

    /// Checks the scenario against an instance: release-time vector length
    /// and capacity-change resource indices.
    pub fn validate(&self, instance: &Instance) -> Result<(), String> {
        if !self.release_times.is_empty() && self.release_times.len() != instance.num_jobs() {
            return Err(format!(
                "scenario has {} release times for {} jobs",
                self.release_times.len(),
                instance.num_jobs()
            ));
        }
        if let Some(t) = self
            .release_times
            .iter()
            .find(|t| !t.is_finite() || **t < 0.0)
        {
            return Err(format!("invalid release time {t}"));
        }
        for c in &self.capacity_changes {
            if c.resource >= instance.num_resource_types() {
                return Err(format!(
                    "capacity change targets resource {} but the system has {} types",
                    c.resource,
                    instance.num_resource_types()
                ));
            }
            if !c.time.is_finite() || c.time < 0.0 {
                return Err(format!("invalid capacity change time {}", c.time));
            }
            if c.capacity == 0 {
                return Err(format!(
                    "capacity change would zero resource {} (capacities must stay >= 1)",
                    c.resource
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrls_dag::Dag;
    use mrls_model::{ExecTimeSpec, MoldableJob, SystemConfig};

    fn instance(n: usize) -> Instance {
        let jobs = (0..n)
            .map(|j| MoldableJob::new(j, ExecTimeSpec::Constant { time: 1.0 }))
            .collect();
        Instance::new(
            SystemConfig::new(vec![4, 4]).unwrap(),
            Dag::independent(n),
            jobs,
        )
        .unwrap()
    }

    #[test]
    fn offline_scenario_is_offline() {
        let s = Scenario::offline();
        assert!(s.is_offline());
        assert_eq!(s.release_time(3), 0.0);
        assert!(s.validate(&instance(2)).is_ok());
    }

    #[test]
    fn builders_and_validation() {
        let s = Scenario::offline()
            .with_release_times(vec![0.0, 2.0])
            .with_capacity_changes(vec![(1.0, 0, 2)]);
        assert!(!s.is_offline());
        assert_eq!(s.release_time(1), 2.0);
        assert!(s.validate(&instance(2)).is_ok());
        // Wrong release-time length.
        assert!(s.validate(&instance(3)).is_err());
        // Bad resource index.
        let bad = Scenario::offline().with_capacity_changes(vec![(1.0, 7, 2)]);
        assert!(bad.validate(&instance(2)).is_err());
        // Zero capacity is rejected.
        let zero = Scenario::offline().with_capacity_changes(vec![(1.0, 0, 0)]);
        assert!(zero.validate(&instance(2)).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let s = Scenario::offline()
            .with_release_times(vec![0.0, 1.5])
            .with_capacity_changes(vec![(2.0, 1, 3)]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
