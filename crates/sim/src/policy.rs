//! Scheduling policies: how a run reacts (or not) when reality diverges from
//! the plan.
//!
//! The engine enforces the invariants; a [`Policy`] only decides *which*
//! ready jobs start and with which allocations. Three reference policies
//! cover the reaction spectrum:
//!
//! * [`StaticPolicy`] — replay the plan order verbatim; no backfilling, no
//!   re-allocation. Jobs slide when their predecessors run long.
//! * [`ReactiveListPolicy`] — re-run Phase 2's placement pass (the shared
//!   [`ListScheduler::schedule_ready`] routine) over the actual ready set at
//!   every event, reusing the Phase-1 allocations.
//! * [`FullReschedulePolicy`] — on perturbation events (arrivals, capacity
//!   changes, stragglers) re-invoke the complete two-phase [`MrlsScheduler`]
//!   on the pending jobs and adopt its new allocations and priorities.

use crate::engine::{SimError, SimState};
use crate::trace::TraceEvent;
use mrls_core::{ListScheduler, MrlsConfig, MrlsScheduler, PriorityRule};
use mrls_model::{Allocation, Instance, MoldableJob, SystemConfig};
use serde::{Deserialize, Serialize};

/// The unstarted jobs of a state, ascending — the **live frontier**. Every
/// job a policy can still start is in here, and (because a successor can
/// only start after its predecessors complete) so is every descendant of a
/// member: the frontier is successor-closed, which is what lets policies
/// restrict their per-drive initialisation to it. A long-lived service
/// re-initialises its policy every round; paying O(world) there would defeat
/// the incremental round state, while a boolean scan stays in the noise.
fn live_frontier(state: &SimState<'_>) -> Vec<usize> {
    (0..state.instance.num_jobs())
        .filter(|&j| !state.started[j])
        .collect()
}

/// A scheduling policy driven by the engine at every decision point.
pub trait Policy {
    /// Short label for traces and experiment tables.
    fn label(&self) -> &'static str;

    /// Called once before the run with the initial state.
    fn on_start(&mut self, state: &SimState<'_>) -> Result<(), SimError>;

    /// Called after every batch of world events (completions, arrivals,
    /// capacity changes). May return policy events (e.g.
    /// [`TraceEvent::Rescheduled`]) to append to the trace.
    fn on_events(
        &mut self,
        state: &SimState<'_>,
        batch: &[TraceEvent],
    ) -> Result<Vec<TraceEvent>, SimError>;

    /// Picks the jobs to start right now, in order, with their allocations.
    /// Every returned job must be ready and every allocation must fit the
    /// availability left by the starts before it; the engine verifies this
    /// and aborts the run otherwise. Returning an empty vector ends the
    /// decision point.
    fn select_starts(&mut self, state: &SimState<'_>) -> Vec<(usize, Allocation)>;
}

/// Which reference policy to run (serialisable configuration handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Replay the plan; jobs slide.
    Static,
    /// Re-run the list phase over the ready set at every event.
    ReactiveList,
    /// Re-invoke the two-phase scheduler on perturbation events.
    FullReschedule,
}

impl PolicyKind {
    /// All reference policies, in sweep order.
    pub fn all() -> [PolicyKind; 3] {
        [
            PolicyKind::Static,
            PolicyKind::ReactiveList,
            PolicyKind::FullReschedule,
        ]
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Static => "static",
            PolicyKind::ReactiveList => "reactive-list",
            PolicyKind::FullReschedule => "full-reschedule",
        }
    }

    /// Builds the policy with its default configuration.
    pub fn build(&self) -> Box<dyn Policy> {
        match self {
            PolicyKind::Static => Box::new(StaticPolicy::new()),
            PolicyKind::ReactiveList => {
                Box::new(ReactiveListPolicy::new(PriorityRule::CriticalPath))
            }
            PolicyKind::FullReschedule => {
                Box::new(FullReschedulePolicy::new(MrlsConfig::default(), 1.5))
            }
        }
    }
}

/// Replays the plan: jobs start in planned-start order, without reordering or
/// backfilling. When a predecessor runs long, everything behind it slides.
#[derive(Debug, Clone, Default)]
pub struct StaticPolicy {
    order: Vec<usize>,
    cursor: usize,
    decision: Vec<Allocation>,
}

impl StaticPolicy {
    /// Creates the policy; the plan is read from the state at `on_start`.
    pub fn new() -> Self {
        StaticPolicy::default()
    }
}

impl Policy for StaticPolicy {
    fn label(&self) -> &'static str {
        "static"
    }

    fn on_start(&mut self, state: &SimState<'_>) -> Result<(), SimError> {
        // Only the live frontier can still be started; already started jobs
        // would be skipped by the cursor anyway, so restricting the order to
        // the frontier visits the same subsequence at O(live) cost.
        let n = state.instance.num_jobs();
        let mut order = live_frontier(state);
        order.sort_by(|&a, &b| {
            state.plan.jobs[a]
                .start
                .total_cmp(&state.plan.jobs[b].start)
                .then(a.cmp(&b))
        });
        self.cursor = 0;
        self.decision = vec![Allocation::new(Vec::new()); n];
        for &j in &order {
            self.decision[j] = state.plan.jobs[j].alloc.clone();
        }
        self.order = order;
        Ok(())
    }

    fn on_events(
        &mut self,
        _state: &SimState<'_>,
        _batch: &[TraceEvent],
    ) -> Result<Vec<TraceEvent>, SimError> {
        Ok(vec![])
    }

    fn select_starts(&mut self, state: &SimState<'_>) -> Vec<(usize, Allocation)> {
        let mut starts = Vec::new();
        let mut resources = state.resources.clone();
        while self.cursor < self.order.len() {
            let j = self.order[self.cursor];
            if state.started[j] {
                self.cursor += 1;
                continue;
            }
            if state.is_ready(j) && resources.fits(&self.decision[j]) {
                resources.acquire(&self.decision[j]);
                starts.push((j, self.decision[j].clone()));
                self.cursor += 1;
            } else {
                // Strict plan order: the head of the queue blocks everything
                // behind it.
                break;
            }
        }
        starts
    }
}

/// Re-runs the list phase (the shared placement routine of Algorithm 2) over
/// the actual ready set at every event, reusing the Phase-1 allocations.
#[derive(Debug, Clone)]
pub struct ReactiveListPolicy {
    scheduler: ListScheduler,
    decision: Vec<Allocation>,
    keys: Vec<f64>,
}

impl ReactiveListPolicy {
    /// Creates the policy with the given ready-queue priority rule.
    pub fn new(priority: PriorityRule) -> Self {
        ReactiveListPolicy {
            scheduler: ListScheduler::new(priority),
            decision: Vec::new(),
            keys: Vec::new(),
        }
    }
}

impl Policy for ReactiveListPolicy {
    fn label(&self) -> &'static str {
        "reactive-list"
    }

    fn on_start(&mut self, state: &SimState<'_>) -> Result<(), SimError> {
        let n = state.instance.num_jobs();
        let live = live_frontier(state);
        // `Explicit` keys are raw per-job vectors; everything else is
        // pointwise in (time, allocation, bottom level), and the frontier is
        // successor-closed, so bottom levels computed on the live
        // sub-instance are bit-identical to the full-graph ones. Keys and
        // decisions of started jobs are never read (only ready jobs are).
        if live.len() == n || matches!(self.scheduler.priority(), PriorityRule::Explicit(_)) {
            self.decision = state.plan.allocations();
            let times = self
                .scheduler
                .evaluate_times(state.instance, &self.decision)?;
            self.keys = self
                .scheduler
                .priority_keys(state.instance, &self.decision, &times)?;
            return Ok(());
        }
        let (sub_dag, mapping) = state.instance.dag.induced_subgraph_sorted(&live);
        let sub_jobs: Vec<MoldableJob> = mapping
            .iter()
            .map(|&old| state.instance.jobs[old].clone())
            .collect();
        let sub_instance = Instance::new(state.instance.system.clone(), sub_dag, sub_jobs)
            .map_err(|e| SimError::InvalidPlan(e.to_string()))?;
        let sub_decision: Vec<Allocation> = mapping
            .iter()
            .map(|&old| state.plan.jobs[old].alloc.clone())
            .collect();
        let times = self
            .scheduler
            .evaluate_times(&sub_instance, &sub_decision)?;
        let sub_keys = self
            .scheduler
            .priority_keys(&sub_instance, &sub_decision, &times)?;
        self.decision = vec![Allocation::new(Vec::new()); n];
        self.keys = vec![0.0; n];
        for ((&old, key), alloc) in mapping.iter().zip(sub_keys).zip(sub_decision) {
            self.keys[old] = key;
            self.decision[old] = alloc;
        }
        Ok(())
    }

    fn on_events(
        &mut self,
        _state: &SimState<'_>,
        _batch: &[TraceEvent],
    ) -> Result<Vec<TraceEvent>, SimError> {
        Ok(vec![])
    }

    fn select_starts(&mut self, state: &SimState<'_>) -> Vec<(usize, Allocation)> {
        let mut ready = state.ready.clone();
        let mut resources = state.resources.clone();
        self.scheduler
            .schedule_ready(&mut ready, &self.keys, &self.decision, &mut resources)
            .into_iter()
            .map(|j| (j, self.decision[j].clone()))
            .collect()
    }
}

/// Re-invokes the complete two-phase scheduler on the pending jobs whenever a
/// perturbation event fires (an online arrival, a capacity change, or a
/// straggler whose realized time exceeded `straggler_threshold ×` nominal),
/// adopting the new allocations and the new plan's start order as priorities.
/// Between reschedules it behaves like [`ReactiveListPolicy`].
///
/// Reschedules are **debounced** so the policy no longer thrashes under pure
/// noise at high sigma: after a reschedule, further arrival/straggler
/// triggers are ignored for `min_interval_frac ×` the planned makespan, and
/// straggler triggers additionally require the run to actually be late —
/// current time above `stretch_threshold ×` the planned finish time of the
/// work completed so far. Capacity changes are structural and always
/// reschedule.
#[derive(Debug, Clone)]
pub struct FullReschedulePolicy {
    config: MrlsConfig,
    straggler_threshold: f64,
    min_interval_frac: f64,
    stretch_threshold: f64,
    scheduler: ListScheduler,
    decision: Vec<Allocation>,
    keys: Vec<f64>,
    min_interval: f64,
    last_reschedule: f64,
    /// Latest planned finish among completed jobs, maintained incrementally
    /// from completion events (recomputing it per event would be O(world)).
    planned_completed_max: f64,
}

impl FullReschedulePolicy {
    /// Creates the policy with the default debounce (see
    /// [`FullReschedulePolicy::with_debounce`]). `config` drives the
    /// re-invoked scheduler; `straggler_threshold` is the realized/nominal
    /// factor above which a completion counts as a straggler.
    pub fn new(config: MrlsConfig, straggler_threshold: f64) -> Self {
        let priority = config.priority.clone();
        FullReschedulePolicy {
            config,
            straggler_threshold: straggler_threshold.max(1.0),
            min_interval_frac: 0.25,
            stretch_threshold: 1.25,
            scheduler: ListScheduler::new(priority),
            decision: Vec::new(),
            keys: Vec::new(),
            min_interval: 0.0,
            last_reschedule: f64::NEG_INFINITY,
            planned_completed_max: 0.0,
        }
    }

    /// Overrides the debounce: `min_interval_frac` is the minimum virtual
    /// time between reschedules as a fraction of the planned makespan (zero
    /// disables the interval), and `stretch_threshold` is the lateness factor
    /// below which straggler triggers are ignored (`<= 1` disables the
    /// hysteresis).
    pub fn with_debounce(mut self, min_interval_frac: f64, stretch_threshold: f64) -> Self {
        self.min_interval_frac = min_interval_frac.max(0.0);
        self.stretch_threshold = stretch_threshold;
        self
    }

    /// The reschedule trigger in `batch`, if any.
    fn trigger(&self, batch: &[TraceEvent]) -> Option<&'static str> {
        let mut straggler = false;
        for e in batch {
            match e {
                TraceEvent::CapacityChanged { .. } => return Some("capacity-change"),
                TraceEvent::JobReleased { .. } => return Some("arrival"),
                TraceEvent::JobCompleted {
                    nominal, realized, ..
                } => {
                    straggler |= *realized > self.straggler_threshold * *nominal;
                }
                _ => {}
            }
        }
        straggler.then_some("straggler")
    }

    /// How late the run currently is: current time over the latest planned
    /// finish among completed jobs (1.0 = on plan; infinite before the first
    /// completion, which cannot arise for straggler triggers). The maximum
    /// is maintained from completion events, not recomputed.
    fn progress_stretch(&self, state: &SimState<'_>) -> f64 {
        if self.planned_completed_max > 0.0 {
            state.now / self.planned_completed_max
        } else {
            f64::INFINITY
        }
    }

    /// `true` iff the debounce suppresses this trigger.
    fn debounced(&self, state: &SimState<'_>, trigger: &str) -> bool {
        if trigger == "capacity-change" {
            return false;
        }
        if state.now - self.last_reschedule < self.min_interval {
            return true;
        }
        trigger == "straggler" && self.progress_stretch(state) <= self.stretch_threshold
    }

    /// Recomputes allocations and priorities for every pending (unstarted)
    /// job by scheduling the induced sub-instance from scratch.
    fn reschedule(&mut self, state: &SimState<'_>) -> Result<usize, SimError> {
        let n = state.instance.num_jobs();
        let pending: Vec<usize> = (0..n).filter(|&j| !state.started[j]).collect();
        if pending.is_empty() {
            return Ok(0);
        }
        let (sub_dag, mapping) = state.instance.dag.induced_subgraph_sorted(&pending);
        let sub_jobs: Vec<MoldableJob> = mapping
            .iter()
            .map(|&old| state.instance.jobs[old].clone())
            .collect();
        // Plan against the machine as it is now (post-drop capacities); the
        // scenario guarantees capacities stay >= 1.
        let system = SystemConfig::new(state.capacities.clone())
            .map_err(|e| SimError::InvalidScenario(e.to_string()))?;
        let sub_instance = Instance::new(system, sub_dag, sub_jobs)
            .map_err(|e| SimError::InvalidScenario(e.to_string()))?;
        match MrlsScheduler::new(self.config.clone()).schedule(&sub_instance) {
            Ok(result) => {
                // Adopt the new allocations; use the new plan's start times
                // as priorities (pending jobs only ever compete with each
                // other, so keys of started jobs are irrelevant).
                for sj in &result.schedule.jobs {
                    let old = mapping[sj.job];
                    self.decision[old] = sj.alloc.clone();
                    self.keys[old] = sj.start;
                }
            }
            Err(_) => {
                // Fallback: keep the current allocations but clamp them to
                // the degraded capacities so pending jobs stay startable.
                for &old in &pending {
                    let alloc = &self.decision[old];
                    let clamped: Vec<u64> = (0..alloc.dim())
                        .map(|i| {
                            if alloc[i] == 0 {
                                0
                            } else {
                                alloc[i].min(state.capacities[i]).max(1)
                            }
                        })
                        .collect();
                    self.decision[old] = Allocation::new(clamped);
                }
            }
        }
        Ok(pending.len())
    }
}

impl Policy for FullReschedulePolicy {
    fn label(&self) -> &'static str {
        "full-reschedule"
    }

    fn on_start(&mut self, state: &SimState<'_>) -> Result<(), SimError> {
        // Replay priorities: the planned start times (ties broken by job
        // index inside the placement routine). Only the live frontier is
        // ever read back — started jobs cannot re-enter the ready set — so
        // initialisation is O(live), not O(world).
        let n = state.instance.num_jobs();
        self.decision = vec![Allocation::new(Vec::new()); n];
        self.keys = vec![0.0; n];
        for j in live_frontier(state) {
            self.decision[j] = state.plan.jobs[j].alloc.clone();
            self.keys[j] = state.plan.jobs[j].start;
        }
        self.min_interval = self.min_interval_frac * state.plan.makespan.max(0.0);
        self.last_reschedule = f64::NEG_INFINITY;
        self.planned_completed_max = state
            .plan
            .jobs
            .iter()
            .filter(|sj| state.completed[sj.job])
            .map(|sj| sj.finish)
            .fold(0.0f64, f64::max);
        Ok(())
    }

    fn on_events(
        &mut self,
        state: &SimState<'_>,
        batch: &[TraceEvent],
    ) -> Result<Vec<TraceEvent>, SimError> {
        // Fold this batch's completions into the progress maximum first:
        // the debounce below compares against plan progress *including*
        // them, exactly like the former full rescan did.
        for e in batch {
            if let TraceEvent::JobCompleted { job, .. } = e {
                self.planned_completed_max =
                    self.planned_completed_max.max(state.plan.jobs[*job].finish);
            }
        }
        let Some(trigger) = self.trigger(batch) else {
            return Ok(vec![]);
        };
        if self.debounced(state, trigger) {
            return Ok(vec![]);
        }
        self.last_reschedule = state.now;
        let jobs = self.reschedule(state)?;
        Ok(vec![TraceEvent::Rescheduled {
            time: state.now,
            trigger: trigger.to_string(),
            jobs,
        }])
    }

    fn select_starts(&mut self, state: &SimState<'_>) -> Vec<(usize, Allocation)> {
        let mut ready = state.ready.clone();
        let mut resources = state.resources.clone();
        self.scheduler
            .schedule_ready(&mut ready, &self.keys, &self.decision, &mut resources)
            .into_iter()
            .map(|j| (j, self.decision[j].clone()))
            .collect()
    }
}
