//! Scheduling policies: how a run reacts (or not) when reality diverges from
//! the plan.
//!
//! The engine enforces the invariants; a [`Policy`] only decides *which*
//! ready jobs start and with which allocations. Three reference policies
//! cover the reaction spectrum:
//!
//! * [`StaticPolicy`] — replay the plan order verbatim; no backfilling, no
//!   re-allocation. Jobs slide when their predecessors run long.
//! * [`ReactiveListPolicy`] — run Phase 2's placement pass (the shared
//!   [`ListScheduler::schedule_ready`] routine) over the actual ready set,
//!   reusing the Phase-1 allocations.
//! * [`FullReschedulePolicy`] — on perturbation events (arrivals, capacity
//!   changes, stragglers) re-invoke the complete two-phase [`MrlsScheduler`]
//!   on the pending jobs and adopt its new allocations and priorities.
//!
//! All three are **indexed per event**: the list policies keep a persistent
//! priority-ordered [`ReadyQueue`] mirroring the engine's ready set (newly
//! ready jobs are binary-inserted from the event batch instead of re-sorting
//! a fresh clone at every decision point), and every policy carries a
//! *placement watermark* (`settled`): once a placement pass ran and the only
//! world changes since are the policy's own starts — which strictly shrink
//! availability — a repeat pass provably starts nothing and is skipped
//! outright. Both changes are behaviour-preserving by construction; the
//! serve differential suite pins them byte-identical to the pre-index
//! semantics.

use crate::engine::{SimError, SimState};
use crate::trace::TraceEvent;
use mrls_core::{
    ListScheduler, MrlsConfig, MrlsScheduler, PlacementMode, PriorityRule, ReadyQueue, SlotSet,
};
use mrls_model::{Allocation, Instance, MoldableJob, SystemConfig};
use serde::{Deserialize, Serialize};

/// The uncompleted, unabandoned jobs of a state, ascending — the **live
/// frontier**. Every job a policy can still start is in here; running jobs
/// are included because under failure injection a running attempt can fail
/// and re-enter the ready set, so the mirrored queue's universe must cover
/// them. Because a successor can only start after its predecessors complete,
/// every descendant of a member is also a member: the frontier is
/// successor-closed, which is what lets policies restrict their per-drive
/// initialisation to it. Scanning for it is O(world); callers that already
/// track the frontier (the `mrls-serve` service core) pass it to
/// [`Policy::on_plan_update`] instead so a long-lived policy instance
/// re-initialises in O(live).
fn live_frontier(state: &SimState<'_>) -> Vec<usize> {
    (0..state.instance.num_jobs())
        .filter(|&j| !state.completed[j] && !state.abandoned[j])
        .collect()
}

/// The planning timeline a look-ahead pass places against: the authoritative
/// availability from `now` on, with every running job's allocation returned
/// at its (currently known) finish time. Completions at `now` were already
/// processed, so every running job finishes strictly later than `now` and
/// the first slot stays exactly the engine's availability — look-ahead can
/// never start a job the engine would reject.
fn lookahead_timeline(state: &SimState<'_>) -> SlotSet {
    let mut timeline = state.resources.timeline(state.now);
    for r in &state.running {
        timeline.release_from(r.finish.max(state.now), state.alloc_used(r.job));
    }
    timeline
}

/// A scheduling policy driven by the engine at every decision point.
pub trait Policy: std::fmt::Debug {
    /// Short label for traces and experiment tables.
    fn label(&self) -> &'static str;

    /// Called once before the run with the initial state.
    fn on_start(&mut self, state: &SimState<'_>) -> Result<(), SimError>;

    /// Incremental re-initialisation of a policy instance kept across the
    /// drive calls of a persistent run: called *between* drives, after the
    /// in-flight plan was updated, with `live` the unstarted jobs of the
    /// world in ascending order (exactly what [`Policy::on_start`] would
    /// discover by scanning, handed over so the refresh costs O(live)).
    ///
    /// The contract matches a fresh `on_start`: afterwards the policy must
    /// make bit-identical decisions to a newly built instance observing the
    /// same state. Callers guarantee that plan entries of completed jobs
    /// hold their realized placements (the persistent-run round contract —
    /// `PersistentRun::sync_realized` before the hook).
    ///
    /// The default forwards to `on_start`, so external policies stay
    /// correct without implementing the incremental path.
    fn on_plan_update(&mut self, state: &SimState<'_>, live: &[usize]) -> Result<(), SimError> {
        let _ = live;
        self.on_start(state)
    }

    /// Called after every batch of world events (completions, arrivals,
    /// capacity changes). May return policy events (e.g.
    /// [`TraceEvent::Rescheduled`]) to append to the trace.
    fn on_events(
        &mut self,
        state: &SimState<'_>,
        batch: &[TraceEvent],
    ) -> Result<Vec<TraceEvent>, SimError>;

    /// Picks the jobs to start right now, in order, with their allocations.
    /// Every returned job must be ready and every allocation must fit the
    /// availability left by the starts before it; the engine verifies this
    /// and aborts the run otherwise. Returning an empty vector ends the
    /// decision point.
    fn select_starts(&mut self, state: &SimState<'_>) -> Vec<(usize, Allocation)>;
}

/// Which reference policy to run (serialisable configuration handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Replay the plan; jobs slide.
    Static,
    /// Re-run the list phase over the ready set at every event.
    ReactiveList,
    /// Re-invoke the two-phase scheduler on perturbation events.
    FullReschedule,
}

impl PolicyKind {
    /// All reference policies, in sweep order.
    pub fn all() -> [PolicyKind; 3] {
        [
            PolicyKind::Static,
            PolicyKind::ReactiveList,
            PolicyKind::FullReschedule,
        ]
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Static => "static",
            PolicyKind::ReactiveList => "reactive-list",
            PolicyKind::FullReschedule => "full-reschedule",
        }
    }

    /// Builds the policy with its default configuration.
    pub fn build(&self) -> Box<dyn Policy> {
        match self {
            PolicyKind::Static => Box::new(StaticPolicy::new()),
            PolicyKind::ReactiveList => {
                Box::new(ReactiveListPolicy::new(PriorityRule::CriticalPath))
            }
            PolicyKind::FullReschedule => {
                Box::new(FullReschedulePolicy::new(MrlsConfig::default(), 1.5))
            }
        }
    }
}

/// Replays the plan: jobs start in planned-start order, without reordering or
/// backfilling. When a predecessor runs long, everything behind it slides.
#[derive(Debug, Clone, Default)]
pub struct StaticPolicy {
    order: Vec<usize>,
    cursor: usize,
    decision: Vec<Allocation>,
    /// Placement watermark: `true` once a pass ran with no world change
    /// since — a repeat pass cannot start anything (availability only
    /// shrank) and is skipped.
    settled: bool,
}

impl StaticPolicy {
    /// Creates the policy; the plan is read from the state at `on_start`.
    pub fn new() -> Self {
        StaticPolicy::default()
    }

    /// (Re-)derives the replay order and allocations over the given live
    /// frontier — O(live log live).
    fn init_over(&mut self, state: &SimState<'_>, mut order: Vec<usize>) {
        let n = state.instance.num_jobs();
        order.sort_by(|&a, &b| {
            state.plan.jobs[a]
                .start
                .total_cmp(&state.plan.jobs[b].start)
                .then(a.cmp(&b))
        });
        self.cursor = 0;
        // Entries of started jobs are never read again; only the frontier
        // is refreshed (the buffer grows with the world and keeps stale
        // values elsewhere).
        self.decision.resize(n, Allocation::new(Vec::new()));
        for &j in &order {
            self.decision[j] = state.plan.jobs[j].alloc.clone();
        }
        self.order = order;
        self.settled = false;
    }
}

impl Policy for StaticPolicy {
    fn label(&self) -> &'static str {
        "static"
    }

    fn on_start(&mut self, state: &SimState<'_>) -> Result<(), SimError> {
        // Only the live frontier can still be started; already started jobs
        // would be skipped by the cursor anyway, so restricting the order to
        // the frontier visits the same subsequence at O(live) cost.
        self.init_over(state, live_frontier(state));
        Ok(())
    }

    fn on_plan_update(&mut self, state: &SimState<'_>, live: &[usize]) -> Result<(), SimError> {
        self.init_over(state, live.to_vec());
        Ok(())
    }

    fn on_events(
        &mut self,
        _state: &SimState<'_>,
        _batch: &[TraceEvent],
    ) -> Result<Vec<TraceEvent>, SimError> {
        self.settled = false;
        Ok(vec![])
    }

    fn select_starts(&mut self, state: &SimState<'_>) -> Vec<(usize, Allocation)> {
        if self.settled {
            return Vec::new();
        }
        let mut starts = Vec::new();
        let mut resources = state.resources.clone();
        while self.cursor < self.order.len() {
            let j = self.order[self.cursor];
            if state.started[j] {
                self.cursor += 1;
                continue;
            }
            if state.is_ready(j) && resources.fits(&self.decision[j]) {
                resources.acquire(&self.decision[j]);
                starts.push((j, self.decision[j].clone()));
                self.cursor += 1;
            } else {
                // Strict plan order: the head of the queue blocks everything
                // behind it.
                break;
            }
        }
        self.settled = true;
        starts
    }
}

/// The persistent ready queue both list policies maintain: a mirror of the
/// engine's ready set, kept in `(priority key, job)` order so a decision
/// point drains it directly instead of sorting a fresh clone of the ready
/// set — O(log r) maintenance per event instead of O(r log r) per pass.
#[derive(Debug, Clone, Default)]
struct MirroredQueue {
    queue: ReadyQueue,
}

impl MirroredQueue {
    /// Rebuilds the mirror from the engine's ready set (drive start / plan
    /// update — O(live log live)). `live` is the universe the requirement
    /// index is addressed by: every job that may still be inserted (the
    /// uncompleted frontier) — anything becoming ready later is uncompleted
    /// now (including a running job whose attempt fails and retries), so it
    /// is covered.
    fn rebuild(
        &mut self,
        state: &SimState<'_>,
        live: &[usize],
        keys: &[f64],
        decision: &[Allocation],
    ) {
        self.queue = ReadyQueue::with_universe(live, state.ready.clone(), keys, decision);
    }

    /// Folds one event batch into the mirror: any job the batch could have
    /// made ready (a released job, a completed job's successors) is
    /// binary-inserted iff the engine's post-batch state lists it as ready.
    /// Inserting a queued job is a no-op, so overlapping candidates (a job
    /// released and unblocked in the same batch) stay unique.
    fn absorb(
        &mut self,
        state: &SimState<'_>,
        batch: &[TraceEvent],
        keys: &[f64],
        decision: &[Allocation],
    ) {
        for e in batch {
            match e {
                TraceEvent::JobCompleted { job, .. } => {
                    for &succ in state.instance.dag.successors(*job) {
                        if state.is_ready(succ) {
                            self.queue.insert(succ, keys, &decision[succ]);
                        }
                    }
                }
                TraceEvent::JobReleased { job, .. } if state.is_ready(*job) => {
                    self.queue.insert(*job, keys, &decision[*job]);
                }
                // A retried job re-enters the ready set exactly once per
                // backoff expiry; the engine removed it at failure time, so
                // re-insertion here keeps the mirror bit-identical.
                TraceEvent::JobRetried { job, .. } if state.is_ready(*job) => {
                    self.queue.insert(*job, keys, &decision[*job]);
                }
                _ => {}
            }
        }
        debug_assert_eq!(
            {
                let mut mirrored: Vec<usize> = self.queue.as_slice().to_vec();
                mirrored.sort_unstable();
                mirrored
            },
            state.ready,
            "mirrored ready queue diverged from the engine's ready set"
        );
    }
}

/// Re-runs the list phase (the shared placement routine of Algorithm 2) over
/// the actual ready set at every event, reusing the Phase-1 allocations.
#[derive(Debug, Clone)]
pub struct ReactiveListPolicy {
    scheduler: ListScheduler,
    mode: PlacementMode,
    decision: Vec<Allocation>,
    keys: Vec<f64>,
    /// Execution times under `decision` — the window durations a look-ahead
    /// pass plans with. Maintained alongside `keys` (same branches, same
    /// frontier restriction).
    times: Vec<f64>,
    mirror: MirroredQueue,
    settled: bool,
    /// The frontier the keys were last derived over — `on_plan_update` skips
    /// the recompute when the frontier and its plan allocations are
    /// unchanged (no placement changed ⇒ same sub-instance ⇒ same keys).
    last_live: Option<Vec<usize>>,
}

impl ReactiveListPolicy {
    /// Creates the policy with the given ready-queue priority rule.
    pub fn new(priority: PriorityRule) -> Self {
        ReactiveListPolicy {
            scheduler: ListScheduler::new(priority),
            mode: PlacementMode::AtEvent,
            decision: Vec::new(),
            keys: Vec::new(),
            times: Vec::new(),
            mirror: MirroredQueue::default(),
            settled: false,
            last_live: None,
        }
    }

    /// Selects the placement mode ([`PlacementMode::AtEvent`] by default).
    pub fn with_placement(mut self, mode: PlacementMode) -> Self {
        self.mode = mode;
        self
    }

    /// (Re-)derives allocations and priority keys over the given live
    /// frontier and rebuilds the ready-queue mirror.
    fn init_over(&mut self, state: &SimState<'_>, live: &[usize]) -> Result<(), SimError> {
        let n = state.instance.num_jobs();
        // `Explicit` keys are raw per-job vectors; everything else is
        // pointwise in (time, allocation, bottom level), and the frontier is
        // successor-closed, so bottom levels computed on the live
        // sub-instance are bit-identical to the full-graph ones. Keys and
        // decisions of started jobs are never read (only ready jobs are).
        if live.len() == n || matches!(self.scheduler.priority(), PriorityRule::Explicit(_)) {
            self.decision = state.plan.allocations();
            let times = self
                .scheduler
                .evaluate_times(state.instance, &self.decision)?;
            self.keys = self
                .scheduler
                .priority_keys(state.instance, &self.decision, &times)?;
            self.times = times;
        } else {
            let (sub_dag, mapping) = state.instance.dag.induced_subgraph_sorted(live);
            let sub_jobs: Vec<MoldableJob> = mapping
                .iter()
                .map(|&old| state.instance.jobs[old].clone())
                .collect();
            let sub_instance = Instance::new(state.instance.system.clone(), sub_dag, sub_jobs)
                .map_err(|e| SimError::InvalidPlan(e.to_string()))?;
            let sub_decision: Vec<Allocation> = mapping
                .iter()
                .map(|&old| state.plan.jobs[old].alloc.clone())
                .collect();
            let times = self
                .scheduler
                .evaluate_times(&sub_instance, &sub_decision)?;
            let sub_keys = self
                .scheduler
                .priority_keys(&sub_instance, &sub_decision, &times)?;
            self.decision.resize(n, Allocation::new(Vec::new()));
            self.keys.resize(n, 0.0);
            self.times.resize(n, 0.0);
            for (((&old, key), alloc), t) in
                mapping.iter().zip(sub_keys).zip(sub_decision).zip(times)
            {
                self.keys[old] = key;
                self.decision[old] = alloc;
                self.times[old] = t;
            }
        }
        self.mirror.rebuild(state, live, &self.keys, &self.decision);
        self.settled = false;
        Ok(())
    }
}

impl Policy for ReactiveListPolicy {
    fn label(&self) -> &'static str {
        "reactive-list"
    }

    fn on_start(&mut self, state: &SimState<'_>) -> Result<(), SimError> {
        let live = live_frontier(state);
        self.init_over(state, &live)?;
        self.last_live = Some(live);
        Ok(())
    }

    fn on_plan_update(&mut self, state: &SimState<'_>, live: &[usize]) -> Result<(), SimError> {
        // Diff-aware refresh: when the frontier is the one the keys were
        // derived over and no live placement changed, the induced
        // sub-instance is identical, so the recompute (times, bottom levels,
        // keys) would reproduce the stored values bit for bit — skip it and
        // only rebuild the ready-queue mirror.
        let unchanged = self.last_live.as_deref() == Some(live)
            && live
                .iter()
                .all(|&j| state.plan.jobs[j].alloc == self.decision[j]);
        if unchanged {
            #[cfg(debug_assertions)]
            {
                let mut fresh = self.clone();
                fresh.init_over(state, live)?;
                for &j in live {
                    debug_assert_eq!(
                        self.keys[j].to_bits(),
                        fresh.keys[j].to_bits(),
                        "diff-aware key reuse diverged from a full recompute (job {j})"
                    );
                    debug_assert_eq!(
                        self.times[j].to_bits(),
                        fresh.times[j].to_bits(),
                        "diff-aware time reuse diverged from a full recompute (job {j})"
                    );
                }
            }
            self.mirror.rebuild(state, live, &self.keys, &self.decision);
            self.settled = false;
            return Ok(());
        }
        self.init_over(state, live)?;
        self.last_live = Some(live.to_vec());
        Ok(())
    }

    fn on_events(
        &mut self,
        state: &SimState<'_>,
        batch: &[TraceEvent],
    ) -> Result<Vec<TraceEvent>, SimError> {
        self.settled = false;
        self.mirror.absorb(state, batch, &self.keys, &self.decision);
        Ok(vec![])
    }

    fn select_starts(&mut self, state: &SimState<'_>) -> Vec<(usize, Allocation)> {
        if self.settled {
            return Vec::new();
        }
        let started = match self.mode {
            PlacementMode::AtEvent => {
                let mut resources = state.resources.clone();
                self.scheduler.schedule_ready(
                    &mut self.mirror.queue,
                    &self.keys,
                    &self.decision,
                    &mut resources,
                )
            }
            PlacementMode::LookAhead => {
                let mut timeline = lookahead_timeline(state);
                self.scheduler.schedule_ready_lookahead(
                    &mut self.mirror.queue,
                    &self.keys,
                    &self.decision,
                    &self.times,
                    &mut timeline,
                )
            }
        };
        self.settled = true;
        started
            .into_iter()
            .map(|j| (j, self.decision[j].clone()))
            .collect()
    }
}

/// Re-invokes the complete two-phase scheduler on the pending jobs whenever a
/// perturbation event fires (an online arrival, a capacity change, or a
/// straggler whose realized time exceeded `straggler_threshold ×` nominal),
/// adopting the new allocations and the new plan's start order as priorities.
/// Between reschedules it behaves like [`ReactiveListPolicy`].
///
/// Reschedules are **debounced** so the policy no longer thrashes under pure
/// noise at high sigma: after a reschedule, further arrival/straggler
/// triggers are ignored for `min_interval_frac ×` the planned makespan, and
/// straggler triggers additionally require the run to actually be late —
/// current time above `stretch_threshold ×` the planned finish time of the
/// work completed so far. Capacity changes are structural and always
/// reschedule.
#[derive(Debug, Clone)]
pub struct FullReschedulePolicy {
    config: MrlsConfig,
    straggler_threshold: f64,
    min_interval_frac: f64,
    stretch_threshold: f64,
    scheduler: ListScheduler,
    mode: PlacementMode,
    decision: Vec<Allocation>,
    keys: Vec<f64>,
    /// Execution times under `decision` — look-ahead window durations.
    times: Vec<f64>,
    mirror: MirroredQueue,
    settled: bool,
    min_interval: f64,
    last_reschedule: f64,
    /// Latest planned finish among completed jobs, maintained incrementally
    /// from completion events (recomputing it per event would be O(world)).
    planned_completed_max: f64,
}

impl FullReschedulePolicy {
    /// Creates the policy with the default debounce (see
    /// [`FullReschedulePolicy::with_debounce`]). `config` drives the
    /// re-invoked scheduler; `straggler_threshold` is the realized/nominal
    /// factor above which a completion counts as a straggler.
    pub fn new(config: MrlsConfig, straggler_threshold: f64) -> Self {
        let priority = config.priority.clone();
        FullReschedulePolicy {
            config,
            straggler_threshold: straggler_threshold.max(1.0),
            min_interval_frac: 0.25,
            stretch_threshold: 1.25,
            scheduler: ListScheduler::new(priority),
            mode: PlacementMode::AtEvent,
            decision: Vec::new(),
            keys: Vec::new(),
            times: Vec::new(),
            mirror: MirroredQueue::default(),
            settled: false,
            min_interval: 0.0,
            last_reschedule: f64::NEG_INFINITY,
            planned_completed_max: 0.0,
        }
    }

    /// Selects the placement mode ([`PlacementMode::AtEvent`] by default).
    pub fn with_placement(mut self, mode: PlacementMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the debounce: `min_interval_frac` is the minimum virtual
    /// time between reschedules as a fraction of the planned makespan (zero
    /// disables the interval), and `stretch_threshold` is the lateness factor
    /// below which straggler triggers are ignored (`<= 1` disables the
    /// hysteresis).
    pub fn with_debounce(mut self, min_interval_frac: f64, stretch_threshold: f64) -> Self {
        self.min_interval_frac = min_interval_frac.max(0.0);
        self.stretch_threshold = stretch_threshold;
        self
    }

    /// (Re-)derives replay priorities over the given live frontier and
    /// resets the per-drive debounce state — the shared tail of `on_start`
    /// and `on_plan_update`.
    fn init_over(&mut self, state: &SimState<'_>, live: &[usize]) {
        let n = state.instance.num_jobs();
        // Replay priorities: the planned start times (ties broken by job
        // index inside the placement routine). Only the live frontier is
        // ever read back — completed jobs cannot re-enter the ready set, and
        // a running job that fails re-enters through its frontier entry — so
        // initialisation is O(live), not O(world).
        self.decision.resize(n, Allocation::new(Vec::new()));
        self.keys.resize(n, 0.0);
        self.times.resize(n, 0.0);
        for &j in live {
            self.decision[j] = state.plan.jobs[j].alloc.clone();
            self.keys[j] = state.plan.jobs[j].start;
            self.times[j] = state.plan.jobs[j].finish - state.plan.jobs[j].start;
        }
        self.min_interval = self.min_interval_frac * state.plan.makespan.max(0.0);
        self.last_reschedule = f64::NEG_INFINITY;
        self.mirror.rebuild(state, live, &self.keys, &self.decision);
        self.settled = false;
    }

    /// The reschedule trigger in `batch`, if any.
    fn trigger(&self, batch: &[TraceEvent]) -> Option<&'static str> {
        let mut straggler = false;
        for e in batch {
            match e {
                TraceEvent::CapacityChanged { .. } => return Some("capacity-change"),
                TraceEvent::JobReleased { .. } => return Some("arrival"),
                TraceEvent::JobFailed { .. } => return Some("failure"),
                TraceEvent::JobRetried { .. } => return Some("retry"),
                TraceEvent::JobCompleted {
                    nominal, realized, ..
                } => {
                    straggler |= *realized > self.straggler_threshold * *nominal;
                }
                _ => {}
            }
        }
        straggler.then_some("straggler")
    }

    /// How late the run currently is: current time over the latest planned
    /// finish among completed jobs (1.0 = on plan; infinite before the first
    /// completion, which cannot arise for straggler triggers). The maximum
    /// is maintained from completion events, not recomputed.
    fn progress_stretch(&self, state: &SimState<'_>) -> f64 {
        if self.planned_completed_max > 0.0 {
            state.now / self.planned_completed_max
        } else {
            f64::INFINITY
        }
    }

    /// `true` iff the debounce suppresses this trigger.
    fn debounced(&self, state: &SimState<'_>, trigger: &str) -> bool {
        if trigger == "capacity-change" {
            return false;
        }
        if state.now - self.last_reschedule < self.min_interval {
            return true;
        }
        trigger == "straggler" && self.progress_stretch(state) <= self.stretch_threshold
    }

    /// Recomputes allocations and priorities for every pending (unstarted)
    /// job by scheduling the induced sub-instance from scratch.
    fn reschedule(&mut self, state: &SimState<'_>) -> Result<usize, SimError> {
        let n = state.instance.num_jobs();
        let pending: Vec<usize> = (0..n)
            .filter(|&j| !state.started[j] && !state.abandoned[j])
            .collect();
        if pending.is_empty() {
            return Ok(0);
        }
        let (sub_dag, mapping) = state.instance.dag.induced_subgraph_sorted(&pending);
        let sub_jobs: Vec<MoldableJob> = mapping
            .iter()
            .map(|&old| state.instance.jobs[old].clone())
            .collect();
        // Plan against the machine as it is now (post-drop capacities); the
        // scenario guarantees capacities stay >= 1.
        let system = SystemConfig::new(state.capacities.clone())
            .map_err(|e| SimError::InvalidScenario(e.to_string()))?;
        let sub_instance = Instance::new(system, sub_dag, sub_jobs)
            .map_err(|e| SimError::InvalidScenario(e.to_string()))?;
        match MrlsScheduler::new(self.config.clone()).schedule(&sub_instance) {
            Ok(result) => {
                // Adopt the new allocations; use the new plan's start times
                // as priorities (pending jobs only ever compete with each
                // other, so keys of started jobs are irrelevant).
                for sj in &result.schedule.jobs {
                    let old = mapping[sj.job];
                    self.decision[old] = sj.alloc.clone();
                    self.keys[old] = sj.start;
                    self.times[old] = sj.finish - sj.start;
                }
            }
            Err(_) => {
                // Fallback: keep the current allocations but clamp them to
                // the degraded capacities so pending jobs stay startable.
                for &old in &pending {
                    let alloc = &self.decision[old];
                    let clamped: Vec<u64> = (0..alloc.dim())
                        .map(|i| {
                            if alloc[i] == 0 {
                                0
                            } else {
                                alloc[i].min(state.capacities[i]).max(1)
                            }
                        })
                        .collect();
                    self.decision[old] = Allocation::new(clamped);
                    // The clamped allocation changes the execution time the
                    // look-ahead window is sized with.
                    let t = state.instance.jobs[old].spec.time(&self.decision[old]);
                    if t.is_finite() && t > 0.0 {
                        self.times[old] = t;
                    }
                }
            }
        }
        // The adopted keys reorder the mirrored ready queue (and re-rank its
        // requirement index, which is addressed by key order).
        self.mirror.queue.resort(&self.keys, &self.decision);
        Ok(pending.len())
    }
}

impl Policy for FullReschedulePolicy {
    fn label(&self) -> &'static str {
        "full-reschedule"
    }

    fn on_start(&mut self, state: &SimState<'_>) -> Result<(), SimError> {
        self.init_over(state, &live_frontier(state));
        // Fold the plan progress of already completed work (a resumed run):
        // an O(world) sweep, paid only at run initialisation — the per-round
        // path (`on_plan_update`) reads the engine's running maximum instead.
        self.planned_completed_max = state
            .plan
            .jobs
            .iter()
            .filter(|sj| state.completed[sj.job])
            .map(|sj| sj.finish)
            .fold(0.0f64, f64::max);
        Ok(())
    }

    fn on_plan_update(&mut self, state: &SimState<'_>, live: &[usize]) -> Result<(), SimError> {
        self.init_over(state, live);
        // Between rounds the plan entries of completed jobs hold their
        // realized placements (the caller contract), so the `on_start` fold
        // above equals the engine's incrementally maintained maximum — read
        // it in O(1) instead of sweeping the world.
        debug_assert_eq!(
            state
                .plan
                .jobs
                .iter()
                .filter(|sj| state.completed[sj.job])
                .map(|sj| sj.finish)
                .fold(0.0f64, f64::max)
                .to_bits(),
            state.max_completed_finish.to_bits(),
            "completed plan entries must hold realized placements at on_plan_update"
        );
        self.planned_completed_max = state.max_completed_finish;
        Ok(())
    }

    fn on_events(
        &mut self,
        state: &SimState<'_>,
        batch: &[TraceEvent],
    ) -> Result<Vec<TraceEvent>, SimError> {
        self.settled = false;
        // Fold this batch's completions into the progress maximum first:
        // the debounce below compares against plan progress *including*
        // them, exactly like the former full rescan did.
        for e in batch {
            if let TraceEvent::JobCompleted { job, .. } = e {
                self.planned_completed_max =
                    self.planned_completed_max.max(state.plan.jobs[*job].finish);
            }
        }
        self.mirror.absorb(state, batch, &self.keys, &self.decision);
        let Some(trigger) = self.trigger(batch) else {
            return Ok(vec![]);
        };
        if self.debounced(state, trigger) {
            return Ok(vec![]);
        }
        self.last_reschedule = state.now;
        let jobs = self.reschedule(state)?;
        Ok(vec![TraceEvent::Rescheduled {
            time: state.now,
            trigger: trigger.to_string(),
            jobs,
        }])
    }

    fn select_starts(&mut self, state: &SimState<'_>) -> Vec<(usize, Allocation)> {
        if self.settled {
            return Vec::new();
        }
        let started = match self.mode {
            PlacementMode::AtEvent => {
                let mut resources = state.resources.clone();
                self.scheduler.schedule_ready(
                    &mut self.mirror.queue,
                    &self.keys,
                    &self.decision,
                    &mut resources,
                )
            }
            PlacementMode::LookAhead => {
                let mut timeline = lookahead_timeline(state);
                self.scheduler.schedule_ready_lookahead(
                    &mut self.mirror.queue,
                    &self.keys,
                    &self.decision,
                    &self.times,
                    &mut timeline,
                )
            }
        };
        self.settled = true;
        started
            .into_iter()
            .map(|j| (j, self.decision[j].clone()))
            .collect()
    }
}
