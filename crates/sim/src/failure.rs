//! Deterministic fault injection: seeded failure models, retry budgets,
//! and resource-outage timelines.
//!
//! The paper's model assumes jobs run to completion; real work fails. A
//! [`FailurePlan`] describes *how* attempts die — per-attempt failure
//! probability, straggler-kill deadlines, timed resource outages — and
//! *what happens next* — a [`RetryPolicy`] with a bounded attempt budget
//! and virtual-time exponential backoff before re-eligibility.
//!
//! Like [`Perturber`](crate::Perturber), the [`FailureSampler`] draws from
//! its own seeded `ChaCha8` stream with a **fixed number of uniform
//! variates per attempt** (depending only on the model, never on the
//! outcome), so a checkpointed run resumes the stream exactly by replaying
//! the recorded attempt count, and two same-seed runs fail byte-identically.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Why an attempt (or a job) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailCause {
    /// A random injected fault killed the attempt mid-run.
    Fault,
    /// The attempt overran its straggler-kill deadline and was killed.
    Straggler,
    /// A resource outage killed every attempt running on the type.
    Outage {
        /// The resource type that went out.
        resource: usize,
    },
    /// An ancestor exhausted its retry budget, so this job can never become
    /// ready and is abandoned without ever running.
    Cascade,
}

impl FailCause {
    /// Stable lowercase label used as the JSON / metrics key.
    pub fn label(&self) -> String {
        match self {
            FailCause::Fault => "fault".to_string(),
            FailCause::Straggler => "straggler".to_string(),
            FailCause::Outage { resource } => format!("outage[{resource}]"),
            FailCause::Cascade => "cascade".to_string(),
        }
    }
}

impl std::fmt::Display for FailCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// How running attempts die. Every model answers, per attempt, "does this
/// attempt fail, and at what fraction of its realized duration?".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FailureModel {
    /// Attempts never fail (outages in the plan still apply).
    None,
    /// With probability `prob`, an attempt dies partway through: the death
    /// point is uniform over its realized duration.
    Random {
        /// Per-attempt failure probability.
        prob: f64,
    },
    /// An attempt whose realized duration exceeds `deadline_factor` times
    /// its nominal duration is killed exactly at the deadline (a straggler
    /// kill, deterministic given the perturbed duration).
    StragglerKill {
        /// Kill deadline as a multiple of the nominal duration (`> 1`).
        deadline_factor: f64,
    },
    /// Apply several models; the earliest death point wins.
    Compose(Vec<FailureModel>),
}

impl FailureModel {
    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            FailureModel::None => "none",
            FailureModel::Random { .. } => "random",
            FailureModel::StragglerKill { .. } => "straggler-kill",
            FailureModel::Compose(_) => "compose",
        }
    }

    /// `true` iff the model never fails any attempt.
    pub fn is_failure_free(&self) -> bool {
        match self {
            FailureModel::None => true,
            FailureModel::Random { prob } => *prob <= 0.0,
            FailureModel::StragglerKill { deadline_factor } => !deadline_factor.is_finite(),
            FailureModel::Compose(models) => models.iter().all(|m| m.is_failure_free()),
        }
    }
}

/// A timed outage of one resource type: at `time`, every attempt running
/// with a non-zero allocation on `resource` fails with
/// [`FailCause::Outage`]. Capacity is untouched — the outage models a
/// transient fault domain (a rack reboot), not a capacity change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// Virtual time of the outage.
    pub time: f64,
    /// The resource type that goes out.
    pub resource: usize,
}

/// Bounded retry with virtual-time exponential backoff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts a job may consume (>= 1). A job whose last attempt
    /// fails is abandoned, along with every descendant.
    pub max_attempts: u32,
    /// Backoff before the second attempt, in virtual time.
    pub backoff_base: f64,
    /// Multiplier applied per further attempt (`delay_k = base * factor^(k-1)`
    /// after the `k`-th failed attempt).
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: 0.5,
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// The backoff delay after the `attempt`-th failed attempt (1-based).
    pub fn delay_after(&self, attempt: u32) -> f64 {
        self.backoff_base * self.backoff_factor.powi(attempt.saturating_sub(1) as i32)
    }
}

/// The full failure configuration of a run: the per-attempt failure model,
/// the timed outage schedule, and the retry policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailurePlan {
    /// How attempts die.
    pub model: FailureModel,
    /// Timed resource outages (sorted by the engine on installation).
    pub outages: Vec<Outage>,
    /// What happens after a failure.
    pub retry: RetryPolicy,
}

impl FailurePlan {
    /// A plan under which nothing ever fails.
    pub fn none() -> Self {
        FailurePlan {
            model: FailureModel::None,
            outages: Vec::new(),
            retry: RetryPolicy::default(),
        }
    }

    /// `true` iff the plan can never fail any attempt.
    pub fn is_failure_free(&self) -> bool {
        self.model.is_failure_free() && self.outages.is_empty()
    }
}

impl Default for FailurePlan {
    fn default() -> Self {
        FailurePlan::none()
    }
}

/// Samples attempt failures deterministically from a seeded stream.
///
/// Mirrors the [`Perturber`](crate::Perturber) stream discipline: the number
/// of uniform draws consumed per attempt depends only on the model, so
/// [`FailureSampler::resume`] reconstructs the stream position exactly from
/// the recorded attempt count.
#[derive(Debug, Clone)]
pub struct FailureSampler {
    model: FailureModel,
    rng: ChaCha8Rng,
    attempts: u64,
}

/// Seed-domain separator: the failure stream must be independent of the
/// perturbation stream even though both derive from the run seed.
const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

impl FailureSampler {
    /// Creates a sampler for `model` from the run seed (domain-separated
    /// from the perturbation stream).
    pub fn new(model: FailureModel, seed: u64) -> Self {
        FailureSampler {
            model,
            rng: ChaCha8Rng::seed_from_u64(seed ^ SEED_MIX),
            attempts: 0,
        }
    }

    /// Recreates a sampler that has already judged `attempts` attempts.
    pub fn resume(model: FailureModel, seed: u64, attempts: u64) -> Self {
        let mut s = FailureSampler::new(model, seed);
        for _ in 0..attempts {
            s.sample(1.0);
        }
        s
    }

    /// The model in use.
    pub fn model(&self) -> &FailureModel {
        &self.model
    }

    /// How many attempts have been judged so far (for checkpointing).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Judges one attempt whose realized duration is `ratio` times its
    /// nominal duration. Returns the death point as a fraction of the
    /// *realized* duration plus the cause, or `None` if the attempt
    /// survives. Consumes a fixed number of draws regardless of outcome.
    pub fn sample(&mut self, ratio: f64) -> Option<(f64, FailCause)> {
        let out = Self::judge(&mut self.rng, &self.model, ratio);
        self.attempts += 1;
        out
    }

    fn judge(rng: &mut ChaCha8Rng, model: &FailureModel, ratio: f64) -> Option<(f64, FailCause)> {
        match model {
            FailureModel::None => None,
            FailureModel::Random { prob } => {
                // Always consume both draws so the stream position does not
                // depend on whether this attempt failed.
                let hit = rng.gen::<f64>() < *prob;
                let u: f64 = rng.gen();
                // Keep the death point strictly inside (0, 1] so a failed
                // attempt always consumes some virtual time.
                hit.then(|| (u.clamp(1e-3, 1.0), FailCause::Fault))
            }
            FailureModel::StragglerKill { deadline_factor } => {
                // Deterministic given the perturbed duration: no draws.
                (ratio > *deadline_factor && deadline_factor.is_finite()).then(|| {
                    (
                        (deadline_factor / ratio).clamp(1e-3, 1.0),
                        FailCause::Straggler,
                    )
                })
            }
            FailureModel::Compose(models) => {
                let mut earliest: Option<(f64, FailCause)> = None;
                for m in models {
                    let hit = Self::judge(rng, m, ratio);
                    earliest = match (earliest, hit) {
                        (None, h) => h,
                        (e, None) => e,
                        (Some((fe, ce)), Some((fh, ch))) => {
                            if fh < fe {
                                Some((fh, ch))
                            } else {
                                Some((fe, ce))
                            }
                        }
                    };
                }
                earliest
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(FailCause::Fault.label(), "fault");
        assert_eq!(FailCause::Straggler.label(), "straggler");
        assert_eq!(FailCause::Outage { resource: 1 }.label(), "outage[1]");
        assert_eq!(format!("{}", FailCause::Cascade), "cascade");
        assert_eq!(FailureModel::Random { prob: 0.1 }.label(), "random");
    }

    #[test]
    fn none_never_fails() {
        let mut s = FailureSampler::new(FailureModel::None, 7);
        for _ in 0..50 {
            assert_eq!(s.sample(3.0), None);
        }
        assert!(FailurePlan::none().is_failure_free());
    }

    #[test]
    fn random_failures_are_seeded_and_bounded() {
        let model = FailureModel::Random { prob: 0.3 };
        let mut a = FailureSampler::new(model.clone(), 42);
        let mut b = FailureSampler::new(model.clone(), 42);
        let mut c = FailureSampler::new(model, 43);
        let xs: Vec<_> = (0..300).map(|_| a.sample(1.0)).collect();
        let ys: Vec<_> = (0..300).map(|_| b.sample(1.0)).collect();
        let zs: Vec<_> = (0..300).map(|_| c.sample(1.0)).collect();
        assert_eq!(xs, ys, "same seed, same failures");
        assert_ne!(xs, zs, "different seed, different failures");
        let hits = xs.iter().filter(|x| x.is_some()).count();
        assert!((40..=160).contains(&hits), "hits = {hits}");
        for x in xs.into_iter().flatten() {
            assert!(x.0 > 0.0 && x.0 <= 1.0);
            assert_eq!(x.1, FailCause::Fault);
        }
    }

    #[test]
    fn straggler_kill_is_deterministic_at_the_deadline() {
        let model = FailureModel::StragglerKill {
            deadline_factor: 2.0,
        };
        let mut s = FailureSampler::new(model, 0);
        assert_eq!(s.sample(1.5), None, "within deadline");
        let (frac, cause) = s.sample(4.0).expect("overran 2x deadline");
        assert_eq!(cause, FailCause::Straggler);
        // Killed at 2x nominal = half the 4x realized duration.
        assert!((frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compose_takes_the_earliest_death() {
        let model = FailureModel::Compose(vec![
            FailureModel::StragglerKill {
                deadline_factor: 2.0,
            },
            FailureModel::Random { prob: 0.0 },
        ]);
        let mut s = FailureSampler::new(model, 3);
        let (frac, cause) = s.sample(8.0).expect("straggler branch fires");
        assert_eq!(cause, FailCause::Straggler);
        assert!((frac - 0.25).abs() < 1e-12);
    }

    #[test]
    fn resume_fast_forwards_the_stream_exactly() {
        let model = FailureModel::Compose(vec![
            FailureModel::Random { prob: 0.4 },
            FailureModel::StragglerKill {
                deadline_factor: 3.0,
            },
        ]);
        let mut full = FailureSampler::new(model.clone(), 17);
        for _ in 0..30 {
            full.sample(1.0);
        }
        assert_eq!(full.attempts(), 30);
        let mut resumed = FailureSampler::resume(model, 17, 30);
        assert_eq!(resumed.attempts(), 30);
        for _ in 0..30 {
            assert_eq!(resumed.sample(2.0), full.sample(2.0));
        }
    }

    #[test]
    fn backoff_grows_exponentially() {
        let r = RetryPolicy {
            max_attempts: 4,
            backoff_base: 0.5,
            backoff_factor: 2.0,
        };
        assert!((r.delay_after(1) - 0.5).abs() < 1e-12);
        assert!((r.delay_after(2) - 1.0).abs() < 1e-12);
        assert!((r.delay_after(3) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let plan = FailurePlan {
            model: FailureModel::Compose(vec![
                FailureModel::Random { prob: 0.05 },
                FailureModel::StragglerKill {
                    deadline_factor: 4.0,
                },
            ]),
            outages: vec![Outage {
                time: 3.0,
                resource: 1,
            }],
            retry: RetryPolicy::default(),
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FailurePlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        let cause: FailCause = serde_json::from_str("{\"Outage\":{\"resource\":2}}").unwrap();
        assert_eq!(cause, FailCause::Outage { resource: 2 });
    }
}
