//! Typed event log and realized-schedule output of a simulation run.

use mrls_core::Schedule;
use mrls_model::Allocation;
use serde::{Deserialize, Serialize};

/// One event in the realized execution, in the order the engine processed it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A job became known to the scheduler (online arrival; jobs released at
    /// time zero are not logged).
    JobReleased {
        /// Event time.
        time: f64,
        /// The released job.
        job: usize,
    },
    /// A job started executing.
    JobStarted {
        /// Event time.
        time: f64,
        /// The started job.
        job: usize,
        /// The allocation it runs with (may differ from the plan after a
        /// reschedule).
        alloc: Allocation,
        /// Nominal execution time `t_j(p_j)` under that allocation.
        nominal: f64,
    },
    /// A job completed.
    JobCompleted {
        /// Event time.
        time: f64,
        /// The completed job.
        job: usize,
        /// Nominal execution time it was started with.
        nominal: f64,
        /// The realized (perturbed) execution time.
        realized: f64,
    },
    /// A resource type's capacity changed.
    CapacityChanged {
        /// Event time.
        time: f64,
        /// Affected resource type.
        resource: usize,
        /// The new capacity.
        capacity: u64,
    },
    /// A policy recomputed (part of) its plan.
    Rescheduled {
        /// Event time.
        time: f64,
        /// What triggered the reschedule (`"arrival"`, `"capacity-change"`,
        /// `"straggler"`, …).
        trigger: String,
        /// How many pending jobs the new plan covers.
        jobs: usize,
    },
    /// A job's running attempt failed (fault injection, straggler kill, or a
    /// resource outage), or the job was abandoned outright.
    JobFailed {
        /// Event time.
        time: f64,
        /// The failed job.
        job: usize,
        /// The 1-based attempt number that failed (0 for cascade-abandoned
        /// descendants that never ran). The job is abandoned — moved to
        /// quarantine by the serve tier — iff the cause is
        /// [`FailCause::Cascade`](crate::FailCause) or this was its last
        /// budgeted attempt.
        attempt: u32,
        /// Why the attempt died.
        cause: crate::FailCause,
    },
    /// A failed job's backoff expired and it rejoined the ready set.
    JobRetried {
        /// Event time.
        time: f64,
        /// The re-eligible job.
        job: usize,
        /// The 1-based attempt number the job will consume next.
        attempt: u32,
    },
}

impl TraceEvent {
    /// The virtual time of the event.
    pub fn time(&self) -> f64 {
        match self {
            TraceEvent::JobReleased { time, .. }
            | TraceEvent::JobStarted { time, .. }
            | TraceEvent::JobCompleted { time, .. }
            | TraceEvent::CapacityChanged { time, .. }
            | TraceEvent::Rescheduled { time, .. }
            | TraceEvent::JobFailed { time, .. }
            | TraceEvent::JobRetried { time, .. } => *time,
        }
    }
}

/// Planned-vs-realized stress statistics of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StressStats {
    /// Makespan of the offline plan.
    pub planned_makespan: f64,
    /// Makespan actually realized.
    pub realized_makespan: f64,
    /// `realized / planned` (1.0 for an undisturbed replay).
    pub stretch: f64,
    /// Mean per-job `realized / nominal` execution-time factor.
    pub mean_slowdown: f64,
    /// Worst per-job `realized / nominal` execution-time factor.
    pub max_slowdown: f64,
    /// Number of reschedule events the policy performed.
    pub num_reschedules: usize,
    /// Number of jobs whose allocation differs from the plan.
    pub num_realloc_jobs: usize,
}

/// The full output of one simulation run: the typed event log plus the
/// realized schedule (validated downstream by `mrls-analysis`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealizedTrace {
    /// Label of the policy that produced the run.
    pub policy: String,
    /// Perturbation seed of the run.
    pub seed: u64,
    /// Every event, in processing order.
    pub events: Vec<TraceEvent>,
    /// The realized schedule (actual starts, finishes and allocations).
    pub realized: Schedule,
    /// Stress statistics of the run.
    pub stats: StressStats,
}

impl RealizedTrace {
    /// Serialises the trace to pretty JSON for export.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("traces are always serialisable")
    }

    /// Parses a trace from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Renders the run as Chrome trace-event JSON (`chrome://tracing` /
    /// Perfetto). Virtual time maps to microseconds (1 time unit = 1s = 1e6
    /// µs). Realized job executions become complete spans packed greedily
    /// onto lanes (threads of process 1); releases, capacity changes, and
    /// reschedules become instant events on process 0, with capacity changes
    /// also emitted as counter samples so the viewer plots them as a series.
    pub fn to_chrome_trace_json(&self) -> String {
        fn us(t: f64) -> u64 {
            (t * 1e6).round().max(0.0) as u64
        }
        let mut trace = mrls_obs::chrome::ChromeTrace::new();
        trace.process_name(0, &format!("mrls events ({})", self.policy));
        trace.process_name(1, "mrls jobs");

        // Greedy lane packing: spans sorted by start reuse the first lane
        // whose previous span already finished, so concurrent jobs render on
        // separate rows without one row per job.
        let mut spans: Vec<_> = self
            .realized
            .jobs
            .iter()
            .filter(|s| s.start.is_finite() && s.finish.is_finite())
            .collect();
        spans.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.job.cmp(&b.job))
        });
        let mut lane_free: Vec<f64> = Vec::new();
        for s in spans {
            let lane = match lane_free.iter().position(|&f| f <= s.start) {
                Some(k) => k,
                None => {
                    lane_free.push(f64::NEG_INFINITY);
                    lane_free.len() - 1
                }
            };
            lane_free[lane] = s.finish;
            trace.complete(
                &format!("job {} {}", s.job, s.alloc),
                "job",
                1,
                lane as u64,
                us(s.start),
                us(s.finish - s.start).max(1),
            );
        }
        for (lane, _) in lane_free.iter().enumerate() {
            trace.thread_name(1, lane as u64, &format!("lane {lane}"));
        }

        for ev in &self.events {
            match ev {
                TraceEvent::JobReleased { time, job } => {
                    trace.instant(&format!("release job {job}"), "arrival", 0, 0, us(*time));
                }
                TraceEvent::CapacityChanged {
                    time,
                    resource,
                    capacity,
                } => {
                    trace.instant(
                        &format!("capacity[{resource}] -> {capacity}"),
                        "capacity",
                        0,
                        0,
                        us(*time),
                    );
                    trace.counter(
                        &format!("capacity[{resource}]"),
                        0,
                        us(*time),
                        &[("capacity", *capacity)],
                    );
                }
                TraceEvent::Rescheduled {
                    time,
                    trigger,
                    jobs,
                } => {
                    trace.instant(
                        &format!("reschedule ({trigger}, {jobs} jobs)"),
                        "reschedule",
                        0,
                        0,
                        us(*time),
                    );
                }
                TraceEvent::JobFailed {
                    time,
                    job,
                    attempt,
                    cause,
                } => {
                    trace.instant(
                        &format!("fail job {job} attempt {attempt} ({cause})"),
                        "failure",
                        0,
                        0,
                        us(*time),
                    );
                }
                TraceEvent::JobRetried { time, job, attempt } => {
                    trace.instant(
                        &format!("retry job {job} attempt {attempt}"),
                        "retry",
                        0,
                        0,
                        us(*time),
                    );
                }
                TraceEvent::JobStarted { .. } | TraceEvent::JobCompleted { .. } => {}
            }
        }
        trace.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrls_core::ScheduledJob;

    fn sample() -> RealizedTrace {
        RealizedTrace {
            policy: "static".into(),
            seed: 9,
            events: vec![
                TraceEvent::JobStarted {
                    time: 0.0,
                    job: 0,
                    alloc: Allocation::new(vec![2]),
                    nominal: 1.0,
                },
                TraceEvent::JobCompleted {
                    time: 1.25,
                    job: 0,
                    nominal: 1.0,
                    realized: 1.25,
                },
                TraceEvent::Rescheduled {
                    time: 1.25,
                    trigger: "straggler".into(),
                    jobs: 0,
                },
            ],
            realized: Schedule::new(vec![ScheduledJob {
                job: 0,
                start: 0.0,
                finish: 1.25,
                alloc: Allocation::new(vec![2]),
            }]),
            stats: StressStats {
                planned_makespan: 1.0,
                realized_makespan: 1.25,
                stretch: 1.25,
                mean_slowdown: 1.25,
                max_slowdown: 1.25,
                num_reschedules: 1,
                num_realloc_jobs: 0,
            },
        }
    }

    #[test]
    fn event_times_are_accessible() {
        let t = sample();
        let times: Vec<f64> = t.events.iter().map(|e| e.time()).collect();
        assert_eq!(times, vec![0.0, 1.25, 1.25]);
    }

    #[test]
    fn chrome_export_is_valid_trace_event_json() {
        let mut t = sample();
        t.events.insert(
            0,
            TraceEvent::CapacityChanged {
                time: 0.5,
                resource: 0,
                capacity: 3,
            },
        );
        t.events
            .insert(0, TraceEvent::JobReleased { time: 0.0, job: 0 });
        let text = t.to_chrome_trace_json();
        let doc = mrls_obs::chrome::validate(&text).expect("export is valid trace JSON");
        // 2 process names + 1 lane name + 1 job span + release instant +
        // capacity instant + capacity counter + reschedule instant.
        assert_eq!(doc.events, 8);
        assert_eq!(doc.spans_and_instants, 5);
        assert!(text.contains("\"ph\":\"X\""), "job span present");
        assert!(text.contains("\"dur\":1250000"), "1.25 time units = 1.25s");
    }

    #[test]
    fn chrome_export_packs_overlapping_jobs_onto_distinct_lanes() {
        let mut t = sample();
        t.realized = Schedule::new(vec![
            ScheduledJob {
                job: 0,
                start: 0.0,
                finish: 2.0,
                alloc: Allocation::new(vec![1]),
            },
            ScheduledJob {
                job: 1,
                start: 1.0,
                finish: 3.0,
                alloc: Allocation::new(vec![1]),
            },
            ScheduledJob {
                job: 2,
                start: 2.5,
                finish: 4.0,
                alloc: Allocation::new(vec![1]),
            },
        ]);
        let text = t.to_chrome_trace_json();
        mrls_obs::chrome::validate(&text).expect("valid");
        // Jobs 0 and 1 overlap (two lanes); job 2 reuses lane 0 (free at 2.0).
        assert!(text.contains("\"name\":\"lane 1\""));
        assert!(!text.contains("\"name\":\"lane 2\""));
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let t = sample();
        let json = t.to_json();
        let back = RealizedTrace::from_json(&json).unwrap();
        assert_eq!(t, back);
        // Re-serialising the parsed trace is byte-identical (the determinism
        // test for full runs builds on this).
        assert_eq!(json, back.to_json());
        assert!(RealizedTrace::from_json("[oops").is_err());
    }
}
