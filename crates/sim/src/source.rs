//! External-event sources: where online arrivals and capacity changes come
//! from.
//!
//! The engine used to read arrivals and capacity changes straight out of a
//! pre-generated [`Scenario`]. [`EventSource`] abstracts that feed so the
//! same drive loop serves two worlds:
//!
//! * [`ScenarioSource`] — the batch setting: every event is known up front
//!   (release times, timed capacity drops), replayed in time order.
//! * [`ChannelSource`] — the live setting: events are pushed into an
//!   [`std::sync::mpsc`] channel while the engine runs, as `mrls-serve` does
//!   when it stamps freshly admitted submissions with virtual times.
//!
//! A source must yield events in nondecreasing time order; within one
//! instant, releases before capacity changes (the order the engine applies).

use crate::scenario::{CapacityChange, Scenario};
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, Sender};

/// One external event fed into the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceEvent {
    /// Job `job` becomes known to the scheduler.
    Release {
        /// Virtual time of the release.
        time: f64,
        /// The released job.
        job: usize,
    },
    /// Resource `resource` changes to an absolute new capacity.
    Capacity {
        /// Virtual time of the change.
        time: f64,
        /// Affected resource type.
        resource: usize,
        /// The new capacity.
        capacity: u64,
    },
}

impl SourceEvent {
    /// The virtual time of the event.
    pub fn time(&self) -> f64 {
        match self {
            SourceEvent::Release { time, .. } | SourceEvent::Capacity { time, .. } => *time,
        }
    }
}

/// A feed of external events, consumed by the engine in time order.
pub trait EventSource {
    /// The time of the earliest pending event, if any is known right now.
    fn next_time(&mut self) -> Option<f64>;

    /// Removes and returns every pending event with time `<= t`, releases
    /// first, then capacity changes, each sub-sequence in time order.
    fn pop_until(&mut self, t: f64) -> Vec<SourceEvent>;
}

/// The pre-generated source: replays a [`Scenario`]'s release times and
/// capacity changes.
#[derive(Debug, Clone)]
pub struct ScenarioSource {
    arrivals: Vec<(f64, usize)>,
    next_arrival: usize,
    caps: Vec<CapacityChange>,
    next_cap: usize,
}

impl ScenarioSource {
    /// Builds the source for an `n`-job instance. Jobs with release time
    /// `<= 0` are *not* emitted — they are released before the run starts
    /// (see [`Scenario::release_time`]).
    pub fn new(scenario: &Scenario, n: usize) -> Self {
        let mut arrivals: Vec<(f64, usize)> = (0..n)
            .map(|j| (scenario.release_time(j), j))
            .filter(|&(t, _)| t > 0.0)
            .collect();
        arrivals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut caps = scenario.capacity_changes.clone();
        caps.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.resource.cmp(&b.resource)));
        ScenarioSource {
            arrivals,
            next_arrival: 0,
            caps,
            next_cap: 0,
        }
    }

    /// Builds the source for a run resumed at virtual time `now`: events the
    /// checkpointed run already consumed (time `<= now`, within the engine's
    /// grouping tolerance) are skipped.
    pub fn resume_at(scenario: &Scenario, n: usize, now: f64) -> Self {
        let mut source = ScenarioSource::new(scenario, n);
        let cut = now + crate::engine::EPS;
        while source.next_arrival < source.arrivals.len()
            && source.arrivals[source.next_arrival].0 <= cut
        {
            source.next_arrival += 1;
        }
        while source.next_cap < source.caps.len() && source.caps[source.next_cap].time <= cut {
            source.next_cap += 1;
        }
        source
    }
}

impl EventSource for ScenarioSource {
    fn next_time(&mut self) -> Option<f64> {
        let a = self.arrivals.get(self.next_arrival).map(|&(t, _)| t);
        let c = self.caps.get(self.next_cap).map(|c| c.time);
        match (a, c) {
            (Some(a), Some(c)) => Some(a.min(c)),
            (Some(t), None) | (None, Some(t)) => Some(t),
            (None, None) => None,
        }
    }

    fn pop_until(&mut self, t: f64) -> Vec<SourceEvent> {
        let mut out = Vec::new();
        while self.next_arrival < self.arrivals.len() && self.arrivals[self.next_arrival].0 <= t {
            let (time, job) = self.arrivals[self.next_arrival];
            self.next_arrival += 1;
            out.push(SourceEvent::Release { time, job });
        }
        while self.next_cap < self.caps.len() && self.caps[self.next_cap].time <= t {
            let c = self.caps[self.next_cap].clone();
            self.next_cap += 1;
            out.push(SourceEvent::Capacity {
                time: c.time,
                resource: c.resource,
                capacity: c.capacity,
            });
        }
        out
    }
}

/// The live source: events arrive over an [`std::sync::mpsc`] channel while
/// the engine runs. The feeder must push events in nondecreasing time order
/// (and releases before capacity changes within one instant); `mrls-serve`
/// guarantees this by stamping each batching round with a single virtual
/// time.
#[derive(Debug)]
pub struct ChannelSource {
    rx: Receiver<SourceEvent>,
    buffer: VecDeque<SourceEvent>,
}

impl ChannelSource {
    /// Wraps a receiver whose sender stamps events with nondecreasing times.
    pub fn new(rx: Receiver<SourceEvent>) -> Self {
        ChannelSource {
            rx,
            buffer: VecDeque::new(),
        }
    }

    /// Creates a connected `(sender, source)` pair.
    pub fn channel() -> (Sender<SourceEvent>, ChannelSource) {
        let (tx, rx) = std::sync::mpsc::channel();
        (tx, ChannelSource::new(rx))
    }

    /// Creates a connected `(feeder, source)` pair — the long-lived shape:
    /// a persistent run keeps both ends alive across interaction rounds and
    /// feeds each round's events through the [`ChannelFeeder`].
    pub fn feeder() -> (ChannelFeeder, ChannelSource) {
        let (tx, source) = ChannelSource::channel();
        (ChannelFeeder { tx }, source)
    }

    /// Moves everything currently in the channel into the local buffer
    /// (non-blocking).
    fn pump(&mut self) {
        while let Ok(ev) = self.rx.try_recv() {
            self.buffer.push_back(ev);
        }
    }
}

/// The sending half of a long-lived [`ChannelSource`]: typed helpers for
/// feeding one interaction round's events (releases before capacity changes,
/// all stamped with the round's single virtual time). Sends to a source
/// whose run has been dropped are silently discarded, so teardown order does
/// not matter.
#[derive(Debug, Clone)]
pub struct ChannelFeeder {
    tx: Sender<SourceEvent>,
}

impl ChannelFeeder {
    /// Feeds a job release at virtual time `time`.
    pub fn release(&self, time: f64, job: usize) {
        let _ = self.tx.send(SourceEvent::Release { time, job });
    }

    /// Feeds an absolute capacity change at virtual time `time`.
    pub fn capacity(&self, time: f64, resource: usize, capacity: u64) {
        let _ = self.tx.send(SourceEvent::Capacity {
            time,
            resource,
            capacity,
        });
    }
}

impl EventSource for ChannelSource {
    fn next_time(&mut self) -> Option<f64> {
        self.pump();
        self.buffer.front().map(SourceEvent::time)
    }

    fn pop_until(&mut self, t: f64) -> Vec<SourceEvent> {
        self.pump();
        let mut out = Vec::new();
        while self.buffer.front().is_some_and(|ev| ev.time() <= t) {
            out.push(self.buffer.pop_front().expect("front checked above"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_source_orders_and_groups_events() {
        let scenario = Scenario::offline()
            .with_release_times(vec![0.0, 2.0, 1.0])
            .with_capacity_changes(vec![(1.0, 0, 2), (3.0, 0, 4)]);
        let mut source = ScenarioSource::new(&scenario, 3);
        assert_eq!(source.next_time(), Some(1.0));
        // Releases come before capacity changes at the same instant.
        let batch = source.pop_until(1.0);
        assert_eq!(
            batch,
            vec![
                SourceEvent::Release { time: 1.0, job: 2 },
                SourceEvent::Capacity {
                    time: 1.0,
                    resource: 0,
                    capacity: 2
                },
            ]
        );
        assert_eq!(source.next_time(), Some(2.0));
        assert_eq!(source.pop_until(10.0).len(), 2);
        assert_eq!(source.next_time(), None);
    }

    #[test]
    fn scenario_source_resumes_past_consumed_events() {
        let scenario = Scenario::offline()
            .with_release_times(vec![1.0, 2.0])
            .with_capacity_changes(vec![(1.5, 0, 2)]);
        let mut source = ScenarioSource::resume_at(&scenario, 2, 1.5);
        assert_eq!(source.next_time(), Some(2.0));
        assert_eq!(
            source.pop_until(2.0),
            vec![SourceEvent::Release { time: 2.0, job: 1 }]
        );
    }

    #[test]
    fn feeder_stamps_rounds_in_engine_order() {
        let (feeder, mut source) = ChannelSource::feeder();
        feeder.release(1.0, 0);
        feeder.capacity(1.0, 0, 2);
        assert_eq!(
            source.pop_until(1.0),
            vec![
                SourceEvent::Release { time: 1.0, job: 0 },
                SourceEvent::Capacity {
                    time: 1.0,
                    resource: 0,
                    capacity: 2
                },
            ]
        );
        // A later round through the same feeder; dropping the source makes
        // further sends no-ops rather than panics.
        feeder.release(2.0, 1);
        assert_eq!(source.next_time(), Some(2.0));
        drop(source);
        feeder.release(3.0, 2);
    }

    #[test]
    fn channel_source_buffers_pushed_events() {
        let (tx, mut source) = ChannelSource::channel();
        assert_eq!(source.next_time(), None);
        tx.send(SourceEvent::Release { time: 0.5, job: 0 }).unwrap();
        tx.send(SourceEvent::Capacity {
            time: 0.5,
            resource: 0,
            capacity: 3,
        })
        .unwrap();
        tx.send(SourceEvent::Release { time: 2.0, job: 1 }).unwrap();
        assert_eq!(source.next_time(), Some(0.5));
        assert_eq!(source.pop_until(1.0).len(), 2);
        assert_eq!(source.next_time(), Some(2.0));
        // Late pushes surface on the next poll.
        tx.send(SourceEvent::Release { time: 2.0, job: 2 }).unwrap();
        assert_eq!(source.pop_until(2.0).len(), 2);
        assert_eq!(source.next_time(), None);
    }
}
