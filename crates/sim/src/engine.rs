//! The deterministic discrete-event execution engine.
//!
//! [`Simulator::run`] executes a planned [`Schedule`] in virtual time on the
//! instance's machine, under a [`Scenario`] (online arrivals, capacity
//! changes) and a [`PerturbationModel`] (stochastic execution times). The
//! engine owns the world state and enforces the hard invariants — precedence,
//! release times, resource capacity — while a [`Policy`](crate::Policy)
//! decides *which* ready jobs start, with which allocations, whenever the
//! world changes.
//!
//! The run loop itself lives in a borrow-free core shared by two drivers:
//!
//! * [`SimRun`] borrows the instance and plan — the right shape for batch
//!   experiments where the world is fixed up front. It can be paused,
//!   checkpointed (serialisable [`SimSnapshot`]) and resumed — including
//!   against a *grown* instance.
//! * [`PersistentRun`] **owns** the instance and plan and can grow them in
//!   place ([`PersistentRun::grow`], [`PersistentRun::apply_plan_updates`]),
//!   which is how the `mrls-serve` online service keeps one live world
//!   across batching rounds instead of checkpoint→clone→resume each round.
//!
//! Processed trace events can be **harvested** out of the retained log
//! ([`SimRun::take_harvested_events`]): the run then only carries live state
//! plus a `harvested_until` watermark, and a checkpoint of it is truncated —
//! O(live) instead of O(history). The harvested prefix is immutable history;
//! callers archive it (the serve layer's event ledger) and pass it back when
//! assembling a full [`RealizedTrace`].
//!
//! Everything is deterministic: events are processed in `(time, kind, id)`
//! order, random draws are consumed in event order from a `ChaCha8` stream,
//! and two runs with the same seed produce byte-identical traces.

use crate::failure::{FailCause, FailurePlan, FailureSampler, Outage, RetryPolicy};
use crate::perturb::{PerturbationModel, Perturber};
use crate::policy::Policy;
use crate::scenario::Scenario;
use crate::source::{EventSource, ScenarioSource, SourceEvent};
use crate::trace::{RealizedTrace, StressStats, TraceEvent};
use mrls_core::{CoreError, EventQueue, ResourceState, Schedule, ScheduledJob};
use mrls_model::{Allocation, Instance, MoldableJob, SystemConfig};
use serde::{Deserialize, Serialize};

/// Event-time grouping tolerance — the shared [`mrls_core::EPS`], so the
/// engine batches completions with exactly the tolerance the offline list
/// scheduler groups events with.
pub(crate) use mrls_core::EPS;

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Error bubbled up from the scheduling core.
    Core(CoreError),
    /// The planned schedule does not match the instance.
    InvalidPlan(String),
    /// The scenario does not match the instance.
    InvalidScenario(String),
    /// A checkpoint does not match the instance/plan it is resumed against.
    InvalidSnapshot(String),
    /// An in-place world growth or plan update is inconsistent with the
    /// running world (see [`PersistentRun::grow`]).
    InvalidGrowth(String),
    /// A policy asked the engine to do something infeasible.
    PolicyViolation {
        /// The offending policy.
        policy: String,
        /// The job involved.
        job: usize,
        /// What went wrong.
        reason: String,
    },
    /// The system went idle with unfinished jobs and no future events — a
    /// ready job can never fit (e.g. the capacity it needs was dropped and
    /// the policy cannot re-allocate).
    Stalled {
        /// Virtual time of the stall.
        time: f64,
        /// The jobs that were ready but could not start.
        ready: Vec<usize>,
    },
    /// The run exceeded the configured event budget.
    EventLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Core(e) => write!(f, "core error: {e}"),
            SimError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            SimError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            SimError::InvalidSnapshot(msg) => write!(f, "invalid snapshot: {msg}"),
            SimError::InvalidGrowth(msg) => write!(f, "invalid world growth: {msg}"),
            SimError::PolicyViolation {
                policy,
                job,
                reason,
            } => write!(
                f,
                "policy {policy} violated an invariant on job {job}: {reason}"
            ),
            SimError::Stalled { time, ready } => write!(
                f,
                "simulation stalled at t={time:.3} with ready jobs {ready:?} that can never start"
            ),
            SimError::EventLimitExceeded { limit } => {
                write!(f, "simulation exceeded the event budget of {limit}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

/// A job currently executing.
///
/// The allocation it holds is *not* duplicated here: it lives in the run's
/// `alloc_used` record (serialised in [`SimSnapshot::alloc_used`]), which
/// `apply_start` keeps in sync for every started job. Snapshots written
/// when running entries still carried an `alloc` field load unchanged — the
/// extra field is ignored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningJob {
    /// Job index.
    pub job: usize,
    /// When it started.
    pub start: f64,
    /// When it will finish (realized).
    pub finish: f64,
    /// Its nominal execution time under the allocation it runs with.
    pub nominal: f64,
}

/// The borrow-free world state the engine maintains: virtual time, resource
/// availability, and the per-job lifecycle flags. [`SimState`] pairs it with
/// the instance and plan for policy observation.
#[derive(Debug, Clone)]
pub struct SimWorld {
    /// Current virtual time.
    pub now: f64,
    /// Current per-type capacities (after any capacity changes).
    pub capacities: Vec<u64>,
    /// Current availability (capacities minus held resources).
    pub resources: ResourceState,
    /// Jobs that are released, have all predecessors completed, and have not
    /// started, sorted by job index.
    pub ready: Vec<usize>,
    /// Per-job released flag.
    pub released: Vec<bool>,
    /// Per-job started flag (running or completed).
    pub started: Vec<bool>,
    /// Per-job completed flag.
    pub completed: Vec<bool>,
    /// Jobs currently executing (unordered; completions are processed in
    /// deterministic `(finish, job)` order from an indexed event queue, not
    /// in this vector's order).
    pub running: Vec<RunningJob>,
    /// Per-job count of not-yet-completed predecessors.
    pub remaining_preds: Vec<usize>,
    /// Per-job abandoned flag: the job exhausted its retry budget (or an
    /// ancestor did) and will never run. Abandoned jobs are never ready.
    pub abandoned: Vec<bool>,
    /// The latest realized finish time among completed jobs, maintained
    /// incrementally at each completion (recomputed from the snapshot at
    /// resume). Policies use it to reason about run progress in O(1) where a
    /// per-job sweep would be O(world).
    pub max_completed_finish: f64,
}

impl SimWorld {
    /// `true` iff job `j` is in the ready set.
    pub fn is_ready(&self, j: usize) -> bool {
        self.ready.binary_search(&j).is_ok()
    }

    /// `true` iff job `j` was abandoned (its retry budget, or an ancestor's,
    /// is exhausted).
    pub fn is_abandoned(&self, j: usize) -> bool {
        self.abandoned[j]
    }
}

/// The world state a policy observes: the [`SimWorld`] (dereferenced
/// transparently, so `state.ready`, `state.now`, … keep reading naturally)
/// plus the instance being executed and the plan the run started from.
#[derive(Debug, Clone, Copy)]
pub struct SimState<'a> {
    /// The instance being executed.
    pub instance: &'a Instance,
    /// The offline plan the run started from.
    pub plan: &'a Schedule,
    world: &'a SimWorld,
    alloc_used: &'a [Allocation],
}

impl std::ops::Deref for SimState<'_> {
    type Target = SimWorld;

    fn deref(&self) -> &SimWorld {
        self.world
    }
}

impl SimState<'_> {
    /// The allocation job `j` actually started with (equals the plan's
    /// allocation unless a policy overrode it). Only meaningful for started
    /// jobs; look-ahead placement uses it to open future release windows for
    /// the running set.
    pub fn alloc_used(&self, j: usize) -> &Allocation {
        &self.alloc_used[j]
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed of the perturbation stream.
    pub seed: u64,
    /// How realized execution times deviate from nominal ones.
    pub perturbation: PerturbationModel,
    /// Online arrivals and capacity changes.
    pub scenario: Scenario,
    /// Event budget; `None` = `1000 + 200 * n`.
    pub max_events: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            perturbation: PerturbationModel::None,
            scenario: Scenario::offline(),
            max_events: None,
        }
    }
}

/// How a [`SimRun::drive`] call ended (errors are reported separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Every job of the instance completed and the source is exhausted.
    Complete,
    /// The stop time was reached; more events are pending.
    Paused,
    /// The source is exhausted and nothing is running, but incomplete jobs
    /// remain, all blocked (directly or transitively) on unreleased jobs —
    /// a live source may still feed the releases later.
    Idle,
}

/// The discrete-event execution engine.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates an engine with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Executes `plan` on `instance` under `policy`, returning the realized
    /// trace.
    pub fn run(
        &self,
        instance: &Instance,
        plan: &Schedule,
        policy: &mut dyn Policy,
    ) -> Result<RealizedTrace, SimError> {
        let plan = normalize_plan(instance, plan)?;
        let (mut run, mut source) = self.start(instance, &plan)?;
        match run.drive(policy, &mut source)? {
            RunStatus::Complete => Ok(run.into_trace(policy.label())),
            RunStatus::Paused | RunStatus::Idle => Err(SimError::Stalled {
                time: run.core.world.now,
                ready: run.core.world.ready.clone(),
            }),
        }
    }

    /// Begins an incremental run of `plan` (which must be job-indexed — see
    /// [`normalize_plan`]) under the configured scenario, returning the
    /// paused driver plus the scenario's event source. Drive it with
    /// [`SimRun::drive`] / [`SimRun::drive_until`].
    pub fn start<'a>(
        &self,
        instance: &'a Instance,
        plan: &'a Schedule,
    ) -> Result<(SimRun<'a>, ScenarioSource), SimError> {
        let n = instance.num_jobs();
        self.config
            .scenario
            .validate(instance)
            .map_err(SimError::InvalidScenario)?;
        let released: Vec<bool> = (0..n)
            .map(|j| self.config.scenario.release_time(j) <= 0.0)
            .collect();
        let run = SimRun::start(
            instance,
            plan,
            self.config.seed,
            self.config.perturbation.clone(),
            self.config.max_events,
            released,
        )?;
        Ok((run, ScenarioSource::new(&self.config.scenario, n)))
    }

    /// Resumes a checkpointed run against the configured scenario, returning
    /// the driver plus a scenario source fast-forwarded past every event the
    /// checkpointed run already consumed.
    pub fn resume<'a>(
        &self,
        instance: &'a Instance,
        plan: &'a Schedule,
        snapshot: &SimSnapshot,
    ) -> Result<(SimRun<'a>, ScenarioSource), SimError> {
        let n = instance.num_jobs();
        self.config
            .scenario
            .validate(instance)
            .map_err(SimError::InvalidScenario)?;
        let run = SimRun::resume(
            instance,
            plan,
            snapshot,
            self.config.perturbation.clone(),
            self.config.max_events,
        )?;
        let source = ScenarioSource::resume_at(&self.config.scenario, n, snapshot.now);
        Ok((run, source))
    }
}

/// A fully owned, serialisable checkpoint of a paused run.
///
/// Together with the instance and the (job-indexed) plan, a snapshot restores
/// the run exactly: availability amounts are stored verbatim (including
/// floating-point residue) and the perturbation stream is fast-forwarded by
/// its recorded draw count, so the continuation of a resumed run is
/// byte-identical to the uninterrupted one for checkpoint-transparent
/// policies (static replay and reactive-list; a resumed full-reschedule
/// policy re-reads the plan and forgets earlier in-flight reschedules).
///
/// `events` holds only the **retained** log: events harvested out of the run
/// (see [`SimRun::take_harvested_events`]) are counted by `harvested_events`
/// and watermarked by `harvested_until`, keeping long-lived snapshots
/// O(live state) instead of O(history). Snapshots written before harvesting
/// existed deserialise with both fields at zero (nothing harvested), so old
/// checkpoints keep loading.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimSnapshot {
    /// Seed of the perturbation stream.
    pub seed: u64,
    /// Virtual time of the checkpoint.
    pub now: f64,
    /// Current per-type capacities.
    pub capacities: Vec<u64>,
    /// Raw per-type availability amounts.
    pub available: Vec<f64>,
    /// Ready jobs, sorted by index (informational — recomputed from the
    /// flags at resume).
    pub ready: Vec<usize>,
    /// Per-job released flag.
    pub released: Vec<bool>,
    /// Per-job started flag.
    pub started: Vec<bool>,
    /// Per-job completed flag.
    pub completed: Vec<bool>,
    /// Jobs currently executing.
    pub running: Vec<RunningJob>,
    /// Per-job count of not-yet-completed predecessors (informational —
    /// recomputed from the flags at resume).
    pub remaining_preds: Vec<usize>,
    /// Realized start times (NaN = not started).
    pub start: Vec<f64>,
    /// Realized finish times (NaN = not finished).
    pub finish: Vec<f64>,
    /// Nominal execution times of started jobs (NaN = not started).
    pub nominal: Vec<f64>,
    /// Virtual times at which each job became ready (released with every
    /// predecessor complete; NaN = not yet ready). Snapshots written before
    /// this field existed deserialise as all-NaN, and the explain analyzer
    /// falls back to deriving readiness from the trace.
    pub ready_time: Vec<f64>,
    /// Allocation each job ran (or is planned to run) with.
    pub alloc_used: Vec<Allocation>,
    /// Number of completed jobs.
    pub num_completed: usize,
    /// The retained trace events (everything processed since the last
    /// harvest; the full log when nothing was ever harvested).
    pub events: Vec<TraceEvent>,
    /// How many events were harvested out of the retained log before this
    /// checkpoint (zero for pre-harvest snapshots).
    pub harvested_events: usize,
    /// Virtual-time watermark of the last harvest: every harvested event has
    /// time `<=` this (zero for pre-harvest snapshots).
    pub harvested_until: f64,
    /// Events consumed from the budget so far.
    pub event_budget: usize,
    /// Perturbation draws consumed so far.
    pub perturber_realizations: u64,
    /// Per-job count of attempts consumed so far (empty for pre-failure
    /// snapshots: no attempts beyond the implicit single one).
    pub attempts: Vec<u32>,
    /// Per-job virtual time at which a failed job becomes eligible again
    /// (NaN = not in backoff; empty for pre-failure snapshots).
    pub retry_at: Vec<f64>,
    /// Per-job abandoned flag (empty for pre-failure snapshots).
    pub abandoned: Vec<bool>,
    /// Planned death point of each running attempt (`None` = the attempt
    /// will complete; empty for pre-failure snapshots).
    pub fail_cause: Vec<Option<FailCause>>,
    /// Failure-sampler attempts judged so far (zero for pre-failure
    /// snapshots).
    pub failure_attempts: u64,
}

// Hand-written so that snapshots serialised before the harvesting fields
// existed still load (the vendored serde_derive has no `#[serde(default)]`).
impl Deserialize for SimSnapshot {
    fn from_value(
        v: &serde::__private::Value,
    ) -> std::result::Result<Self, serde::__private::Error> {
        use serde::__private::{field, opt_field};
        Ok(SimSnapshot {
            seed: field(v, "seed")?,
            now: field(v, "now")?,
            capacities: field(v, "capacities")?,
            available: field(v, "available")?,
            ready: field(v, "ready")?,
            released: field(v, "released")?,
            started: field(v, "started")?,
            completed: field(v, "completed")?,
            running: field(v, "running")?,
            remaining_preds: field(v, "remaining_preds")?,
            start: field(v, "start")?,
            finish: field(v, "finish")?,
            nominal: field(v, "nominal")?,
            alloc_used: field(v, "alloc_used")?,
            num_completed: field(v, "num_completed")?,
            ready_time: opt_field(v, "ready_time")?.unwrap_or_default(),
            events: field(v, "events")?,
            harvested_events: opt_field(v, "harvested_events")?.unwrap_or(0),
            harvested_until: opt_field(v, "harvested_until")?.unwrap_or(0.0),
            event_budget: field(v, "event_budget")?,
            perturber_realizations: field(v, "perturber_realizations")?,
            attempts: opt_field(v, "attempts")?.unwrap_or_default(),
            retry_at: opt_field(v, "retry_at")?.unwrap_or_default(),
            abandoned: opt_field(v, "abandoned")?.unwrap_or_default(),
            fail_cause: opt_field(v, "fail_cause")?.unwrap_or_default(),
            failure_attempts: opt_field(v, "failure_attempts")?.unwrap_or(0),
        })
    }
}

impl SimSnapshot {
    /// The number of jobs the checkpointed world knew about.
    pub fn num_jobs(&self) -> usize {
        self.released.len()
    }

    /// Serialises the snapshot to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshots are always serialisable")
    }

    /// Parses a snapshot from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// A compact, platform-stable fingerprint of the snapshot: the FNV-1a
    /// fold of its compact JSON rendering. Two snapshots digest equal iff
    /// they serialise identically, which (floats included, bit for bit) is
    /// the same identity the byte-identity test suites compare on. The serve
    /// tier's durability layer stamps checkpoints with this so a recovery can
    /// cross-check what it rebuilt against what was written.
    pub fn digest(&self) -> u64 {
        let json = serde_json::to_string(self).expect("snapshots are always serialisable");
        mrls_core::hash::fnv1a64(json.as_bytes())
    }
}

/// The borrow-free core of an in-flight simulation: the world state, the
/// per-job realized record, and the retained event log. Both drivers
/// ([`SimRun`], [`PersistentRun`]) wrap it and pass the instance/plan in.
#[derive(Debug, Clone)]
struct RunCore {
    seed: u64,
    max_events: Option<usize>,
    world: SimWorld,
    perturber: Perturber,
    /// Pending completion events, ordered by `(finish, job)`. Derived from
    /// `world.running` (rebuilt at resume, never serialised); replaces the
    /// O(running) min-scan per event with O(log n) heap operations.
    completions: EventQueue,
    /// Position of each running job inside `world.running` (`usize::MAX` =
    /// not running), so a completion removes its entry with one swap instead
    /// of an O(running) sweep.
    running_pos: Vec<usize>,
    start: Vec<f64>,
    finish: Vec<f64>,
    nominal: Vec<f64>,
    /// Virtual time each job became ready (NaN = not yet ready). Purely an
    /// observability record — never read back by the engine itself.
    ready_time: Vec<f64>,
    alloc_used: Vec<Allocation>,
    num_completed: usize,
    /// Retained events (everything processed since the last harvest).
    events: Vec<TraceEvent>,
    /// Count of events harvested out of `events` so far.
    harvested_events: usize,
    /// Virtual-time watermark of the last harvest.
    harvested_until: f64,
    event_budget: usize,
    /// The failure-injection stream (a no-op `FailureModel::None` sampler
    /// until [`RunCore::install_failures`] swaps in a real plan).
    failure: FailureSampler,
    /// The retry budget and backoff schedule.
    retry: RetryPolicy,
    /// Timed resource outages, sorted by `(time, resource)`.
    outages: Vec<Outage>,
    /// How many outages have fired already.
    outages_done: usize,
    /// Per-job attempts consumed (incremented at each start).
    attempts: Vec<u32>,
    /// Per-job backoff re-eligibility time (NaN = not in backoff).
    retry_at: Vec<f64>,
    /// Planned death of each running attempt (`Some` = the completion-queue
    /// entry for this job is a failure, not a completion).
    fail_cause: Vec<Option<FailCause>>,
    /// Number of abandoned jobs (counterpart of `world.abandoned`).
    num_abandoned: usize,
    /// Pending backoff-expiry events, ordered by `(time, job)`. Derived from
    /// `retry_at` (rebuilt at resume, never serialised).
    retries: EventQueue,
}

impl RunCore {
    /// Begins a run at time zero (see [`SimRun::start`]).
    fn start(
        instance: &Instance,
        plan: &Schedule,
        seed: u64,
        perturbation: PerturbationModel,
        max_events: Option<usize>,
        released: Vec<bool>,
    ) -> Result<Self, SimError> {
        check_normalized(instance, plan)?;
        let n = instance.num_jobs();
        if released.len() != n {
            return Err(SimError::InvalidScenario(format!(
                "{} release flags for {n} jobs",
                released.len()
            )));
        }
        let remaining_preds: Vec<usize> = (0..n).map(|j| instance.dag.in_degree(j)).collect();
        let ready: Vec<usize> = (0..n)
            .filter(|&j| released[j] && remaining_preds[j] == 0)
            .collect();
        let ready_time: Vec<f64> = (0..n)
            .map(|j| {
                if released[j] && remaining_preds[j] == 0 {
                    0.0
                } else {
                    f64::NAN
                }
            })
            .collect();
        let world = SimWorld {
            now: 0.0,
            capacities: instance.system.capacities().to_vec(),
            resources: ResourceState::from_system(&instance.system),
            ready,
            released,
            started: vec![false; n],
            completed: vec![false; n],
            running: Vec::new(),
            remaining_preds,
            abandoned: vec![false; n],
            max_completed_finish: 0.0,
        };
        Ok(RunCore {
            seed,
            max_events,
            world,
            perturber: Perturber::new(perturbation, seed),
            completions: EventQueue::new(),
            running_pos: vec![usize::MAX; n],
            start: vec![f64::NAN; n],
            finish: vec![f64::NAN; n],
            nominal: vec![f64::NAN; n],
            ready_time,
            alloc_used: plan.allocations(),
            num_completed: 0,
            events: Vec::new(),
            harvested_events: 0,
            harvested_until: 0.0,
            event_budget: 0,
            failure: FailureSampler::new(crate::FailureModel::None, seed),
            retry: RetryPolicy::default(),
            outages: Vec::new(),
            outages_done: 0,
            attempts: vec![0; n],
            retry_at: vec![f64::NAN; n],
            fail_cause: vec![None; n],
            num_abandoned: 0,
            retries: EventQueue::new(),
        })
    }

    /// Resumes a checkpointed run (see [`SimRun::resume_with_perturber`]).
    fn resume(
        instance: &Instance,
        plan: &Schedule,
        snapshot: &SimSnapshot,
        perturber: Perturber,
        max_events: Option<usize>,
    ) -> Result<Self, SimError> {
        if perturber.realizations() != snapshot.perturber_realizations {
            return Err(SimError::InvalidSnapshot(format!(
                "perturber has drawn {} realizations but the snapshot recorded {}",
                perturber.realizations(),
                snapshot.perturber_realizations
            )));
        }
        check_normalized(instance, plan)?;
        let n = instance.num_jobs();
        let m = snapshot.num_jobs();
        if m > n {
            return Err(SimError::InvalidSnapshot(format!(
                "snapshot covers {m} jobs but the instance has only {n}"
            )));
        }
        let d = instance.num_resource_types();
        if snapshot.capacities.len() != d || snapshot.available.len() != d {
            return Err(SimError::InvalidSnapshot(format!(
                "snapshot has {} resource types but the instance has {d}",
                snapshot.capacities.len()
            )));
        }
        for (what, len) in [
            ("started", snapshot.started.len()),
            ("completed", snapshot.completed.len()),
            ("remaining_preds", snapshot.remaining_preds.len()),
            ("start", snapshot.start.len()),
            ("finish", snapshot.finish.len()),
            ("nominal", snapshot.nominal.len()),
            ("alloc_used", snapshot.alloc_used.len()),
        ] {
            if len != m {
                return Err(SimError::InvalidSnapshot(format!(
                    "snapshot field `{what}` has length {len}, expected {m}"
                )));
            }
        }
        if snapshot.num_completed != snapshot.completed.iter().filter(|&&c| c).count() {
            return Err(SimError::InvalidSnapshot(
                "completion counter disagrees with the completed flags".to_string(),
            ));
        }

        let mut released = snapshot.released.clone();
        let mut started = snapshot.started.clone();
        let mut completed = snapshot.completed.clone();
        released.resize(n, false);
        started.resize(n, false);
        completed.resize(n, false);
        for j in 0..m {
            if (completed[j] && !started[j]) || (started[j] && !released[j]) {
                return Err(SimError::InvalidSnapshot(format!(
                    "job {j} has inconsistent lifecycle flags"
                )));
            }
        }
        // A tampered or truncated checkpoint must fail cleanly, not panic
        // mid-run: the running set is validated against the flags, and the
        // derived fields (remaining predecessor counts, ready set) are
        // recomputed from the flags rather than trusted.
        let mut seen_running = vec![false; n];
        for r in &snapshot.running {
            if r.job >= m || !started[r.job] || completed[r.job] || seen_running[r.job] {
                return Err(SimError::InvalidSnapshot(format!(
                    "running entry for job {} contradicts the job flags",
                    r.job
                )));
            }
            seen_running[r.job] = true;
            // The allocation a running job holds (and will release at its
            // completion) is its `alloc_used` record.
            instance
                .system
                .validate_allocation(&snapshot.alloc_used[r.job])
                .map_err(|e| SimError::InvalidSnapshot(format!("running job {}: {e}", r.job)))?;
        }
        // Failure-era fields: pre-failure snapshots deserialise them empty
        // and the resizes restore the "nothing ever failed" defaults.
        for (what, len) in [
            ("attempts", snapshot.attempts.len()),
            ("retry_at", snapshot.retry_at.len()),
            ("abandoned", snapshot.abandoned.len()),
            ("fail_cause", snapshot.fail_cause.len()),
        ] {
            if len != 0 && len != m {
                return Err(SimError::InvalidSnapshot(format!(
                    "snapshot field `{what}` has length {len}, expected {m} or 0"
                )));
            }
        }
        let mut attempts = snapshot.attempts.clone();
        attempts.resize(n, 0);
        let mut retry_at = snapshot.retry_at.clone();
        retry_at.resize(n, f64::NAN);
        let mut abandoned = snapshot.abandoned.clone();
        abandoned.resize(n, false);
        let mut fail_cause = snapshot.fail_cause.clone();
        fail_cause.resize(n, None);
        let num_abandoned = abandoned.iter().filter(|&&a| a).count();
        let retries = EventQueue::from_entries(
            (0..n)
                .filter(|&j| retry_at[j].is_finite())
                .map(|j| (retry_at[j], j))
                .collect(),
        );

        let remaining_preds: Vec<usize> = (0..n)
            .map(|j| {
                // Completed predecessors already had their completion events
                // processed before the checkpoint (for appended jobs, before
                // they existed).
                instance
                    .dag
                    .predecessors(j)
                    .iter()
                    .filter(|&&p| !completed[p])
                    .count()
            })
            .collect();
        // A job sitting in retry backoff satisfies the released/unstarted/
        // no-pending-preds predicate but is *held out* of the ready set until
        // its backoff expires; abandoned jobs never return.
        let ready: Vec<usize> = (0..n)
            .filter(|&j| {
                released[j]
                    && !started[j]
                    && !abandoned[j]
                    && !retry_at[j].is_finite()
                    && remaining_preds[j] == 0
            })
            .collect();
        let mut alloc_used = snapshot.alloc_used.clone();
        let plan_allocs = plan.allocations();
        alloc_used.extend(plan_allocs[m..].iter().cloned());
        let mut start = snapshot.start.clone();
        let mut finish = snapshot.finish.clone();
        let mut nominal = snapshot.nominal.clone();
        start.resize(n, f64::NAN);
        finish.resize(n, f64::NAN);
        nominal.resize(n, f64::NAN);
        // Pre-`ready_time` snapshots deserialise the field empty; the resize
        // fills every slot with the not-yet-ready sentinel.
        let mut ready_time = snapshot.ready_time.clone();
        ready_time.resize(n, f64::NAN);

        // The completion queue and position index are derived state: rebuilt
        // from the snapshot's running set, never serialised. The progress
        // maximum is refolded from the realized finishes of completed jobs.
        let completions =
            EventQueue::from_entries(snapshot.running.iter().map(|r| (r.finish, r.job)).collect());
        let mut running_pos = vec![usize::MAX; n];
        for (i, r) in snapshot.running.iter().enumerate() {
            running_pos[r.job] = i;
        }
        let max_completed_finish = (0..m)
            .filter(|&j| completed[j])
            .map(|j| finish[j])
            .fold(0.0f64, f64::max);

        let world = SimWorld {
            now: snapshot.now,
            capacities: snapshot.capacities.clone(),
            resources: ResourceState::from_available(snapshot.available.clone()),
            ready,
            released,
            started,
            completed,
            running: snapshot.running.clone(),
            remaining_preds,
            abandoned,
            max_completed_finish,
        };
        Ok(RunCore {
            seed: snapshot.seed,
            max_events,
            world,
            perturber,
            completions,
            running_pos,
            start,
            finish,
            nominal,
            ready_time,
            alloc_used,
            num_completed: snapshot.num_completed,
            events: snapshot.events.clone(),
            harvested_events: snapshot.harvested_events,
            harvested_until: snapshot.harvested_until,
            event_budget: snapshot.event_budget,
            // The stream position is restored counter-only here; installing
            // a real failure plan (`install_failures`) replays the model's
            // draws up to this count, exactly like `Perturber::resume`.
            failure: FailureSampler::resume(
                crate::FailureModel::None,
                snapshot.seed,
                snapshot.failure_attempts,
            ),
            retry: RetryPolicy::default(),
            outages: Vec::new(),
            outages_done: 0,
            attempts,
            retry_at,
            fail_cause,
            num_abandoned,
            retries,
        })
    }

    /// Installs a failure plan, resuming the failure stream at the recorded
    /// attempt count. Call before driving (fresh runs and resumed ones
    /// alike); a run without an installed plan never fails anything.
    fn install_failures(&mut self, plan: FailurePlan, sampler: FailureSampler) {
        self.failure = sampler;
        self.retry = plan.retry;
        let mut outages = plan.outages;
        outages.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.resource.cmp(&b.resource))
        });
        // Outages at or before the current instant already fired (the drive
        // loop processes everything `<= now + EPS` before pausing).
        self.outages_done = outages
            .iter()
            .filter(|o| o.time <= self.world.now + EPS)
            .count();
        self.outages = outages;
    }

    fn state<'a>(&'a self, instance: &'a Instance, plan: &'a Schedule) -> SimState<'a> {
        SimState {
            instance,
            plan,
            world: &self.world,
            alloc_used: &self.alloc_used,
        }
    }

    fn checkpoint(&self) -> SimSnapshot {
        SimSnapshot {
            seed: self.seed,
            now: self.world.now,
            capacities: self.world.capacities.clone(),
            available: self.world.resources.available_amounts().to_vec(),
            ready: self.world.ready.clone(),
            released: self.world.released.clone(),
            started: self.world.started.clone(),
            completed: self.world.completed.clone(),
            running: self.world.running.clone(),
            remaining_preds: self.world.remaining_preds.clone(),
            start: self.start.clone(),
            finish: self.finish.clone(),
            nominal: self.nominal.clone(),
            ready_time: self.ready_time.clone(),
            alloc_used: self.alloc_used.clone(),
            num_completed: self.num_completed,
            events: self.events.clone(),
            harvested_events: self.harvested_events,
            harvested_until: self.harvested_until,
            event_budget: self.event_budget,
            perturber_realizations: self.perturber.realizations(),
            attempts: self.attempts.clone(),
            retry_at: self.retry_at.clone(),
            abandoned: self.world.abandoned.clone(),
            fail_cause: self.fail_cause.clone(),
            failure_attempts: self.failure.attempts(),
        }
    }

    /// Moves the retained event log out of the run, advancing the watermark.
    fn take_harvested(&mut self) -> Vec<TraceEvent> {
        let out = std::mem::take(&mut self.events);
        self.harvested_events += out.len();
        self.harvested_until = self.world.now;
        out
    }

    fn drive_inner(
        &mut self,
        instance: &Instance,
        plan: &Schedule,
        policy: &mut dyn Policy,
        source: &mut dyn EventSource,
        t_stop: Option<f64>,
        init_policy: bool,
    ) -> Result<RunStatus, SimError> {
        let n = instance.num_jobs();
        let max_events = self.max_events.unwrap_or(1000 + 200 * n);
        if init_policy {
            policy.on_start(&self.state(instance, plan))?;
        }

        loop {
            // Decision point: let the policy start jobs until it passes.
            loop {
                let starts = policy.select_starts(&self.state(instance, plan));
                if starts.is_empty() {
                    break;
                }
                for (j, alloc) in starts {
                    self.apply_start(instance, policy.label(), j, alloc)?;
                }
            }

            let src_next = source.next_time();
            if self.num_completed + self.num_abandoned == n && src_next.is_none() {
                return Ok(RunStatus::Complete);
            }

            // Drop stale completion entries (attempts killed early by an
            // outage leave their queued finish behind) so the time advance
            // never targets a dead instant.
            while let Some((f, j)) = self.completions.peek() {
                let pos = self.running_pos[j];
                if pos != usize::MAX && self.world.running[pos].finish == f {
                    break;
                }
                self.completions.pop();
            }

            // Advance to the next event: the earliest pending completion
            // (heap peek, O(1)), backoff expiry, outage, or source event.
            let mut t_next = match self.completions.peek() {
                Some((f, _)) => f,
                None => f64::INFINITY,
            };
            if let Some((t, _)) = self.retries.peek() {
                t_next = t_next.min(t);
            }
            if let Some(o) = self.outages.get(self.outages_done) {
                t_next = t_next.min(o.time);
            }
            if let Some(t) = src_next {
                t_next = t_next.min(t);
            }
            if !t_next.is_finite() {
                // Nothing is running and no event is pending, yet jobs
                // remain. With nothing running, every incomplete job is
                // unreleased, waiting on one, or ready: a non-empty ready
                // set means jobs the policy can never start (stall), while
                // an empty one means everything traces back to an
                // unreleased job a live source may still feed (idle).
                return if self.world.ready.is_empty() {
                    Ok(RunStatus::Idle)
                } else {
                    Err(SimError::Stalled {
                        time: self.world.now,
                        ready: self.world.ready.clone(),
                    })
                };
            }
            if let Some(stop) = t_stop {
                if t_next > stop + EPS {
                    return Ok(RunStatus::Paused);
                }
            }
            self.event_budget += 1;
            if self.event_budget > max_events {
                return Err(SimError::EventLimitExceeded { limit: max_events });
            }
            self.world.now = t_next;

            // Apply every event at this instant, in a fixed order:
            // completions and attempt failures (freeing resources and
            // successors), then outages, then backoff expiries, then
            // arrivals, then capacity changes.
            let mut batch: Vec<TraceEvent> = Vec::new();

            // Pop every attempt ending within tolerance of this instant off
            // the heap, then process the batch in job order (the
            // deterministic trace order). Each entry is moved out of the
            // running set with one swap — no O(running) sweep, no clone. An
            // entry whose finish no longer matches its running attempt is a
            // stale leftover of an outage kill and is skipped.
            let now = self.world.now;
            let mut done: Vec<usize> = Vec::new();
            while let Some((f, j)) = self.completions.peek() {
                if f > now + EPS {
                    break;
                }
                self.completions.pop();
                let pos = self.running_pos[j];
                if pos != usize::MAX && self.world.running[pos].finish == f {
                    done.push(j);
                }
            }
            done.sort_unstable();
            mrls_obs::counter_add("sim.engine.completions", done.len() as u64);
            for j in done {
                if let Some(cause) = self.fail_cause[j] {
                    // The attempt's queued end is its planned death point.
                    self.fail_attempt(instance, j, cause, &mut batch);
                    continue;
                }
                let pos = self.running_pos[j];
                let r = self.world.running.swap_remove(pos);
                debug_assert_eq!(r.job, j, "running position index out of sync");
                self.running_pos[j] = usize::MAX;
                if let Some(moved) = self.world.running.get(pos) {
                    self.running_pos[moved.job] = pos;
                }
                self.world.completed[j] = true;
                self.num_completed += 1;
                self.world.resources.release(&self.alloc_used[j]);
                self.world.max_completed_finish = self.world.max_completed_finish.max(r.finish);
                for &succ in instance.dag.successors(j) {
                    self.world.remaining_preds[succ] -= 1;
                    if self.world.remaining_preds[succ] == 0 && self.world.released[succ] {
                        insert_sorted(&mut self.world.ready, succ);
                        self.ready_time[succ] = self.world.now;
                    }
                }
                batch.push(TraceEvent::JobCompleted {
                    time: self.world.now,
                    job: j,
                    nominal: r.nominal,
                    realized: r.finish - r.start,
                });
            }

            // Timed resource outages: every attempt running with a non-zero
            // allocation on the type dies, in job order. Capacity itself is
            // untouched (an outage is a fault, not a capacity change).
            while let Some(o) = self.outages.get(self.outages_done) {
                if o.time > now + EPS {
                    break;
                }
                let resource = o.resource;
                self.outages_done += 1;
                let mut victims: Vec<usize> = self
                    .world
                    .running
                    .iter()
                    .filter(|r| {
                        let a = &self.alloc_used[r.job];
                        resource < a.dim() && a[resource] > 0
                    })
                    .map(|r| r.job)
                    .collect();
                victims.sort_unstable();
                for j in victims {
                    self.fail_attempt(instance, j, FailCause::Outage { resource }, &mut batch);
                }
            }

            // Backoff expiries: failed jobs rejoin the ready set. A failed
            // job is released with every predecessor complete (it started
            // once), so re-insertion is unconditional.
            while let Some((t, j)) = self.retries.peek() {
                if t > now + EPS {
                    break;
                }
                self.retries.pop();
                if !self.retry_at[j].is_finite() || self.world.abandoned[j] {
                    continue;
                }
                self.retry_at[j] = f64::NAN;
                debug_assert!(
                    self.world.released[j]
                        && !self.world.started[j]
                        && self.world.remaining_preds[j] == 0,
                    "a job in backoff is released with all predecessors complete"
                );
                insert_sorted(&mut self.world.ready, j);
                self.ready_time[j] = now;
                batch.push(TraceEvent::JobRetried {
                    time: now,
                    job: j,
                    attempt: self.attempts[j] + 1,
                });
            }

            let (mut releases, mut capacity_changes) = (0u64, 0u64);
            for ev in source.pop_until(self.world.now + EPS) {
                match ev {
                    SourceEvent::Release { job, .. } => {
                        releases += 1;
                        self.world.released[job] = true;
                        if self.world.remaining_preds[job] == 0 && !self.world.started[job] {
                            insert_sorted(&mut self.world.ready, job);
                            self.ready_time[job] = self.world.now;
                        }
                        batch.push(TraceEvent::JobReleased {
                            time: self.world.now,
                            job,
                        });
                    }
                    SourceEvent::Capacity {
                        resource, capacity, ..
                    } => {
                        capacity_changes += 1;
                        let delta = capacity as f64 - self.world.capacities[resource] as f64;
                        self.world.capacities[resource] = capacity;
                        self.world.resources.shift_capacity(resource, delta);
                        batch.push(TraceEvent::CapacityChanged {
                            time: self.world.now,
                            resource,
                            capacity,
                        });
                    }
                }
            }

            if mrls_obs::enabled() {
                mrls_obs::counter_add("sim.engine.releases", releases);
                mrls_obs::counter_add("sim.engine.capacity_changes", capacity_changes);
                mrls_obs::counter_add("sim.engine.events_processed", batch.len() as u64);
            }
            self.events.extend(batch.iter().cloned());
            let policy_events = policy.on_events(&self.state(instance, plan), &batch)?;
            self.events.extend(policy_events);
        }
    }

    /// Kills job `j`'s running attempt at the current instant: releases its
    /// resources, rewinds its lifecycle to "released but unstarted", and
    /// either schedules its backoff re-eligibility or — when the retry
    /// budget is exhausted — abandons it along with every descendant.
    fn fail_attempt(
        &mut self,
        instance: &Instance,
        j: usize,
        cause: FailCause,
        batch: &mut Vec<TraceEvent>,
    ) {
        let pos = self.running_pos[j];
        let r = self.world.running.swap_remove(pos);
        debug_assert_eq!(r.job, j, "running position index out of sync");
        self.running_pos[j] = usize::MAX;
        if let Some(moved) = self.world.running.get(pos) {
            self.running_pos[moved.job] = pos;
        }
        self.world.started[j] = false;
        self.world.resources.release(&self.alloc_used[j]);
        self.fail_cause[j] = None;
        self.start[j] = f64::NAN;
        self.finish[j] = f64::NAN;
        self.nominal[j] = f64::NAN;
        let attempt = self.attempts[j];
        let now = self.world.now;
        mrls_obs::counter_add("sim.engine.attempt_failures", 1);
        batch.push(TraceEvent::JobFailed {
            time: now,
            job: j,
            attempt,
            cause,
        });
        if attempt >= self.retry.max_attempts {
            self.abandon_with_descendants(instance, j, now, batch);
        } else {
            let at = now + self.retry.delay_after(attempt);
            self.retry_at[j] = at;
            self.retries.push(at, j);
        }
    }

    /// Marks `j` and every not-yet-completed descendant abandoned; each
    /// descendant gets a cascade `JobFailed` event (attempt 0 — it never
    /// ran). Descendants are provably never ready, started, or in backoff:
    /// their predecessor chain back to `j` contains a job that never
    /// completes, so their remaining-predecessor count never reaches zero.
    fn abandon_with_descendants(
        &mut self,
        instance: &Instance,
        j: usize,
        now: f64,
        batch: &mut Vec<TraceEvent>,
    ) {
        let mut stack = vec![j];
        let mut marked: Vec<usize> = Vec::new();
        while let Some(u) = stack.pop() {
            if self.world.abandoned[u] || self.world.completed[u] {
                continue;
            }
            debug_assert!(
                u == j || (!self.world.started[u] && !self.world.is_ready(u)),
                "a descendant of an uncompleted job cannot be ready or started"
            );
            self.world.abandoned[u] = true;
            self.num_abandoned += 1;
            marked.push(u);
            for &s in instance.dag.successors(u) {
                stack.push(s);
            }
        }
        marked.sort_unstable();
        for &u in &marked {
            if u == j {
                continue;
            }
            batch.push(TraceEvent::JobFailed {
                time: now,
                job: u,
                attempt: 0,
                cause: FailCause::Cascade,
            });
        }
    }

    /// Validates and applies one policy-selected start.
    fn apply_start(
        &mut self,
        instance: &Instance,
        policy_label: &str,
        j: usize,
        alloc: Allocation,
    ) -> Result<(), SimError> {
        let violation = |reason: String| SimError::PolicyViolation {
            policy: policy_label.to_string(),
            job: j,
            reason,
        };
        let world = &mut self.world;
        let pos = world
            .ready
            .binary_search(&j)
            .map_err(|_| violation("job is not ready".to_string()))?;
        instance
            .system
            .validate_allocation(&alloc)
            .map_err(|e| violation(e.to_string()))?;
        if !world.resources.fits(&alloc) {
            return Err(violation(format!(
                "allocation {alloc} does not fit the current availability"
            )));
        }
        let t_nom = instance.jobs[j].spec.time(&alloc);
        if !t_nom.is_finite() || t_nom <= 0.0 {
            return Err(violation(format!(
                "allocation {alloc} has invalid execution time {t_nom}"
            )));
        }
        let t_real = self.perturber.realize(&alloc, t_nom);
        self.attempts[j] += 1;
        // The failure draw happens at start time so the death is decided (and
        // the RNG stream advanced) deterministically regardless of what else
        // happens while the attempt runs. A doomed attempt occupies its
        // resources for `frac * t_real` and dies at the completion queue.
        let fail = self.failure.sample(t_real / t_nom);
        self.fail_cause[j] = fail.map(|(_, cause)| cause);
        let t_end = match fail {
            Some((frac, _)) => world.now + frac * t_real,
            None => world.now + t_real,
        };
        world.ready.remove(pos);
        world.started[j] = true;
        world.resources.acquire(&alloc);
        self.start[j] = world.now;
        self.finish[j] = t_end;
        self.nominal[j] = t_nom;
        // One clone: `alloc_used` keeps the authoritative copy the running
        // job releases at completion; the trace event takes the original.
        self.alloc_used[j] = alloc.clone();
        self.running_pos[j] = world.running.len();
        world.running.push(RunningJob {
            job: j,
            start: world.now,
            finish: t_end,
            nominal: t_nom,
        });
        self.completions.push(t_end, j);
        mrls_obs::counter_add("sim.engine.job_starts", 1);
        self.events.push(TraceEvent::JobStarted {
            time: world.now,
            job: j,
            alloc,
            nominal: t_nom,
        });
        Ok(())
    }

    /// Assembles the realized trace, prepending `prefix` (previously
    /// harvested events) to the retained log. Meaningful after
    /// [`RunStatus::Complete`]; unfinished jobs would leave NaN
    /// starts/finishes in the schedule.
    fn build_trace(
        &self,
        instance: &Instance,
        plan: &Schedule,
        policy_label: &str,
        prefix: &[TraceEvent],
    ) -> RealizedTrace {
        let n = instance.num_jobs();
        let plan_allocs = plan.allocations();
        let jobs: Vec<ScheduledJob> = (0..n)
            .map(|j| ScheduledJob {
                job: j,
                start: self.start[j],
                finish: self.finish[j],
                alloc: self.alloc_used[j].clone(),
            })
            .collect();
        let realized = Schedule::new(jobs);
        // Abandoned jobs never ran: their NaN starts/finishes are excluded
        // from the slowdown statistics rather than poisoning the means.
        let slowdowns: Vec<f64> = (0..n)
            .map(|j| (self.finish[j] - self.start[j]) / self.nominal[j])
            .filter(|s| s.is_finite())
            .collect();
        let events: Vec<TraceEvent> = prefix.iter().chain(self.events.iter()).cloned().collect();
        let num_reschedules = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Rescheduled { .. }))
            .count();
        let num_realloc_jobs = (0..n)
            .filter(|&j| self.alloc_used[j] != plan_allocs[j])
            .count();
        let stats = StressStats {
            planned_makespan: plan.makespan,
            realized_makespan: realized.makespan,
            stretch: if plan.makespan > 0.0 {
                realized.makespan / plan.makespan
            } else {
                1.0
            },
            mean_slowdown: if !slowdowns.is_empty() {
                slowdowns.iter().sum::<f64>() / slowdowns.len() as f64
            } else {
                1.0
            },
            max_slowdown: if !slowdowns.is_empty() {
                slowdowns.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            } else {
                1.0
            },
            num_reschedules,
            num_realloc_jobs,
        };
        RealizedTrace {
            policy: policy_label.to_string(),
            seed: self.seed,
            events,
            realized,
            stats,
        }
    }
}

/// An in-flight simulation borrowing its instance and plan: the world state
/// plus the per-job realized record, driven incrementally against an
/// [`EventSource`].
#[derive(Debug, Clone)]
pub struct SimRun<'a> {
    instance: &'a Instance,
    plan: &'a Schedule,
    core: RunCore,
}

impl<'a> SimRun<'a> {
    /// Begins a run at time zero. `plan` must be job-indexed (entry `j`
    /// describes job `j` — see [`normalize_plan`]); `released` flags the jobs
    /// available before the first external event.
    pub fn start(
        instance: &'a Instance,
        plan: &'a Schedule,
        seed: u64,
        perturbation: PerturbationModel,
        max_events: Option<usize>,
        released: Vec<bool>,
    ) -> Result<Self, SimError> {
        Ok(SimRun {
            instance,
            plan,
            core: RunCore::start(instance, plan, seed, perturbation, max_events, released)?,
        })
    }

    /// Resumes a checkpointed run. The instance may have *grown* since the
    /// checkpoint (jobs appended at the end, with edges only among new jobs
    /// or from pre-existing jobs to new ones — never into pre-snapshot
    /// jobs); appended jobs start unreleased and are fed in as
    /// [`SourceEvent::Release`] events.
    ///
    /// The perturbation stream is reconstructed by replaying
    /// `snapshot.perturber_realizations` draws; a caller resuming round
    /// after round can keep the live [`Perturber`] instead via
    /// [`SimRun::resume_with_perturber`].
    pub fn resume(
        instance: &'a Instance,
        plan: &'a Schedule,
        snapshot: &SimSnapshot,
        perturbation: PerturbationModel,
        max_events: Option<usize>,
    ) -> Result<Self, SimError> {
        let perturber =
            Perturber::resume(perturbation, snapshot.seed, snapshot.perturber_realizations);
        SimRun::resume_with_perturber(instance, plan, snapshot, perturber, max_events)
    }

    /// Like [`SimRun::resume`], but continues an already fast-forwarded
    /// perturbation stream instead of replaying it from the seed.
    pub fn resume_with_perturber(
        instance: &'a Instance,
        plan: &'a Schedule,
        snapshot: &SimSnapshot,
        perturber: Perturber,
        max_events: Option<usize>,
    ) -> Result<Self, SimError> {
        Ok(SimRun {
            instance,
            plan,
            core: RunCore::resume(instance, plan, snapshot, perturber, max_events)?,
        })
    }

    /// The observable world state.
    pub fn state(&self) -> SimState<'_> {
        self.core.state(self.instance, self.plan)
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.core.world.now
    }

    /// Number of completed jobs.
    pub fn num_completed(&self) -> usize {
        self.core.num_completed
    }

    /// The retained trace events: everything processed since the last
    /// harvest (the full log if nothing was ever harvested).
    pub fn events(&self) -> &[TraceEvent] {
        &self.core.events
    }

    /// Count of events harvested out of the retained log so far.
    pub fn harvested_events(&self) -> usize {
        self.core.harvested_events
    }

    /// Virtual-time watermark of the last harvest.
    pub fn harvested_until(&self) -> f64 {
        self.core.harvested_until
    }

    /// Moves the retained event log out of the run and advances the
    /// `harvested_until` watermark to the current virtual time. Subsequent
    /// checkpoints carry only events processed after this call; pass the
    /// harvested prefix back to [`SimRun::into_trace_with_prefix`] when
    /// assembling the full trace.
    pub fn take_harvested_events(&mut self) -> Vec<TraceEvent> {
        self.core.take_harvested()
    }

    /// The perturbation stream in its current position (clone it to resume a
    /// follow-up round without replaying draws — see
    /// [`SimRun::resume_with_perturber`]).
    pub fn perturber(&self) -> &Perturber {
        &self.core.perturber
    }

    /// Installs a failure plan on the paused run, replaying the failure
    /// stream from the seed to its current position (see
    /// [`PersistentRun::set_failures`]).
    pub fn set_failures(&mut self, plan: FailurePlan) {
        let sampler = FailureSampler::resume(
            plan.model.clone(),
            self.core.seed,
            self.core.failure.attempts(),
        );
        self.core.install_failures(plan, sampler);
    }

    /// Like [`SimRun::set_failures`], but continues an already
    /// fast-forwarded failure stream instead of replaying it.
    pub fn set_failures_with_sampler(
        &mut self,
        plan: FailurePlan,
        sampler: FailureSampler,
    ) -> Result<(), SimError> {
        if sampler.attempts() != self.core.failure.attempts() {
            return Err(SimError::InvalidSnapshot(format!(
                "failure sampler is at attempt {} but the run is at {}",
                sampler.attempts(),
                self.core.failure.attempts()
            )));
        }
        self.core.install_failures(plan, sampler);
        Ok(())
    }

    /// The failure stream in its current position.
    pub fn failure_sampler(&self) -> &FailureSampler {
        &self.core.failure
    }

    /// Per-job attempt counts (0 = never started).
    pub fn attempts(&self) -> &[u32] {
        &self.core.attempts
    }

    /// Number of abandoned jobs (retry budget exhausted, plus cascaded
    /// descendants).
    pub fn num_abandoned(&self) -> usize {
        self.core.num_abandoned
    }

    /// Per-job virtual times at which each job became ready (NaN = not yet
    /// ready; all-NaN prefix for runs resumed from pre-`ready_time`
    /// snapshots).
    pub fn ready_times(&self) -> &[f64] {
        &self.core.ready_time
    }

    /// Captures a fully owned, serialisable checkpoint of the paused run.
    pub fn checkpoint(&self) -> SimSnapshot {
        self.core.checkpoint()
    }

    /// Drives the run until every job completed and the source is exhausted
    /// ([`RunStatus::Complete`]) or nothing more can happen
    /// ([`RunStatus::Idle`]). `policy` is (re-)initialised via
    /// [`Policy::on_start`] at the beginning of every drive call.
    pub fn drive(
        &mut self,
        policy: &mut dyn Policy,
        source: &mut dyn EventSource,
    ) -> Result<RunStatus, SimError> {
        self.core
            .drive_inner(self.instance, self.plan, policy, source, None, true)
    }

    /// Like [`SimRun::drive`], but stops (returning [`RunStatus::Paused`])
    /// before processing any event later than `t_stop`.
    pub fn drive_until(
        &mut self,
        policy: &mut dyn Policy,
        source: &mut dyn EventSource,
        t_stop: f64,
    ) -> Result<RunStatus, SimError> {
        self.core
            .drive_inner(self.instance, self.plan, policy, source, Some(t_stop), true)
    }

    /// Assembles the realized trace. Call after [`RunStatus::Complete`];
    /// unfinished jobs would leave NaN starts/finishes in the schedule. If
    /// events were harvested, the trace only covers the retained suffix —
    /// use [`SimRun::into_trace_with_prefix`] to reattach the archive.
    pub fn into_trace(self, policy_label: &str) -> RealizedTrace {
        self.core
            .build_trace(self.instance, self.plan, policy_label, &[])
    }

    /// Like [`SimRun::into_trace`], prepending previously harvested events so
    /// the assembled log is complete again.
    pub fn into_trace_with_prefix(
        self,
        policy_label: &str,
        prefix: &[TraceEvent],
    ) -> RealizedTrace {
        self.core
            .build_trace(self.instance, self.plan, policy_label, prefix)
    }
}

/// An in-flight simulation that **owns** its world: the instance, the plan
/// and the run state live together, so the run survives across interaction
/// rounds and the world can grow in place — no checkpoint→clone→resume
/// cycle, no O(history) copying. This is the engine shape behind the
/// `mrls-serve` incremental service core.
///
/// Mutations between drive calls:
///
/// * [`PersistentRun::grow`] appends jobs (and their precedence edges and
///   plan entries) and raises the system's capacity bounds;
/// * [`PersistentRun::sync_realized`] freezes the realized placement of
///   started jobs into the plan (what a rebuilt plan would contain);
/// * [`PersistentRun::apply_plan_updates`] installs re-planned placements
///   for unstarted jobs — callers diff the planner output first
///   (`mrls_core::diff_plan_entries`) so unchanged placements are not
///   re-applied.
#[derive(Debug, Clone)]
pub struct PersistentRun {
    instance: Instance,
    plan: Schedule,
    core: RunCore,
}

impl PersistentRun {
    /// Begins an owned run at time zero (see [`SimRun::start`]).
    pub fn new(
        instance: Instance,
        plan: Schedule,
        seed: u64,
        perturbation: PerturbationModel,
        max_events: Option<usize>,
        released: Vec<bool>,
    ) -> Result<Self, SimError> {
        let core = RunCore::start(&instance, &plan, seed, perturbation, max_events, released)?;
        Ok(PersistentRun {
            instance,
            plan,
            core,
        })
    }

    /// Resumes an owned run from a checkpoint (restart-after-crash; see
    /// [`SimRun::resume`] for the grown-instance contract).
    pub fn resume(
        instance: Instance,
        plan: Schedule,
        snapshot: &SimSnapshot,
        perturbation: PerturbationModel,
        max_events: Option<usize>,
    ) -> Result<Self, SimError> {
        let perturber =
            Perturber::resume(perturbation, snapshot.seed, snapshot.perturber_realizations);
        let core = RunCore::resume(&instance, &plan, snapshot, perturber, max_events)?;
        Ok(PersistentRun {
            instance,
            plan,
            core,
        })
    }

    /// The instance being executed.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The in-flight plan (realized entries for synced started jobs, latest
    /// applied placements for pending ones).
    pub fn plan(&self) -> &Schedule {
        &self.plan
    }

    /// The observable world state.
    pub fn state(&self) -> SimState<'_> {
        self.core.state(&self.instance, &self.plan)
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.core.world.now
    }

    /// Number of completed jobs.
    pub fn num_completed(&self) -> usize {
        self.core.num_completed
    }

    /// The retained trace events (everything since the last harvest).
    pub fn events(&self) -> &[TraceEvent] {
        &self.core.events
    }

    /// Count of events harvested out of the retained log so far.
    pub fn harvested_events(&self) -> usize {
        self.core.harvested_events
    }

    /// Virtual-time watermark of the last harvest.
    pub fn harvested_until(&self) -> f64 {
        self.core.harvested_until
    }

    /// Moves the retained event log out of the run, advancing the watermark
    /// (see [`SimRun::take_harvested_events`]).
    pub fn take_harvested_events(&mut self) -> Vec<TraceEvent> {
        self.core.take_harvested()
    }

    /// The perturbation stream in its current position.
    pub fn perturber(&self) -> &Perturber {
        &self.core.perturber
    }

    /// Installs a failure plan on the paused run. Runs start failure-free;
    /// call this right after [`PersistentRun::new`] /
    /// [`PersistentRun::resume`] (the failure stream is replayed from the
    /// seed to the checkpointed position, mirroring how
    /// [`PersistentRun::resume`] replays the perturbation stream). Failure
    /// injection requires a reactive policy — a static cursor policy
    /// deadlocks when its cursor reaches a job that is in backoff.
    pub fn set_failures(&mut self, plan: FailurePlan) {
        let sampler = FailureSampler::resume(
            plan.model.clone(),
            self.core.seed,
            self.core.failure.attempts(),
        );
        self.core.install_failures(plan, sampler);
    }

    /// Like [`PersistentRun::set_failures`], but continues an already
    /// fast-forwarded failure stream (kept live across rounds) instead of
    /// replaying it from the seed.
    pub fn set_failures_with_sampler(
        &mut self,
        plan: FailurePlan,
        sampler: FailureSampler,
    ) -> Result<(), SimError> {
        if sampler.attempts() != self.core.failure.attempts() {
            return Err(SimError::InvalidSnapshot(format!(
                "failure sampler is at attempt {} but the run is at {}",
                sampler.attempts(),
                self.core.failure.attempts()
            )));
        }
        self.core.install_failures(plan, sampler);
        Ok(())
    }

    /// The failure stream in its current position.
    pub fn failure_sampler(&self) -> &FailureSampler {
        &self.core.failure
    }

    /// Per-job attempt counts (0 = never started).
    pub fn attempts(&self) -> &[u32] {
        &self.core.attempts
    }

    /// Number of abandoned jobs (retry budget exhausted, plus cascaded
    /// descendants).
    pub fn num_abandoned(&self) -> usize {
        self.core.num_abandoned
    }

    /// Per-job virtual times at which each job became ready (NaN = not yet
    /// ready — see [`SimRun::ready_times`]).
    pub fn ready_times(&self) -> &[f64] {
        &self.core.ready_time
    }

    /// Captures a fully owned, serialisable checkpoint of the paused run.
    /// After harvesting, the checkpoint is truncated: it carries only the
    /// retained event suffix plus the harvest watermark.
    pub fn checkpoint(&self) -> SimSnapshot {
        self.core.checkpoint()
    }

    /// Drives the run (see [`SimRun::drive`]).
    pub fn drive(
        &mut self,
        policy: &mut dyn Policy,
        source: &mut dyn EventSource,
    ) -> Result<RunStatus, SimError> {
        self.core
            .drive_inner(&self.instance, &self.plan, policy, source, None, true)
    }

    /// Drives the run up to `t_stop` (see [`SimRun::drive_until`]).
    pub fn drive_until(
        &mut self,
        policy: &mut dyn Policy,
        source: &mut dyn EventSource,
        t_stop: f64,
    ) -> Result<RunStatus, SimError> {
        self.core.drive_inner(
            &self.instance,
            &self.plan,
            policy,
            source,
            Some(t_stop),
            true,
        )
    }

    /// Drives the run *without* re-initialising the policy: unlike
    /// [`PersistentRun::drive`], [`Policy::on_start`] is **not** called — the
    /// caller must have prepared the policy itself, either with an explicit
    /// `on_start` or, for a policy instance kept across rounds, with the
    /// incremental [`Policy::on_plan_update`] hook. `t_stop` limits the run
    /// as in [`SimRun::drive_until`]; `None` runs to completion.
    ///
    /// This is the drive shape behind the `mrls-serve` service core: one
    /// policy instance lives as long as the run, and each round refreshes it
    /// in O(live frontier) instead of paying a fresh O(world) `on_start`.
    pub fn drive_prepared(
        &mut self,
        policy: &mut dyn Policy,
        source: &mut dyn EventSource,
        t_stop: Option<f64>,
    ) -> Result<RunStatus, SimError> {
        self.core
            .drive_inner(&self.instance, &self.plan, policy, source, t_stop, false)
    }

    /// Grows the owned world in place: `system` raises the capacity bounds
    /// (per-type capacities may only grow — the system records the maximum
    /// the machine ever had, so previously validated allocations stay
    /// valid), `jobs` are appended at the end, `edges` may only point into
    /// the appended block, and `entries` are the appended jobs' plan entries
    /// (placeholders are fine; they are replaced by the next
    /// [`PersistentRun::apply_plan_updates`]). Appended jobs start
    /// unreleased — feed them in as [`SourceEvent::Release`] events.
    pub fn grow(
        &mut self,
        system: SystemConfig,
        jobs: Vec<MoldableJob>,
        edges: &[(usize, usize)],
        entries: Vec<ScheduledJob>,
    ) -> Result<(), SimError> {
        let old_n = self.instance.num_jobs();
        let added = jobs.len();
        let d = self.instance.num_resource_types();
        if system.num_resource_types() != d {
            return Err(SimError::InvalidGrowth(format!(
                "system has {} resource types but the world has {d}",
                system.num_resource_types()
            )));
        }
        for (i, (&new, &old)) in system
            .capacities()
            .iter()
            .zip(self.instance.system.capacities())
            .enumerate()
        {
            if new < old {
                return Err(SimError::InvalidGrowth(format!(
                    "capacity bound of resource {i} shrank from {old} to {new} \
                     (bounds record the maximum and may only grow)"
                )));
            }
        }
        if entries.len() != added {
            return Err(SimError::InvalidGrowth(format!(
                "{} plan entries for {added} appended jobs",
                entries.len()
            )));
        }
        for (i, entry) in entries.iter().enumerate() {
            if entry.job != old_n + i {
                return Err(SimError::InvalidGrowth(format!(
                    "plan entry {i} describes job {} but the appended job has id {}",
                    entry.job,
                    old_n + i
                )));
            }
            system
                .validate_allocation(&entry.alloc)
                .map_err(|e| SimError::InvalidGrowth(format!("job {}: {e}", entry.job)))?;
        }
        self.instance
            .dag
            .append(added, edges)
            .map_err(|e| SimError::InvalidGrowth(e.to_string()))?;
        self.instance.system = system;
        self.instance.jobs.extend(jobs);
        self.plan.jobs.extend(entries.iter().cloned());
        self.plan.makespan = plan_makespan(&self.plan);

        let n = old_n + added;
        let world = &mut self.core.world;
        world.released.resize(n, false);
        world.started.resize(n, false);
        world.completed.resize(n, false);
        world.abandoned.resize(n, false);
        for j in old_n..n {
            // Predecessors completed before the job existed already had
            // their completion events processed (same contract as resuming
            // a snapshot against a grown instance).
            world.remaining_preds.push(
                self.instance
                    .dag
                    .predecessors(j)
                    .iter()
                    .filter(|&&p| !world.completed[p])
                    .count(),
            );
        }
        self.core.start.resize(n, f64::NAN);
        self.core.finish.resize(n, f64::NAN);
        self.core.nominal.resize(n, f64::NAN);
        self.core.ready_time.resize(n, f64::NAN);
        self.core.running_pos.resize(n, usize::MAX);
        self.core.attempts.resize(n, 0);
        self.core.retry_at.resize(n, f64::NAN);
        self.core.fail_cause.resize(n, None);
        self.core
            .alloc_used
            .extend(entries.into_iter().map(|e| e.alloc));
        Ok(())
    }

    /// Freezes the realized placement of the given **started** jobs into the
    /// plan — exactly what a from-scratch plan rebuild would install for
    /// them. Call between drive calls (the plan must stay fixed during a
    /// drive so policies observe a consistent world).
    pub fn sync_realized(&mut self, jobs: &[usize]) -> Result<usize, SimError> {
        for &j in jobs {
            if j >= self.instance.num_jobs() || !self.core.world.started[j] {
                return Err(SimError::InvalidGrowth(format!(
                    "job {j} has not started; only realized placements can be synced"
                )));
            }
            self.plan.jobs[j] = ScheduledJob {
                job: j,
                start: self.core.start[j],
                finish: self.core.finish[j],
                alloc: self.core.alloc_used[j].clone(),
            };
        }
        if !jobs.is_empty() {
            self.plan.makespan = plan_makespan(&self.plan);
        }
        Ok(jobs.len())
    }

    /// Installs re-planned placements for **unstarted** jobs (started jobs'
    /// placements are frozen history — sync them instead). Returns how many
    /// entries were applied. Callers diff against [`PersistentRun::plan`]
    /// first so unchanged placements are skipped.
    pub fn apply_plan_updates(&mut self, entries: &[ScheduledJob]) -> Result<usize, SimError> {
        for entry in entries {
            if entry.job >= self.instance.num_jobs() {
                return Err(SimError::InvalidGrowth(format!(
                    "plan update references job {} outside the world",
                    entry.job
                )));
            }
            if self.core.world.started[entry.job] {
                return Err(SimError::InvalidGrowth(format!(
                    "plan update targets job {}, which already started",
                    entry.job
                )));
            }
            self.instance
                .system
                .validate_allocation(&entry.alloc)
                .map_err(|e| SimError::InvalidGrowth(format!("job {}: {e}", entry.job)))?;
        }
        for entry in entries {
            self.plan.jobs[entry.job] = entry.clone();
            self.core.alloc_used[entry.job] = entry.alloc.clone();
        }
        if !entries.is_empty() {
            self.plan.makespan = plan_makespan(&self.plan);
        }
        Ok(entries.len())
    }

    /// Assembles the realized trace without consuming the run, prepending
    /// `prefix` (the harvested-event archive) to the retained log.
    pub fn trace_with_prefix(&self, policy_label: &str, prefix: &[TraceEvent]) -> RealizedTrace {
        self.core
            .build_trace(&self.instance, &self.plan, policy_label, prefix)
    }
}

/// Inserts `j` into an index-sorted job list at its ordered position (one
/// binary search + memmove — the ready set used to be re-sorted wholesale
/// after every event). Inserting a present element is a no-op, so a
/// duplicate release event cannot double-queue a job.
fn insert_sorted(v: &mut Vec<usize>, j: usize) {
    if let Err(pos) = v.binary_search(&j) {
        v.insert(pos, j);
    }
}

/// The makespan of a (possibly placeholder-holding) plan, with the same NaN
/// semantics as [`Schedule::new`] (`f64::max` ignores NaN).
fn plan_makespan(plan: &Schedule) -> f64 {
    plan.jobs.iter().map(|j| j.finish).fold(0.0f64, f64::max)
}

/// Checks that `plan` covers every job of `instance` exactly once with a
/// well-formed allocation, and returns it with entry `j` describing job `j`
/// (externally loaded plans may list jobs in any order).
pub fn normalize_plan(instance: &Instance, plan: &Schedule) -> Result<Schedule, SimError> {
    let n = instance.num_jobs();
    if plan.jobs.len() != n {
        return Err(SimError::InvalidPlan(format!(
            "plan has {} entries for an instance of {n} jobs",
            plan.jobs.len()
        )));
    }
    let mut jobs: Vec<Option<ScheduledJob>> = vec![None; n];
    for sj in &plan.jobs {
        if sj.job >= n {
            return Err(SimError::InvalidPlan(format!(
                "plan references job {} outside the instance",
                sj.job
            )));
        }
        if jobs[sj.job].is_some() {
            return Err(SimError::InvalidPlan(format!(
                "plan schedules job {} twice",
                sj.job
            )));
        }
        instance
            .system
            .validate_allocation(&sj.alloc)
            .map_err(|e| SimError::InvalidPlan(format!("job {}: {e}", sj.job)))?;
        jobs[sj.job] = Some(sj.clone());
    }
    Ok(Schedule::new(
        jobs.into_iter()
            .map(|sj| sj.expect("every job present exactly once"))
            .collect(),
    ))
}

/// Checks that `plan` is already job-indexed for `instance` (what
/// [`normalize_plan`] produces).
fn check_normalized(instance: &Instance, plan: &Schedule) -> Result<(), SimError> {
    let n = instance.num_jobs();
    if plan.jobs.len() != n {
        return Err(SimError::InvalidPlan(format!(
            "plan has {} entries for an instance of {n} jobs",
            plan.jobs.len()
        )));
    }
    for (j, sj) in plan.jobs.iter().enumerate() {
        if sj.job != j {
            return Err(SimError::InvalidPlan(format!(
                "plan entry {j} describes job {} (run it through normalize_plan first)",
                sj.job
            )));
        }
        instance
            .system
            .validate_allocation(&sj.alloc)
            .map_err(|e| SimError::InvalidPlan(format!("job {j}: {e}")))?;
    }
    Ok(())
}
