//! The deterministic discrete-event execution engine.
//!
//! [`Simulator::run`] executes a planned [`Schedule`] in virtual time on the
//! instance's machine, under a [`Scenario`] (online arrivals, capacity
//! changes) and a [`PerturbationModel`] (stochastic execution times). The
//! engine owns the world state and enforces the hard invariants — precedence,
//! release times, resource capacity — while a [`Policy`](crate::Policy)
//! decides *which* ready jobs start, with which allocations, whenever the
//! world changes.
//!
//! The run loop itself lives in [`SimRun`], an incremental driver that pulls
//! external events from any [`EventSource`] and can be paused, checkpointed
//! (serialisable [`SimSnapshot`]) and resumed — including against a *grown*
//! instance, which is how the `mrls-serve` online service appends freshly
//! submitted jobs between batching rounds.
//!
//! Everything is deterministic: events are processed in `(time, kind, id)`
//! order, random draws are consumed in event order from a `ChaCha8` stream,
//! and two runs with the same seed produce byte-identical traces.

use crate::perturb::{PerturbationModel, Perturber};
use crate::policy::Policy;
use crate::scenario::Scenario;
use crate::source::{EventSource, ScenarioSource, SourceEvent};
use crate::trace::{RealizedTrace, StressStats, TraceEvent};
use mrls_core::{CoreError, ResourceState, Schedule, ScheduledJob};
use mrls_model::{Allocation, Instance};
use serde::{Deserialize, Serialize};

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Error bubbled up from the scheduling core.
    Core(CoreError),
    /// The planned schedule does not match the instance.
    InvalidPlan(String),
    /// The scenario does not match the instance.
    InvalidScenario(String),
    /// A checkpoint does not match the instance/plan it is resumed against.
    InvalidSnapshot(String),
    /// A policy asked the engine to do something infeasible.
    PolicyViolation {
        /// The offending policy.
        policy: String,
        /// The job involved.
        job: usize,
        /// What went wrong.
        reason: String,
    },
    /// The system went idle with unfinished jobs and no future events — a
    /// ready job can never fit (e.g. the capacity it needs was dropped and
    /// the policy cannot re-allocate).
    Stalled {
        /// Virtual time of the stall.
        time: f64,
        /// The jobs that were ready but could not start.
        ready: Vec<usize>,
    },
    /// The run exceeded the configured event budget.
    EventLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Core(e) => write!(f, "core error: {e}"),
            SimError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            SimError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            SimError::InvalidSnapshot(msg) => write!(f, "invalid snapshot: {msg}"),
            SimError::PolicyViolation {
                policy,
                job,
                reason,
            } => write!(
                f,
                "policy {policy} violated an invariant on job {job}: {reason}"
            ),
            SimError::Stalled { time, ready } => write!(
                f,
                "simulation stalled at t={time:.3} with ready jobs {ready:?} that can never start"
            ),
            SimError::EventLimitExceeded { limit } => {
                write!(f, "simulation exceeded the event budget of {limit}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

/// A job currently executing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningJob {
    /// Job index.
    pub job: usize,
    /// When it started.
    pub start: f64,
    /// When it will finish (realized).
    pub finish: f64,
    /// Its nominal execution time under the allocation it runs with.
    pub nominal: f64,
    /// The allocation it holds.
    pub alloc: Allocation,
}

/// The world state the engine maintains and policies observe.
#[derive(Debug, Clone)]
pub struct SimState<'a> {
    /// The instance being executed.
    pub instance: &'a Instance,
    /// The offline plan the run started from.
    pub plan: &'a Schedule,
    /// Current virtual time.
    pub now: f64,
    /// Current per-type capacities (after any capacity changes).
    pub capacities: Vec<u64>,
    /// Current availability (capacities minus held resources).
    pub resources: ResourceState,
    /// Jobs that are released, have all predecessors completed, and have not
    /// started, sorted by job index.
    pub ready: Vec<usize>,
    /// Per-job released flag.
    pub released: Vec<bool>,
    /// Per-job started flag (running or completed).
    pub started: Vec<bool>,
    /// Per-job completed flag.
    pub completed: Vec<bool>,
    /// Jobs currently executing.
    pub running: Vec<RunningJob>,
    /// Per-job count of not-yet-completed predecessors.
    pub remaining_preds: Vec<usize>,
}

impl SimState<'_> {
    /// `true` iff job `j` is in the ready set.
    pub fn is_ready(&self, j: usize) -> bool {
        self.ready.binary_search(&j).is_ok()
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed of the perturbation stream.
    pub seed: u64,
    /// How realized execution times deviate from nominal ones.
    pub perturbation: PerturbationModel,
    /// Online arrivals and capacity changes.
    pub scenario: Scenario,
    /// Event budget; `None` = `1000 + 200 * n`.
    pub max_events: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            perturbation: PerturbationModel::None,
            scenario: Scenario::offline(),
            max_events: None,
        }
    }
}

/// How a [`SimRun::drive`] call ended (errors are reported separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Every job of the instance completed and the source is exhausted.
    Complete,
    /// The stop time was reached; more events are pending.
    Paused,
    /// The source is exhausted and nothing is running, but incomplete jobs
    /// remain, all blocked (directly or transitively) on unreleased jobs —
    /// a live source may still feed the releases later.
    Idle,
}

/// The discrete-event execution engine.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

/// Event-time grouping tolerance, matching the offline list scheduler.
pub(crate) const EPS: f64 = 1e-9;

impl Simulator {
    /// Creates an engine with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Executes `plan` on `instance` under `policy`, returning the realized
    /// trace.
    pub fn run(
        &self,
        instance: &Instance,
        plan: &Schedule,
        policy: &mut dyn Policy,
    ) -> Result<RealizedTrace, SimError> {
        let plan = normalize_plan(instance, plan)?;
        let (mut run, mut source) = self.start(instance, &plan)?;
        match run.drive(policy, &mut source)? {
            RunStatus::Complete => Ok(run.into_trace(policy.label())),
            RunStatus::Paused | RunStatus::Idle => Err(SimError::Stalled {
                time: run.state.now,
                ready: run.state.ready.clone(),
            }),
        }
    }

    /// Begins an incremental run of `plan` (which must be job-indexed — see
    /// [`normalize_plan`]) under the configured scenario, returning the
    /// paused driver plus the scenario's event source. Drive it with
    /// [`SimRun::drive`] / [`SimRun::drive_until`].
    pub fn start<'a>(
        &self,
        instance: &'a Instance,
        plan: &'a Schedule,
    ) -> Result<(SimRun<'a>, ScenarioSource), SimError> {
        let n = instance.num_jobs();
        self.config
            .scenario
            .validate(instance)
            .map_err(SimError::InvalidScenario)?;
        let released: Vec<bool> = (0..n)
            .map(|j| self.config.scenario.release_time(j) <= 0.0)
            .collect();
        let run = SimRun::start(
            instance,
            plan,
            self.config.seed,
            self.config.perturbation.clone(),
            self.config.max_events,
            released,
        )?;
        Ok((run, ScenarioSource::new(&self.config.scenario, n)))
    }

    /// Resumes a checkpointed run against the configured scenario, returning
    /// the driver plus a scenario source fast-forwarded past every event the
    /// checkpointed run already consumed.
    pub fn resume<'a>(
        &self,
        instance: &'a Instance,
        plan: &'a Schedule,
        snapshot: &SimSnapshot,
    ) -> Result<(SimRun<'a>, ScenarioSource), SimError> {
        let n = instance.num_jobs();
        self.config
            .scenario
            .validate(instance)
            .map_err(SimError::InvalidScenario)?;
        let run = SimRun::resume(
            instance,
            plan,
            snapshot,
            self.config.perturbation.clone(),
            self.config.max_events,
        )?;
        let source = ScenarioSource::resume_at(&self.config.scenario, n, snapshot.now);
        Ok((run, source))
    }
}

/// A fully owned, serialisable checkpoint of a paused [`SimRun`].
///
/// Together with the instance and the (job-indexed) plan, a snapshot restores
/// the run exactly: availability amounts are stored verbatim (including
/// floating-point residue) and the perturbation stream is fast-forwarded by
/// its recorded draw count, so the continuation of a resumed run is
/// byte-identical to the uninterrupted one for checkpoint-transparent
/// policies (static replay and reactive-list; a resumed full-reschedule
/// policy re-reads the plan and forgets earlier in-flight reschedules).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimSnapshot {
    /// Seed of the perturbation stream.
    pub seed: u64,
    /// Virtual time of the checkpoint.
    pub now: f64,
    /// Current per-type capacities.
    pub capacities: Vec<u64>,
    /// Raw per-type availability amounts.
    pub available: Vec<f64>,
    /// Ready jobs, sorted by index (informational — recomputed from the
    /// flags at resume).
    pub ready: Vec<usize>,
    /// Per-job released flag.
    pub released: Vec<bool>,
    /// Per-job started flag.
    pub started: Vec<bool>,
    /// Per-job completed flag.
    pub completed: Vec<bool>,
    /// Jobs currently executing.
    pub running: Vec<RunningJob>,
    /// Per-job count of not-yet-completed predecessors (informational —
    /// recomputed from the flags at resume).
    pub remaining_preds: Vec<usize>,
    /// Realized start times (NaN = not started).
    pub start: Vec<f64>,
    /// Realized finish times (NaN = not finished).
    pub finish: Vec<f64>,
    /// Nominal execution times of started jobs (NaN = not started).
    pub nominal: Vec<f64>,
    /// Allocation each job ran (or is planned to run) with.
    pub alloc_used: Vec<Allocation>,
    /// Number of completed jobs.
    pub num_completed: usize,
    /// Every trace event processed so far.
    pub events: Vec<TraceEvent>,
    /// Events consumed from the budget so far.
    pub event_budget: usize,
    /// Perturbation draws consumed so far.
    pub perturber_realizations: u64,
}

impl SimSnapshot {
    /// The number of jobs the checkpointed world knew about.
    pub fn num_jobs(&self) -> usize {
        self.released.len()
    }

    /// Serialises the snapshot to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshots are always serialisable")
    }

    /// Parses a snapshot from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// An in-flight simulation: the world state plus the per-job realized record,
/// driven incrementally against an [`EventSource`].
#[derive(Debug, Clone)]
pub struct SimRun<'a> {
    seed: u64,
    max_events: Option<usize>,
    state: SimState<'a>,
    perturber: Perturber,
    start: Vec<f64>,
    finish: Vec<f64>,
    nominal: Vec<f64>,
    alloc_used: Vec<Allocation>,
    num_completed: usize,
    events: Vec<TraceEvent>,
    event_budget: usize,
}

impl<'a> SimRun<'a> {
    /// Begins a run at time zero. `plan` must be job-indexed (entry `j`
    /// describes job `j` — see [`normalize_plan`]); `released` flags the jobs
    /// available before the first external event.
    pub fn start(
        instance: &'a Instance,
        plan: &'a Schedule,
        seed: u64,
        perturbation: PerturbationModel,
        max_events: Option<usize>,
        released: Vec<bool>,
    ) -> Result<Self, SimError> {
        check_normalized(instance, plan)?;
        let n = instance.num_jobs();
        if released.len() != n {
            return Err(SimError::InvalidScenario(format!(
                "{} release flags for {n} jobs",
                released.len()
            )));
        }
        let remaining_preds: Vec<usize> = (0..n).map(|j| instance.dag.in_degree(j)).collect();
        let ready: Vec<usize> = (0..n)
            .filter(|&j| released[j] && remaining_preds[j] == 0)
            .collect();
        let state = SimState {
            instance,
            plan,
            now: 0.0,
            capacities: instance.system.capacities().to_vec(),
            resources: ResourceState::from_system(&instance.system),
            ready,
            released,
            started: vec![false; n],
            completed: vec![false; n],
            running: Vec::new(),
            remaining_preds,
        };
        Ok(SimRun {
            seed,
            max_events,
            state,
            perturber: Perturber::new(perturbation, seed),
            start: vec![f64::NAN; n],
            finish: vec![f64::NAN; n],
            nominal: vec![f64::NAN; n],
            alloc_used: plan.allocations(),
            num_completed: 0,
            events: Vec::new(),
            event_budget: 0,
        })
    }

    /// Resumes a checkpointed run. The instance may have *grown* since the
    /// checkpoint (jobs appended at the end, with edges only among new jobs
    /// or from pre-existing jobs to new ones — never into pre-snapshot
    /// jobs); appended jobs start unreleased and are fed in as
    /// [`SourceEvent::Release`] events.
    ///
    /// The perturbation stream is reconstructed by replaying
    /// `snapshot.perturber_realizations` draws; a caller resuming round
    /// after round (the `mrls-serve` service) can keep the live
    /// [`Perturber`] instead via [`SimRun::resume_with_perturber`].
    pub fn resume(
        instance: &'a Instance,
        plan: &'a Schedule,
        snapshot: &SimSnapshot,
        perturbation: PerturbationModel,
        max_events: Option<usize>,
    ) -> Result<Self, SimError> {
        let perturber =
            Perturber::resume(perturbation, snapshot.seed, snapshot.perturber_realizations);
        SimRun::resume_with_perturber(instance, plan, snapshot, perturber, max_events)
    }

    /// Like [`SimRun::resume`], but continues an already fast-forwarded
    /// perturbation stream instead of replaying it from the seed.
    pub fn resume_with_perturber(
        instance: &'a Instance,
        plan: &'a Schedule,
        snapshot: &SimSnapshot,
        perturber: Perturber,
        max_events: Option<usize>,
    ) -> Result<Self, SimError> {
        if perturber.realizations() != snapshot.perturber_realizations {
            return Err(SimError::InvalidSnapshot(format!(
                "perturber has drawn {} realizations but the snapshot recorded {}",
                perturber.realizations(),
                snapshot.perturber_realizations
            )));
        }
        check_normalized(instance, plan)?;
        let n = instance.num_jobs();
        let m = snapshot.num_jobs();
        if m > n {
            return Err(SimError::InvalidSnapshot(format!(
                "snapshot covers {m} jobs but the instance has only {n}"
            )));
        }
        let d = instance.num_resource_types();
        if snapshot.capacities.len() != d || snapshot.available.len() != d {
            return Err(SimError::InvalidSnapshot(format!(
                "snapshot has {} resource types but the instance has {d}",
                snapshot.capacities.len()
            )));
        }
        for (what, len) in [
            ("started", snapshot.started.len()),
            ("completed", snapshot.completed.len()),
            ("remaining_preds", snapshot.remaining_preds.len()),
            ("start", snapshot.start.len()),
            ("finish", snapshot.finish.len()),
            ("nominal", snapshot.nominal.len()),
            ("alloc_used", snapshot.alloc_used.len()),
        ] {
            if len != m {
                return Err(SimError::InvalidSnapshot(format!(
                    "snapshot field `{what}` has length {len}, expected {m}"
                )));
            }
        }
        if snapshot.num_completed != snapshot.completed.iter().filter(|&&c| c).count() {
            return Err(SimError::InvalidSnapshot(
                "completion counter disagrees with the completed flags".to_string(),
            ));
        }

        let mut released = snapshot.released.clone();
        let mut started = snapshot.started.clone();
        let mut completed = snapshot.completed.clone();
        released.resize(n, false);
        started.resize(n, false);
        completed.resize(n, false);
        for j in 0..m {
            if (completed[j] && !started[j]) || (started[j] && !released[j]) {
                return Err(SimError::InvalidSnapshot(format!(
                    "job {j} has inconsistent lifecycle flags"
                )));
            }
        }
        // A tampered or truncated checkpoint must fail cleanly, not panic
        // mid-run: the running set is validated against the flags, and the
        // derived fields (remaining predecessor counts, ready set) are
        // recomputed from the flags rather than trusted.
        let mut seen_running = vec![false; n];
        for r in &snapshot.running {
            if r.job >= m || !started[r.job] || completed[r.job] || seen_running[r.job] {
                return Err(SimError::InvalidSnapshot(format!(
                    "running entry for job {} contradicts the job flags",
                    r.job
                )));
            }
            seen_running[r.job] = true;
            instance
                .system
                .validate_allocation(&r.alloc)
                .map_err(|e| SimError::InvalidSnapshot(format!("running job {}: {e}", r.job)))?;
        }
        let remaining_preds: Vec<usize> = (0..n)
            .map(|j| {
                // Completed predecessors already had their completion events
                // processed before the checkpoint (for appended jobs, before
                // they existed).
                instance
                    .dag
                    .predecessors(j)
                    .iter()
                    .filter(|&&p| !completed[p])
                    .count()
            })
            .collect();
        let ready: Vec<usize> = (0..n)
            .filter(|&j| released[j] && !started[j] && remaining_preds[j] == 0)
            .collect();
        let mut alloc_used = snapshot.alloc_used.clone();
        let plan_allocs = plan.allocations();
        alloc_used.extend(plan_allocs[m..].iter().cloned());
        let mut start = snapshot.start.clone();
        let mut finish = snapshot.finish.clone();
        let mut nominal = snapshot.nominal.clone();
        start.resize(n, f64::NAN);
        finish.resize(n, f64::NAN);
        nominal.resize(n, f64::NAN);

        let state = SimState {
            instance,
            plan,
            now: snapshot.now,
            capacities: snapshot.capacities.clone(),
            resources: ResourceState::from_available(snapshot.available.clone()),
            ready,
            released,
            started,
            completed,
            running: snapshot.running.clone(),
            remaining_preds,
        };
        Ok(SimRun {
            seed: snapshot.seed,
            max_events,
            state,
            perturber,
            start,
            finish,
            nominal,
            alloc_used,
            num_completed: snapshot.num_completed,
            events: snapshot.events.clone(),
            event_budget: snapshot.event_budget,
        })
    }

    /// The observable world state.
    pub fn state(&self) -> &SimState<'a> {
        &self.state
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.state.now
    }

    /// Number of completed jobs.
    pub fn num_completed(&self) -> usize {
        self.num_completed
    }

    /// The trace events processed so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The perturbation stream in its current position (clone it to resume a
    /// follow-up round without replaying draws — see
    /// [`SimRun::resume_with_perturber`]).
    pub fn perturber(&self) -> &Perturber {
        &self.perturber
    }

    /// Captures a fully owned, serialisable checkpoint of the paused run.
    pub fn checkpoint(&self) -> SimSnapshot {
        SimSnapshot {
            seed: self.seed,
            now: self.state.now,
            capacities: self.state.capacities.clone(),
            available: self.state.resources.available_amounts().to_vec(),
            ready: self.state.ready.clone(),
            released: self.state.released.clone(),
            started: self.state.started.clone(),
            completed: self.state.completed.clone(),
            running: self.state.running.clone(),
            remaining_preds: self.state.remaining_preds.clone(),
            start: self.start.clone(),
            finish: self.finish.clone(),
            nominal: self.nominal.clone(),
            alloc_used: self.alloc_used.clone(),
            num_completed: self.num_completed,
            events: self.events.clone(),
            event_budget: self.event_budget,
            perturber_realizations: self.perturber.realizations(),
        }
    }

    /// Drives the run until every job completed and the source is exhausted
    /// ([`RunStatus::Complete`]) or nothing more can happen
    /// ([`RunStatus::Idle`]). `policy` is (re-)initialised via
    /// [`Policy::on_start`] at the beginning of every drive call.
    pub fn drive(
        &mut self,
        policy: &mut dyn Policy,
        source: &mut dyn EventSource,
    ) -> Result<RunStatus, SimError> {
        self.drive_inner(policy, source, None)
    }

    /// Like [`SimRun::drive`], but stops (returning [`RunStatus::Paused`])
    /// before processing any event later than `t_stop`.
    pub fn drive_until(
        &mut self,
        policy: &mut dyn Policy,
        source: &mut dyn EventSource,
        t_stop: f64,
    ) -> Result<RunStatus, SimError> {
        self.drive_inner(policy, source, Some(t_stop))
    }

    fn drive_inner(
        &mut self,
        policy: &mut dyn Policy,
        source: &mut dyn EventSource,
        t_stop: Option<f64>,
    ) -> Result<RunStatus, SimError> {
        let n = self.state.instance.num_jobs();
        let max_events = self.max_events.unwrap_or(1000 + 200 * n);
        policy.on_start(&self.state)?;

        loop {
            // Decision point: let the policy start jobs until it passes.
            loop {
                let starts = policy.select_starts(&self.state);
                if starts.is_empty() {
                    break;
                }
                for (j, alloc) in starts {
                    self.apply_start(policy.label(), j, alloc)?;
                }
            }

            let src_next = source.next_time();
            if self.num_completed == n && src_next.is_none() {
                return Ok(RunStatus::Complete);
            }

            // Advance to the next event.
            let mut t_next = f64::INFINITY;
            for r in &self.state.running {
                t_next = t_next.min(r.finish);
            }
            if let Some(t) = src_next {
                t_next = t_next.min(t);
            }
            if !t_next.is_finite() {
                // Nothing is running and no event is pending, yet jobs
                // remain. With nothing running, every incomplete job is
                // unreleased, waiting on one, or ready: a non-empty ready
                // set means jobs the policy can never start (stall), while
                // an empty one means everything traces back to an
                // unreleased job a live source may still feed (idle).
                return if self.state.ready.is_empty() {
                    Ok(RunStatus::Idle)
                } else {
                    Err(SimError::Stalled {
                        time: self.state.now,
                        ready: self.state.ready.clone(),
                    })
                };
            }
            if let Some(stop) = t_stop {
                if t_next > stop + EPS {
                    return Ok(RunStatus::Paused);
                }
            }
            self.event_budget += 1;
            if self.event_budget > max_events {
                return Err(SimError::EventLimitExceeded { limit: max_events });
            }
            self.state.now = t_next;

            // Apply every event at this instant, in a fixed order:
            // completions (freeing resources and successors), then arrivals,
            // then capacity changes.
            let mut batch: Vec<TraceEvent> = Vec::new();

            let mut done: Vec<RunningJob> = Vec::new();
            let now = self.state.now;
            self.state.running.retain(|r| {
                if r.finish <= now + EPS {
                    done.push(r.clone());
                    false
                } else {
                    true
                }
            });
            done.sort_by_key(|r| r.job);
            for r in done {
                self.state.completed[r.job] = true;
                self.num_completed += 1;
                self.state.resources.release(&r.alloc);
                for &succ in self.state.instance.dag.successors(r.job) {
                    self.state.remaining_preds[succ] -= 1;
                    if self.state.remaining_preds[succ] == 0 && self.state.released[succ] {
                        self.state.ready.push(succ);
                    }
                }
                batch.push(TraceEvent::JobCompleted {
                    time: self.state.now,
                    job: r.job,
                    nominal: r.nominal,
                    realized: r.finish - r.start,
                });
            }

            for ev in source.pop_until(self.state.now + EPS) {
                match ev {
                    SourceEvent::Release { job, .. } => {
                        self.state.released[job] = true;
                        if self.state.remaining_preds[job] == 0 && !self.state.started[job] {
                            self.state.ready.push(job);
                        }
                        batch.push(TraceEvent::JobReleased {
                            time: self.state.now,
                            job,
                        });
                    }
                    SourceEvent::Capacity {
                        resource, capacity, ..
                    } => {
                        let delta = capacity as f64 - self.state.capacities[resource] as f64;
                        self.state.capacities[resource] = capacity;
                        self.state.resources.shift_capacity(resource, delta);
                        batch.push(TraceEvent::CapacityChanged {
                            time: self.state.now,
                            resource,
                            capacity,
                        });
                    }
                }
            }

            self.state.ready.sort_unstable();
            self.events.extend(batch.iter().cloned());
            let policy_events = policy.on_events(&self.state, &batch)?;
            self.events.extend(policy_events);
        }
    }

    /// Assembles the realized trace. Call after [`RunStatus::Complete`];
    /// unfinished jobs would leave NaN starts/finishes in the schedule.
    pub fn into_trace(self, policy_label: &str) -> RealizedTrace {
        let n = self.state.instance.num_jobs();
        let plan_allocs = self.state.plan.allocations();
        let jobs: Vec<ScheduledJob> = (0..n)
            .map(|j| ScheduledJob {
                job: j,
                start: self.start[j],
                finish: self.finish[j],
                alloc: self.alloc_used[j].clone(),
            })
            .collect();
        let realized = Schedule::new(jobs);
        let slowdowns: Vec<f64> = (0..n)
            .map(|j| (self.finish[j] - self.start[j]) / self.nominal[j])
            .collect();
        let num_reschedules = self
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Rescheduled { .. }))
            .count();
        let num_realloc_jobs = (0..n)
            .filter(|&j| self.alloc_used[j] != plan_allocs[j])
            .count();
        let stats = StressStats {
            planned_makespan: self.state.plan.makespan,
            realized_makespan: realized.makespan,
            stretch: if self.state.plan.makespan > 0.0 {
                realized.makespan / self.state.plan.makespan
            } else {
                1.0
            },
            mean_slowdown: if n > 0 {
                slowdowns.iter().sum::<f64>() / n as f64
            } else {
                1.0
            },
            max_slowdown: if n > 0 {
                slowdowns.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            } else {
                1.0
            },
            num_reschedules,
            num_realloc_jobs,
        };
        RealizedTrace {
            policy: policy_label.to_string(),
            seed: self.seed,
            events: self.events,
            realized,
            stats,
        }
    }

    /// Validates and applies one policy-selected start.
    fn apply_start(
        &mut self,
        policy_label: &str,
        j: usize,
        alloc: Allocation,
    ) -> Result<(), SimError> {
        let violation = |reason: String| SimError::PolicyViolation {
            policy: policy_label.to_string(),
            job: j,
            reason,
        };
        let state = &mut self.state;
        let pos = state
            .ready
            .binary_search(&j)
            .map_err(|_| violation("job is not ready".to_string()))?;
        state
            .instance
            .system
            .validate_allocation(&alloc)
            .map_err(|e| violation(e.to_string()))?;
        if !state.resources.fits(&alloc) {
            return Err(violation(format!(
                "allocation {alloc} does not fit the current availability"
            )));
        }
        let t_nom = state.instance.jobs[j].spec.time(&alloc);
        if !t_nom.is_finite() || t_nom <= 0.0 {
            return Err(violation(format!(
                "allocation {alloc} has invalid execution time {t_nom}"
            )));
        }
        let t_real = self.perturber.realize(&alloc, t_nom);
        state.ready.remove(pos);
        state.started[j] = true;
        state.resources.acquire(&alloc);
        self.start[j] = state.now;
        self.finish[j] = state.now + t_real;
        self.nominal[j] = t_nom;
        self.alloc_used[j] = alloc.clone();
        state.running.push(RunningJob {
            job: j,
            start: state.now,
            finish: state.now + t_real,
            nominal: t_nom,
            alloc: alloc.clone(),
        });
        self.events.push(TraceEvent::JobStarted {
            time: state.now,
            job: j,
            alloc,
            nominal: t_nom,
        });
        Ok(())
    }
}

/// Checks that `plan` covers every job of `instance` exactly once with a
/// well-formed allocation, and returns it with entry `j` describing job `j`
/// (externally loaded plans may list jobs in any order).
pub fn normalize_plan(instance: &Instance, plan: &Schedule) -> Result<Schedule, SimError> {
    let n = instance.num_jobs();
    if plan.jobs.len() != n {
        return Err(SimError::InvalidPlan(format!(
            "plan has {} entries for an instance of {n} jobs",
            plan.jobs.len()
        )));
    }
    let mut jobs: Vec<Option<ScheduledJob>> = vec![None; n];
    for sj in &plan.jobs {
        if sj.job >= n {
            return Err(SimError::InvalidPlan(format!(
                "plan references job {} outside the instance",
                sj.job
            )));
        }
        if jobs[sj.job].is_some() {
            return Err(SimError::InvalidPlan(format!(
                "plan schedules job {} twice",
                sj.job
            )));
        }
        instance
            .system
            .validate_allocation(&sj.alloc)
            .map_err(|e| SimError::InvalidPlan(format!("job {}: {e}", sj.job)))?;
        jobs[sj.job] = Some(sj.clone());
    }
    Ok(Schedule::new(
        jobs.into_iter()
            .map(|sj| sj.expect("every job present exactly once"))
            .collect(),
    ))
}

/// Checks that `plan` is already job-indexed for `instance` (what
/// [`normalize_plan`] produces).
fn check_normalized(instance: &Instance, plan: &Schedule) -> Result<(), SimError> {
    let n = instance.num_jobs();
    if plan.jobs.len() != n {
        return Err(SimError::InvalidPlan(format!(
            "plan has {} entries for an instance of {n} jobs",
            plan.jobs.len()
        )));
    }
    for (j, sj) in plan.jobs.iter().enumerate() {
        if sj.job != j {
            return Err(SimError::InvalidPlan(format!(
                "plan entry {j} describes job {} (run it through normalize_plan first)",
                sj.job
            )));
        }
        instance
            .system
            .validate_allocation(&sj.alloc)
            .map_err(|e| SimError::InvalidPlan(format!("job {j}: {e}")))?;
    }
    Ok(())
}
