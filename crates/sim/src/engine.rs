//! The deterministic discrete-event execution engine.
//!
//! [`Simulator::run`] executes a planned [`Schedule`] in virtual time on the
//! instance's machine, under a [`Scenario`] (online arrivals, capacity
//! changes) and a [`PerturbationModel`] (stochastic execution times). The
//! engine owns the world state and enforces the hard invariants — precedence,
//! release times, resource capacity — while a [`Policy`](crate::Policy)
//! decides *which* ready jobs start, with which allocations, whenever the
//! world changes.
//!
//! Everything is deterministic: events are processed in `(time, kind, id)`
//! order, random draws are consumed in event order from a `ChaCha8` stream,
//! and two runs with the same seed produce byte-identical traces.

use crate::perturb::{PerturbationModel, Perturber};
use crate::policy::Policy;
use crate::scenario::Scenario;
use crate::trace::{RealizedTrace, StressStats, TraceEvent};
use mrls_core::{CoreError, ResourceState, Schedule, ScheduledJob};
use mrls_model::{Allocation, Instance};

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Error bubbled up from the scheduling core.
    Core(CoreError),
    /// The planned schedule does not match the instance.
    InvalidPlan(String),
    /// The scenario does not match the instance.
    InvalidScenario(String),
    /// A policy asked the engine to do something infeasible.
    PolicyViolation {
        /// The offending policy.
        policy: String,
        /// The job involved.
        job: usize,
        /// What went wrong.
        reason: String,
    },
    /// The system went idle with unfinished jobs and no future events — a
    /// ready job can never fit (e.g. the capacity it needs was dropped and
    /// the policy cannot re-allocate).
    Stalled {
        /// Virtual time of the stall.
        time: f64,
        /// The jobs that were ready but could not start.
        ready: Vec<usize>,
    },
    /// The run exceeded the configured event budget.
    EventLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Core(e) => write!(f, "core error: {e}"),
            SimError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            SimError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            SimError::PolicyViolation {
                policy,
                job,
                reason,
            } => write!(
                f,
                "policy {policy} violated an invariant on job {job}: {reason}"
            ),
            SimError::Stalled { time, ready } => write!(
                f,
                "simulation stalled at t={time:.3} with ready jobs {ready:?} that can never start"
            ),
            SimError::EventLimitExceeded { limit } => {
                write!(f, "simulation exceeded the event budget of {limit}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

/// A job currently executing.
#[derive(Debug, Clone, PartialEq)]
pub struct RunningJob {
    /// Job index.
    pub job: usize,
    /// When it started.
    pub start: f64,
    /// When it will finish (realized).
    pub finish: f64,
    /// Its nominal execution time under the allocation it runs with.
    pub nominal: f64,
    /// The allocation it holds.
    pub alloc: Allocation,
}

/// The world state the engine maintains and policies observe.
#[derive(Debug, Clone)]
pub struct SimState<'a> {
    /// The instance being executed.
    pub instance: &'a Instance,
    /// The offline plan the run started from.
    pub plan: &'a Schedule,
    /// Current virtual time.
    pub now: f64,
    /// Current per-type capacities (after any capacity changes).
    pub capacities: Vec<u64>,
    /// Current availability (capacities minus held resources).
    pub resources: ResourceState,
    /// Jobs that are released, have all predecessors completed, and have not
    /// started, sorted by job index.
    pub ready: Vec<usize>,
    /// Per-job released flag.
    pub released: Vec<bool>,
    /// Per-job started flag (running or completed).
    pub started: Vec<bool>,
    /// Per-job completed flag.
    pub completed: Vec<bool>,
    /// Jobs currently executing.
    pub running: Vec<RunningJob>,
    /// Per-job count of not-yet-completed predecessors.
    pub remaining_preds: Vec<usize>,
}

impl SimState<'_> {
    /// `true` iff job `j` is in the ready set.
    pub fn is_ready(&self, j: usize) -> bool {
        self.ready.binary_search(&j).is_ok()
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed of the perturbation stream.
    pub seed: u64,
    /// How realized execution times deviate from nominal ones.
    pub perturbation: PerturbationModel,
    /// Online arrivals and capacity changes.
    pub scenario: Scenario,
    /// Event budget; `None` = `1000 + 200 * n`.
    pub max_events: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            perturbation: PerturbationModel::None,
            scenario: Scenario::offline(),
            max_events: None,
        }
    }
}

/// The discrete-event execution engine.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

/// Event-time grouping tolerance, matching the offline list scheduler.
const EPS: f64 = 1e-9;

impl Simulator {
    /// Creates an engine with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Executes `plan` on `instance` under `policy`, returning the realized
    /// trace.
    pub fn run(
        &self,
        instance: &Instance,
        plan: &Schedule,
        policy: &mut dyn Policy,
    ) -> Result<RealizedTrace, SimError> {
        let n = instance.num_jobs();
        // Normalise the plan so entry `j` describes job `j` — externally
        // loaded plans may list jobs in any order, but policies index the
        // plan's allocation/start vectors by job id.
        let plan = &normalize_plan(instance, plan)?;
        let plan_allocs = plan.allocations();
        self.config
            .scenario
            .validate(instance)
            .map_err(SimError::InvalidScenario)?;
        let scenario = &self.config.scenario;
        let max_events = self.config.max_events.unwrap_or(1000 + 200 * n);
        let mut perturber = Perturber::new(self.config.perturbation.clone(), self.config.seed);

        // World state.
        let released: Vec<bool> = (0..n).map(|j| scenario.release_time(j) <= 0.0).collect();
        let remaining_preds: Vec<usize> = (0..n).map(|j| instance.dag.in_degree(j)).collect();
        let ready: Vec<usize> = (0..n)
            .filter(|&j| released[j] && remaining_preds[j] == 0)
            .collect();
        let mut state = SimState {
            instance,
            plan,
            now: 0.0,
            capacities: instance.system.capacities().to_vec(),
            resources: ResourceState::from_system(&instance.system),
            ready,
            released,
            started: vec![false; n],
            completed: vec![false; n],
            running: Vec::new(),
            remaining_preds,
        };

        // Future scenario events, each sorted ascending and consumed front to
        // back via an index.
        let mut arrivals: Vec<(f64, usize)> = (0..n)
            .map(|j| (scenario.release_time(j), j))
            .filter(|&(t, _)| t > 0.0)
            .collect();
        arrivals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut next_arrival = 0usize;
        let mut cap_changes = scenario.capacity_changes.clone();
        cap_changes.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.resource.cmp(&b.resource)));
        let mut next_cap = 0usize;

        // Per-job realized record.
        let mut start = vec![f64::NAN; n];
        let mut finish = vec![f64::NAN; n];
        let mut nominal = vec![f64::NAN; n];
        let mut alloc_used: Vec<Allocation> = plan_allocs.clone();
        let mut num_completed = 0usize;
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut event_budget = 0usize;

        policy.on_start(&state)?;

        loop {
            // Decision point: let the policy start jobs until it passes.
            loop {
                let starts = policy.select_starts(&state);
                if starts.is_empty() {
                    break;
                }
                for (j, alloc) in starts {
                    self.apply_start(
                        &mut state,
                        policy.label(),
                        j,
                        alloc,
                        &mut perturber,
                        &mut start,
                        &mut finish,
                        &mut nominal,
                        &mut alloc_used,
                        &mut events,
                    )?;
                }
            }

            if num_completed == n {
                break;
            }

            // Advance to the next event.
            let mut t_next = f64::INFINITY;
            for r in &state.running {
                t_next = t_next.min(r.finish);
            }
            if next_arrival < arrivals.len() {
                t_next = t_next.min(arrivals[next_arrival].0);
            }
            if next_cap < cap_changes.len() {
                t_next = t_next.min(cap_changes[next_cap].time);
            }
            if !t_next.is_finite() {
                return Err(SimError::Stalled {
                    time: state.now,
                    ready: state.ready.clone(),
                });
            }
            event_budget += 1;
            if event_budget > max_events {
                return Err(SimError::EventLimitExceeded { limit: max_events });
            }
            state.now = t_next;

            // Apply every event at this instant, in a fixed order:
            // completions (freeing resources and successors), then arrivals,
            // then capacity changes.
            let mut batch: Vec<TraceEvent> = Vec::new();

            let mut done: Vec<RunningJob> = Vec::new();
            state.running.retain(|r| {
                if r.finish <= state.now + EPS {
                    done.push(r.clone());
                    false
                } else {
                    true
                }
            });
            done.sort_by_key(|r| r.job);
            for r in done {
                state.completed[r.job] = true;
                num_completed += 1;
                state.resources.release(&r.alloc);
                for &succ in instance.dag.successors(r.job) {
                    state.remaining_preds[succ] -= 1;
                    if state.remaining_preds[succ] == 0 && state.released[succ] {
                        state.ready.push(succ);
                    }
                }
                batch.push(TraceEvent::JobCompleted {
                    time: state.now,
                    job: r.job,
                    nominal: r.nominal,
                    realized: r.finish - r.start,
                });
            }

            while next_arrival < arrivals.len() && arrivals[next_arrival].0 <= state.now + EPS {
                let (_, j) = arrivals[next_arrival];
                next_arrival += 1;
                state.released[j] = true;
                if state.remaining_preds[j] == 0 && !state.started[j] {
                    state.ready.push(j);
                }
                batch.push(TraceEvent::JobReleased {
                    time: state.now,
                    job: j,
                });
            }

            while next_cap < cap_changes.len() && cap_changes[next_cap].time <= state.now + EPS {
                let change = cap_changes[next_cap].clone();
                next_cap += 1;
                let delta = change.capacity as f64 - state.capacities[change.resource] as f64;
                state.capacities[change.resource] = change.capacity;
                state.resources.shift_capacity(change.resource, delta);
                batch.push(TraceEvent::CapacityChanged {
                    time: state.now,
                    resource: change.resource,
                    capacity: change.capacity,
                });
            }

            state.ready.sort_unstable();
            events.extend(batch.iter().cloned());
            let policy_events = policy.on_events(&state, &batch)?;
            events.extend(policy_events);
        }

        // Assemble the realized schedule and the stress statistics.
        let jobs: Vec<ScheduledJob> = (0..n)
            .map(|j| ScheduledJob {
                job: j,
                start: start[j],
                finish: finish[j],
                alloc: alloc_used[j].clone(),
            })
            .collect();
        let realized = Schedule::new(jobs);
        let slowdowns: Vec<f64> = (0..n)
            .map(|j| (finish[j] - start[j]) / nominal[j])
            .collect();
        let num_reschedules = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Rescheduled { .. }))
            .count();
        let num_realloc_jobs = (0..n).filter(|&j| alloc_used[j] != plan_allocs[j]).count();
        let stats = StressStats {
            planned_makespan: plan.makespan,
            realized_makespan: realized.makespan,
            stretch: if plan.makespan > 0.0 {
                realized.makespan / plan.makespan
            } else {
                1.0
            },
            mean_slowdown: if n > 0 {
                slowdowns.iter().sum::<f64>() / n as f64
            } else {
                1.0
            },
            max_slowdown: if n > 0 {
                slowdowns.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            } else {
                1.0
            },
            num_reschedules,
            num_realloc_jobs,
        };
        Ok(RealizedTrace {
            policy: policy.label().to_string(),
            seed: self.config.seed,
            events,
            realized,
            stats,
        })
    }

    /// Validates and applies one policy-selected start.
    #[allow(clippy::too_many_arguments)]
    fn apply_start(
        &self,
        state: &mut SimState<'_>,
        policy_label: &str,
        j: usize,
        alloc: Allocation,
        perturber: &mut Perturber,
        start: &mut [f64],
        finish: &mut [f64],
        nominal: &mut [f64],
        alloc_used: &mut [Allocation],
        events: &mut Vec<TraceEvent>,
    ) -> Result<(), SimError> {
        let violation = |reason: String| SimError::PolicyViolation {
            policy: policy_label.to_string(),
            job: j,
            reason,
        };
        let pos = state
            .ready
            .binary_search(&j)
            .map_err(|_| violation("job is not ready".to_string()))?;
        state
            .instance
            .system
            .validate_allocation(&alloc)
            .map_err(|e| violation(e.to_string()))?;
        if !state.resources.fits(&alloc) {
            return Err(violation(format!(
                "allocation {alloc} does not fit the current availability"
            )));
        }
        let t_nom = state.instance.jobs[j].spec.time(&alloc);
        if !t_nom.is_finite() || t_nom <= 0.0 {
            return Err(violation(format!(
                "allocation {alloc} has invalid execution time {t_nom}"
            )));
        }
        let t_real = perturber.realize(&alloc, t_nom);
        state.ready.remove(pos);
        state.started[j] = true;
        state.resources.acquire(&alloc);
        start[j] = state.now;
        finish[j] = state.now + t_real;
        nominal[j] = t_nom;
        alloc_used[j] = alloc.clone();
        state.running.push(RunningJob {
            job: j,
            start: state.now,
            finish: state.now + t_real,
            nominal: t_nom,
            alloc: alloc.clone(),
        });
        events.push(TraceEvent::JobStarted {
            time: state.now,
            job: j,
            alloc,
            nominal: t_nom,
        });
        Ok(())
    }
}

/// Checks that `plan` covers every job of `instance` exactly once with a
/// well-formed allocation, and returns it with entry `j` describing job `j`
/// (externally loaded plans may list jobs in any order).
fn normalize_plan(instance: &Instance, plan: &Schedule) -> Result<Schedule, SimError> {
    let n = instance.num_jobs();
    if plan.jobs.len() != n {
        return Err(SimError::InvalidPlan(format!(
            "plan has {} entries for an instance of {n} jobs",
            plan.jobs.len()
        )));
    }
    let mut jobs: Vec<Option<ScheduledJob>> = vec![None; n];
    for sj in &plan.jobs {
        if sj.job >= n {
            return Err(SimError::InvalidPlan(format!(
                "plan references job {} outside the instance",
                sj.job
            )));
        }
        if jobs[sj.job].is_some() {
            return Err(SimError::InvalidPlan(format!(
                "plan schedules job {} twice",
                sj.job
            )));
        }
        instance
            .system
            .validate_allocation(&sj.alloc)
            .map_err(|e| SimError::InvalidPlan(format!("job {}: {e}", sj.job)))?;
        jobs[sj.job] = Some(sj.clone());
    }
    Ok(Schedule::new(
        jobs.into_iter()
            .map(|sj| sj.expect("every job present exactly once"))
            .collect(),
    ))
}
