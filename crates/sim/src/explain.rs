//! Post-hoc causal explainability over a [`RealizedTrace`]: per-job
//! lifecycle spans, critical-path blame attribution, and the paper-style
//! optimality-gap report.
//!
//! The analyzer replays the trace's availability timeline (capacities minus
//! running allocations, shifted by capacity changes) and decomposes every
//! job's `[submitted, completed]` interval into blamed segments that tile it
//! **exactly**:
//!
//! * `[submitted, admitted)` — admission / batching delay;
//! * `[admitted, ready)` — precedence wait (a predecessor still running);
//! * `[ready, started)` — split at every event boundary; each sub-interval
//!   is charged to the smallest resource type whose availability fell short
//!   of the job's request, or (when the job would have fit) to replan churn
//!   if a reschedule intervened since readiness, else to the placement
//!   policy;
//! * `[started, completed]` — execution.
//!
//! The realized critical path starts at the makespan-determining job and
//! walks back through the predecessor that bound each job's readiness; the
//! per-step segments chain at the predecessor's finish, so their summed
//! durations telescope to exactly the makespan
//! ([`CriticalPathBlame::sums_to_makespan`]). The gap report compares the
//! realized makespan against the combinatorial lower bounds of
//! `mrls_core::bounds`.
//!
//! Everything is virtual time, so two same-seed runs produce byte-identical
//! reports — the standing span-determinism invariant.

use crate::trace::{RealizedTrace, TraceEvent};
use mrls_core::bounds::combinatorial_lower_bound;
use mrls_core::EPS;
use mrls_model::Instance;
use mrls_obs::blame::{BlameTotals, CriticalPathBlame, CriticalPathStep};
use mrls_obs::span::{Blame, JobSpan, SpanSegment};
use serde::{Deserialize, Serialize};

/// Realized makespan versus the combinatorial lower bounds — the ratio the
/// paper's experiments report (`T / LB`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GapReport {
    /// The realized makespan.
    pub realized_makespan: f64,
    /// Critical path with every job at its fastest allocation.
    pub critical_path_bound: f64,
    /// Sum over jobs of the minimum average area.
    pub area_bound: f64,
    /// `max_j min_p max(t_j(p), a_j(p))`.
    pub single_job_bound: f64,
    /// The best (largest) lower bound.
    pub best_bound: f64,
    /// `realized_makespan / best_bound` (0.0 for a degenerate zero bound).
    pub ratio: f64,
}

/// The full explainability report of one run: every job's blamed lifecycle
/// span, the aggregate blame totals, the realized critical path with its
/// makespan decomposition, and the optimality-gap report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainReport {
    /// Label of the policy that produced the run.
    pub policy: String,
    /// Perturbation seed of the run.
    pub seed: u64,
    /// The realized makespan.
    pub makespan: f64,
    /// Per-job lifecycle spans, indexed by job.
    pub jobs: Vec<JobSpan>,
    /// Blame totals summed over every job's segments.
    pub totals: BlameTotals,
    /// The realized critical path and its exact makespan decomposition.
    pub critical_path: CriticalPathBlame,
    /// Realized makespan versus the lower bounds.
    pub gap: GapReport,
}

impl ExplainReport {
    /// Serialises the report to pretty JSON (deterministic: sorted blame
    /// keys, virtual-time values only).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports are always serialisable")
    }

    /// Parses a report from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Checks the two exactness identities every report must satisfy: each
    /// job's segments tile `[submitted, completed]` and the critical-path
    /// blame sums to the makespan, both within `eps`.
    pub fn check_identities(&self, eps: f64) -> Result<(), String> {
        for span in &self.jobs {
            if !span.milestones_ordered() {
                return Err(format!("job {}: milestones out of order", span.job));
            }
            if !span.tiles_exactly(eps) {
                return Err(format!(
                    "job {}: segments do not tile [submitted, completed]",
                    span.job
                ));
            }
        }
        if !self.critical_path.sums_to_makespan(eps) {
            return Err(format!(
                "critical-path blame sums to {} but the makespan is {}",
                self.critical_path.totals.total(),
                self.critical_path.makespan
            ));
        }
        Ok(())
    }
}

/// Piecewise-constant availability timeline replayed from the trace: one
/// breakpoint per distinct event time, holding the per-type availability
/// *after* every event at that instant, plus the reschedule instants.
struct Timeline {
    /// Breakpoint times, ascending.
    times: Vec<f64>,
    /// Availability vector in force from `times[i]` until `times[i + 1]`.
    avail: Vec<Vec<f64>>,
    /// Times of `Rescheduled` events, ascending.
    reschedules: Vec<f64>,
}

impl Timeline {
    fn replay(trace: &RealizedTrace, instance: &Instance) -> Timeline {
        let d = instance.num_resource_types();
        let n = instance.num_jobs();
        let mut avail: Vec<f64> = instance
            .system
            .capacities()
            .iter()
            .map(|&c| c as f64)
            .collect();
        let mut capacities = avail.clone();
        let mut times = vec![0.0];
        let mut states = vec![avail.clone()];
        let mut reschedules = Vec::new();
        // The allocation each job's *latest* attempt started with: a failed
        // attempt must release exactly what it acquired, which may differ
        // from the realized (final-attempt) allocation.
        let mut last_alloc: Vec<Option<mrls_model::Allocation>> = vec![None; n];
        let push = |t: f64, avail: &[f64], times: &mut Vec<f64>, states: &mut Vec<Vec<f64>>| {
            if (t - *times.last().expect("seeded with t=0")).abs() <= EPS {
                *states.last_mut().expect("seeded") = avail.to_vec();
            } else {
                times.push(t);
                states.push(avail.to_vec());
            }
        };
        for ev in &trace.events {
            match ev {
                TraceEvent::JobStarted {
                    time, job, alloc, ..
                } => {
                    for t in 0..d.min(alloc.dim()) {
                        avail[t] -= alloc[t] as f64;
                    }
                    if *job < n {
                        last_alloc[*job] = Some(alloc.clone());
                    }
                    push(*time, &avail, &mut times, &mut states);
                }
                TraceEvent::JobCompleted { time, job, .. } => {
                    let alloc = &trace.realized.jobs[*job].alloc;
                    for t in 0..d.min(alloc.dim()) {
                        avail[t] += alloc[t] as f64;
                    }
                    push(*time, &avail, &mut times, &mut states);
                }
                TraceEvent::CapacityChanged {
                    time,
                    resource,
                    capacity,
                } => {
                    if *resource < d {
                        let delta = *capacity as f64 - capacities[*resource];
                        capacities[*resource] = *capacity as f64;
                        avail[*resource] += delta;
                    }
                    push(*time, &avail, &mut times, &mut states);
                }
                TraceEvent::Rescheduled { time, .. } => reschedules.push(*time),
                // A failed attempt releases what it acquired at start; a
                // cascade abandonment (attempt 0) never held anything.
                TraceEvent::JobFailed { time, job, .. } => {
                    if let Some(alloc) = (*job < n).then(|| last_alloc[*job].take()).flatten() {
                        for t in 0..d.min(alloc.dim()) {
                            avail[t] += alloc[t] as f64;
                        }
                        push(*time, &avail, &mut times, &mut states);
                    }
                }
                TraceEvent::JobReleased { .. } | TraceEvent::JobRetried { .. } => {}
            }
        }
        Timeline {
            times,
            avail: states,
            reschedules,
        }
    }

    /// Index of the breakpoint in force at time `t` (the last one `<= t`,
    /// within tolerance).
    fn index_at(&self, t: f64) -> usize {
        match self
            .times
            .binary_search_by(|probe| probe.partial_cmp(&(t + EPS)).expect("finite times"))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// `true` iff a reschedule happened in `(after, until]`.
    fn rescheduled_between(&self, after: f64, until: f64) -> bool {
        self.reschedules
            .iter()
            .any(|&t| t > after + EPS && t <= until + EPS)
    }
}

/// Decomposes `[ready, started)` for one job into blamed sub-intervals:
/// each event boundary splits the wait, and each piece is charged to the
/// smallest resource type whose availability fell short of the request — or
/// to replan churn / the policy when the job would have fit.
fn decompose_resource_wait(
    timeline: &Timeline,
    alloc: &mrls_model::Allocation,
    ready: f64,
    started: f64,
    out: &mut Vec<SpanSegment>,
) {
    if started - ready <= EPS {
        return;
    }
    let mut cursor = ready;
    let mut idx = timeline.index_at(ready);
    while cursor < started - EPS {
        let next_break = timeline
            .times
            .get(idx + 1)
            .copied()
            .unwrap_or(f64::INFINITY);
        let until = next_break.min(started);
        let avail = &timeline.avail[idx];
        let blocking =
            (0..alloc.dim().min(avail.len())).find(|&t| alloc[t] as f64 > avail[t] + EPS);
        let blame = match blocking {
            Some(resource) => Blame::Resource { resource },
            None if timeline.rescheduled_between(ready, cursor) => Blame::Replan,
            None => Blame::Policy,
        };
        push_segment(out, cursor, until, blame);
        cursor = until;
        idx += 1;
    }
}

/// Per-job retry-churn intervals: each failed attempt contributes
/// `[attempt start, re-eligibility)` (or `[attempt start, failure)` when the
/// job was abandoned instead of retried). Built from the event log; empty
/// for failure-free runs.
fn churn_intervals(trace: &RealizedTrace, n: usize) -> Vec<Vec<(f64, f64)>> {
    let mut open = vec![f64::NAN; n];
    let mut churn: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n];
    for ev in &trace.events {
        match ev {
            TraceEvent::JobStarted { time, job, .. } if *job < n => {
                open[*job] = *time;
            }
            TraceEvent::JobFailed { time, job, .. } if *job < n && open[*job].is_finite() => {
                churn[*job].push((open[*job], *time));
                open[*job] = f64::NAN;
            }
            TraceEvent::JobRetried { time, job, .. } if *job < n => {
                // The backoff up to re-eligibility is part of the churn.
                if let Some(last) = churn[*job].last_mut() {
                    last.1 = *time;
                }
            }
            _ => {}
        }
    }
    churn
}

/// Pushes `[from, until)` as precedence wait, carving out the retry-churn
/// intervals (failed attempts plus their backoff) as [`Blame::Retry`]. With
/// no churn this is exactly one precedence segment.
fn push_wait_with_retry(out: &mut Vec<SpanSegment>, from: f64, until: f64, churn: &[(f64, f64)]) {
    let mut cursor = from;
    for &(s, e) in churn {
        if e <= cursor + EPS {
            continue;
        }
        if s >= until - EPS {
            break;
        }
        let s_c = s.max(cursor);
        let e_c = e.min(until);
        push_segment(out, cursor, s_c, Blame::Precedence);
        push_segment(out, s_c, e_c, Blame::Retry);
        cursor = e_c;
    }
    push_segment(out, cursor, until, Blame::Precedence);
}

/// Appends `[from, until)` blamed `blame`, merging with an adjacent previous
/// segment of the same blame and skipping zero-width pieces.
fn push_segment(out: &mut Vec<SpanSegment>, from: f64, until: f64, blame: Blame) {
    if until - from <= 0.0 {
        return;
    }
    if let Some(last) = out.last_mut() {
        if last.blame == blame && (last.until - from).abs() <= EPS {
            last.until = until;
            return;
        }
    }
    out.push(SpanSegment { from, until, blame });
}

/// Builds the explainability report for a completed run.
///
/// * `submit_times` — per-job submission (ingest) virtual times; `None`
///   means each job was submitted when it was admitted (offline runs).
/// * `ready_times` — engine-recorded readiness times
///   ([`crate::SimRun::ready_times`]); non-finite entries (and `None`) fall
///   back to the derived value `max(admitted, max predecessor finish)`.
///
/// Fails if the trace has unfinished jobs (NaN starts/finishes) or the
/// instance's job profiles cannot be built.
pub fn explain(
    trace: &RealizedTrace,
    instance: &Instance,
    submit_times: Option<&[f64]>,
    ready_times: Option<&[f64]>,
) -> Result<ExplainReport, String> {
    let n = instance.num_jobs();
    if trace.realized.jobs.len() != n {
        return Err(format!(
            "trace covers {} jobs but the instance has {n}",
            trace.realized.jobs.len()
        ));
    }
    for sj in &trace.realized.jobs {
        if !sj.start.is_finite() || !sj.finish.is_finite() {
            return Err(format!(
                "job {} has no realized start/finish — explain requires a completed run",
                sj.job
            ));
        }
    }

    // Admission times: the `JobReleased` event, or 0.0 for jobs released at
    // the start (the engine does not log time-zero releases).
    let mut admitted = vec![0.0f64; n];
    for ev in &trace.events {
        if let TraceEvent::JobReleased { time, job } = ev {
            if *job < n {
                admitted[*job] = *time;
            }
        }
    }

    let timeline = Timeline::replay(trace, instance);
    let churn = churn_intervals(trace, n);
    let starts: Vec<f64> = trace.realized.jobs.iter().map(|j| j.start).collect();
    let finishes: Vec<f64> = trace.realized.jobs.iter().map(|j| j.finish).collect();

    // Readiness: engine-recorded when finite, else derived from the realized
    // predecessor finishes (the two agree — the explain proptests pin it).
    let ready: Vec<f64> = (0..n)
        .map(|j| {
            if let Some(rt) = ready_times.and_then(|r| r.get(j)).filter(|t| t.is_finite()) {
                return *rt;
            }
            instance
                .dag
                .predecessors(j)
                .iter()
                .map(|&p| finishes[p])
                .fold(admitted[j], f64::max)
        })
        .collect();

    let mut jobs = Vec::with_capacity(n);
    let mut totals = BlameTotals::new();
    for j in 0..n {
        let submitted = submit_times
            .and_then(|s| s.get(j))
            .copied()
            .unwrap_or(admitted[j])
            .min(admitted[j]);
        let mut segments = Vec::new();
        push_segment(&mut segments, submitted, admitted[j], Blame::Admission);
        push_wait_with_retry(&mut segments, admitted[j], ready[j], &churn[j]);
        decompose_resource_wait(
            &timeline,
            &trace.realized.jobs[j].alloc,
            ready[j],
            starts[j],
            &mut segments,
        );
        push_segment(&mut segments, starts[j], finishes[j], Blame::Execution);
        totals.add_segments(&segments);
        jobs.push(JobSpan {
            job: j,
            submitted,
            admitted: admitted[j],
            ready: ready[j],
            started: starts[j],
            completed: finishes[j],
            segments,
        });
    }

    let allocs: Vec<&mrls_model::Allocation> =
        trace.realized.jobs.iter().map(|j| &j.alloc).collect();
    let critical_path = critical_path_blame(&jobs, &allocs, instance, &timeline, &churn);

    let makespan = trace.realized.makespan;
    let profiles = instance
        .profiles()
        .map_err(|e| format!("cannot build job profiles for the gap report: {e}"))?;
    let bounds = combinatorial_lower_bound(instance, &profiles);
    let gap = GapReport {
        realized_makespan: makespan,
        critical_path_bound: bounds.critical_path_bound,
        area_bound: bounds.area_bound,
        single_job_bound: bounds.single_job_bound,
        best_bound: bounds.best,
        ratio: if bounds.best > 0.0 {
            makespan / bounds.best
        } else {
            0.0
        },
    };

    Ok(ExplainReport {
        policy: trace.policy.clone(),
        seed: trace.seed,
        makespan,
        jobs,
        totals,
        critical_path,
        gap,
    })
}

/// Walks back from the makespan-determining job through the predecessor
/// that bound each job's readiness; each step contributes the segments of
/// `[chain point, finish]`, telescoping to exactly the makespan.
fn critical_path_blame(
    jobs: &[JobSpan],
    allocs: &[&mrls_model::Allocation],
    instance: &Instance,
    timeline: &Timeline,
    churn: &[Vec<(f64, f64)>],
) -> CriticalPathBlame {
    if jobs.is_empty() {
        return CriticalPathBlame {
            steps: Vec::new(),
            totals: BlameTotals::new(),
            makespan: 0.0,
        };
    }
    // Makespan-determining job: latest finish, smallest index on ties.
    let tail = (0..jobs.len())
        .max_by(|&a, &b| {
            jobs[a]
                .completed
                .partial_cmp(&jobs[b].completed)
                .expect("finite finishes")
                .then(b.cmp(&a))
        })
        .expect("non-empty");
    let makespan = jobs[tail].completed;

    // Walk back while readiness was predecessor-bound.
    let mut chain = vec![tail];
    let mut j = tail;
    loop {
        let span = &jobs[j];
        if span.ready <= span.admitted + EPS {
            break; // readiness was admission-bound: the chain head.
        }
        let preds = instance.dag.predecessors(j);
        let Some(&p) = preds.iter().min_by(|&&a, &&b| {
            jobs[b]
                .completed
                .partial_cmp(&jobs[a].completed)
                .expect("finite finishes")
                .then(a.cmp(&b))
        }) else {
            break;
        };
        chain.push(p);
        j = p;
    }
    chain.reverse();

    let mut steps = Vec::with_capacity(chain.len());
    let mut totals = BlameTotals::new();
    let mut from = 0.0f64;
    for (i, &j) in chain.iter().enumerate() {
        let span = &jobs[j];
        let mut segments = Vec::new();
        if i == 0 {
            // The head's step reaches back to time zero: pre-submission is
            // arrival, then its own admission/precedence/wait segments.
            push_segment(&mut segments, 0.0, span.submitted, Blame::Arrival);
            push_segment(
                &mut segments,
                span.submitted,
                span.admitted,
                Blame::Admission,
            );
            push_wait_with_retry(&mut segments, span.admitted, span.ready, &churn[j]);
        } else {
            // Chained at the predecessor's finish, which is what made this
            // job ready (within tolerance); any residue between the chain
            // point and readiness is still precedence wait — minus any retry
            // churn of the job's own failed attempts.
            push_wait_with_retry(&mut segments, from, span.ready, &churn[j]);
        }
        decompose_resource_wait(timeline, allocs[j], span.ready, span.started, &mut segments);
        push_segment(
            &mut segments,
            span.started,
            span.completed,
            Blame::Execution,
        );
        totals.add_segments(&segments);
        steps.push(CriticalPathStep {
            job: j,
            from,
            finish: span.completed,
            segments,
        });
        from = span.completed;
    }

    CriticalPathBlame {
        steps,
        totals,
        makespan,
    }
}

/// Renders the report as Chrome trace-event JSON with blame-annotated spans:
/// each job's realized execution is a complete span carrying its blame
/// decomposition as `args` (shown in the viewer's detail pane), packed
/// greedily onto lanes; critical-path jobs are additionally marked.
pub fn to_chrome_trace_with_blame(trace: &RealizedTrace, report: &ExplainReport) -> String {
    fn us(t: f64) -> u64 {
        (t * 1e6).round().max(0.0) as u64
    }
    let mut out = mrls_obs::chrome::ChromeTrace::new();
    out.process_name(0, &format!("mrls explain ({})", report.policy));
    out.process_name(1, "mrls jobs (blame-annotated)");

    let on_path: std::collections::BTreeSet<usize> =
        report.critical_path.steps.iter().map(|s| s.job).collect();

    let mut spans: Vec<_> = trace
        .realized
        .jobs
        .iter()
        .filter(|s| s.start.is_finite() && s.finish.is_finite())
        .collect();
    spans.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.job.cmp(&b.job))
    });
    let mut lane_free: Vec<f64> = Vec::new();
    for s in spans {
        let lane = match lane_free.iter().position(|&f| f <= s.start) {
            Some(k) => k,
            None => {
                lane_free.push(f64::NEG_INFINITY);
                lane_free.len() - 1
            }
        };
        lane_free[lane] = s.finish;
        let span = &report.jobs[s.job];
        let mut args: Vec<(&str, String)> = vec![("wait", format!("{}", span.wait()))];
        // One arg per blame category the job actually accrued, in stable
        // (sorted) order; the viewer shows them in the detail pane.
        let mut per_job = BlameTotals::new();
        per_job.add_segments(&span.segments);
        let rendered: Vec<(String, String)> = per_job
            .by_category
            .iter()
            .map(|(k, v)| (format!("blame.{k}"), format!("{v}")))
            .collect();
        for (k, v) in &rendered {
            args.push((k.as_str(), v.clone()));
        }
        if on_path.contains(&s.job) {
            args.push(("critical_path", "true".to_string()));
        }
        out.complete_with_args(
            &format!("job {} {}", s.job, s.alloc),
            "job",
            1,
            lane as u64,
            us(s.start),
            us(s.finish - s.start).max(1),
            &args,
        );
    }
    for (lane, _) in lane_free.iter().enumerate() {
        out.thread_name(1, lane as u64, &format!("lane {lane}"));
    }
    for ev in &trace.events {
        if let TraceEvent::Rescheduled {
            time,
            trigger,
            jobs,
        } = ev
        {
            out.instant(
                &format!("reschedule ({trigger}, {jobs} jobs)"),
                "reschedule",
                0,
                0,
                us(*time),
            );
        }
    }
    out.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{normalize_plan, PerturbationModel, PolicyKind, Scenario, SimConfig, Simulator};
    use mrls_core::{Schedule, ScheduledJob};
    use mrls_dag::Dag;
    use mrls_model::{Allocation, ExecTimeSpec, MoldableJob, SystemConfig};

    /// Two independent unit-time jobs that each need the whole machine: the
    /// second must wait exactly one unit on resource 0.
    fn contended_instance() -> (Instance, Schedule) {
        let system = SystemConfig::new(vec![2]).unwrap();
        let dag = Dag::independent(2);
        let jobs = vec![
            MoldableJob::new(0, ExecTimeSpec::Constant { time: 1.0 }),
            MoldableJob::new(1, ExecTimeSpec::Constant { time: 1.0 }),
        ];
        let instance = Instance::new(system, dag, jobs).unwrap();
        let plan = Schedule::new(vec![
            ScheduledJob {
                job: 0,
                start: 0.0,
                finish: 1.0,
                alloc: Allocation::new(vec![2]),
            },
            ScheduledJob {
                job: 1,
                start: 1.0,
                finish: 2.0,
                alloc: Allocation::new(vec![2]),
            },
        ]);
        (instance, plan)
    }

    fn offline_sim() -> Simulator {
        Simulator::new(SimConfig {
            seed: 3,
            perturbation: PerturbationModel::None,
            scenario: Scenario::offline(),
            max_events: None,
        })
    }

    fn run_and_explain(instance: &Instance, plan: &Schedule) -> (RealizedTrace, ExplainReport) {
        let plan = normalize_plan(instance, plan).unwrap();
        let sim = offline_sim();
        let (mut run, mut source) = sim.start(instance, &plan).unwrap();
        let mut policy = PolicyKind::Static.build();
        run.drive(policy.as_mut(), &mut source).unwrap();
        let ready = run.ready_times().to_vec();
        let trace = run.into_trace("static");
        let report = explain(&trace, instance, None, Some(&ready)).unwrap();
        (trace, report)
    }

    #[test]
    fn resource_wait_is_charged_to_the_binding_type() {
        let (instance, plan) = contended_instance();
        let (_, report) = run_and_explain(&instance, &plan);
        report.check_identities(1e-9).unwrap();

        let j1 = &report.jobs[1];
        assert_eq!(j1.ready, 0.0);
        assert!((j1.started - 1.0).abs() < 1e-9);
        assert_eq!(
            j1.segments[0].blame,
            Blame::Resource { resource: 0 },
            "the wait is charged to the exhausted type: {:?}",
            j1.segments
        );
        assert!((report.totals.get("resource[0]") - 1.0).abs() < 1e-9);
        assert!((report.totals.get("execution") - 2.0).abs() < 1e-9);

        // The critical path is the makespan-determining job alone (readiness
        // was admission-bound), decomposing 2.0 = 1.0 wait + 1.0 execution.
        assert!(report.critical_path.sums_to_makespan(1e-9));
        assert_eq!(report.critical_path.steps.len(), 1);
        assert_eq!(report.critical_path.steps[0].job, 1);
        assert!((report.critical_path.totals.get("resource[0]") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn precedence_chain_walks_back_through_the_binding_predecessor() {
        let system = SystemConfig::new(vec![4]).unwrap();
        let dag = Dag::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let jobs = vec![
            MoldableJob::new(0, ExecTimeSpec::Constant { time: 1.0 }),
            MoldableJob::new(1, ExecTimeSpec::Constant { time: 2.0 }),
            MoldableJob::new(2, ExecTimeSpec::Constant { time: 1.0 }),
        ];
        let instance = Instance::new(system, dag, jobs).unwrap();
        let alloc = || Allocation::new(vec![1]);
        let plan = Schedule::new(vec![
            ScheduledJob {
                job: 0,
                start: 0.0,
                finish: 1.0,
                alloc: alloc(),
            },
            ScheduledJob {
                job: 1,
                start: 0.0,
                finish: 2.0,
                alloc: alloc(),
            },
            ScheduledJob {
                job: 2,
                start: 2.0,
                finish: 3.0,
                alloc: alloc(),
            },
        ]);
        let (_, report) = run_and_explain(&instance, &plan);
        report.check_identities(1e-9).unwrap();

        // Job 2 became ready when job 1 (the slower predecessor) finished.
        assert!((report.jobs[2].ready - 2.0).abs() < 1e-9);
        let path: Vec<usize> = report.critical_path.steps.iter().map(|s| s.job).collect();
        assert_eq!(path, vec![1, 2], "walks back through the binding pred");
        assert!(report.critical_path.sums_to_makespan(1e-9));
        assert!((report.critical_path.totals.get("execution") - 3.0).abs() < 1e-9);
        // The gap report brackets: realized equals the critical-path bound
        // here (chain 1 -> 2 at fastest speed, no perturbation).
        assert!(report.gap.best_bound <= report.makespan + 1e-9);
        assert!(report.gap.ratio >= 1.0 - 1e-9);
    }

    #[test]
    fn derived_readiness_matches_the_engine_record() {
        let (instance, plan) = contended_instance();
        let plan = normalize_plan(&instance, &plan).unwrap();
        let sim = offline_sim();
        let (mut run, mut source) = sim.start(&instance, &plan).unwrap();
        let mut policy = PolicyKind::Static.build();
        run.drive(policy.as_mut(), &mut source).unwrap();
        let engine_ready = run.ready_times().to_vec();
        let trace = run.into_trace("static");
        let with_engine = explain(&trace, &instance, None, Some(&engine_ready)).unwrap();
        let derived = explain(&trace, &instance, None, None).unwrap();
        assert_eq!(with_engine.to_json(), derived.to_json());
    }

    #[test]
    fn report_json_roundtrip_is_exact_and_deterministic() {
        let (instance, plan) = contended_instance();
        let (_, a) = run_and_explain(&instance, &plan);
        let (_, b) = run_and_explain(&instance, &plan);
        assert_eq!(a.to_json(), b.to_json(), "same-seed reports byte-identical");
        let back = ExplainReport::from_json(&a.to_json()).unwrap();
        assert_eq!(a, back);
        assert_eq!(a.to_json(), back.to_json());
    }

    #[test]
    fn blame_annotated_chrome_export_validates() {
        let (instance, plan) = contended_instance();
        let (trace, report) = run_and_explain(&instance, &plan);
        let text = to_chrome_trace_with_blame(&trace, &report);
        mrls_obs::chrome::validate(&text).expect("blame-annotated export is valid trace JSON");
        assert!(text.contains("\"blame.resource[0]\":\"1\""), "{text}");
        assert!(text.contains("\"critical_path\":\"true\""));
    }
}
