//! Blame-decomposition identity proptests (the span-determinism invariant):
//! on random perturbed DAG runs, every job's wait segments plus execution
//! must tile its `[submitted, completed]` span **exactly**, the critical-path
//! blame must telescope to the realized makespan, and the analyzer's derived
//! readiness times must agree with the engine's recorded ones.

use mrls_core::MrlsScheduler;
use mrls_sim::{
    explain, normalize_plan, PerturbationModel, PolicyKind, RunStatus, Scenario, SimConfig,
    Simulator,
};
use mrls_workload::{ArrivalRecipe, InstanceRecipe};
use proptest::prelude::*;

const EPS: f64 = 1e-6;

proptest! {
    // Fixed seed: the vendored runner derives every case from `seed + case`,
    // so a failure replays exactly.
    #![proptest_config(ProptestConfig { cases: 32, seed: 0xb1a_3ed })]

    #[test]
    fn blame_decomposition_tiles_and_telescopes(
        seed in 0u64..1_000_000,
        n in 3usize..28,
        layers in 2usize..5,
        sigma in 0.0f64..0.5,
        policy_which in 0usize..3,
        online in proptest::bool::ANY,
    ) {
        let instance = InstanceRecipe::default_layered(n, 2, 8)
            .generate(seed)
            .instance;
        let plan = MrlsScheduler::with_defaults()
            .schedule(&instance)
            .map_err(|e| TestCaseError::reject(format!("planning failed: {e}")))?
            .schedule;
        let plan = normalize_plan(&instance, &plan).unwrap();
        let _ = layers;

        // Half the cases run online: staggered arrivals exercise the
        // admission milestone and release-driven readiness.
        let scenario = if online {
            let release = ArrivalRecipe::UniformWindow {
                horizon: (plan.makespan * 0.6).max(1.0),
            }
            .release_times(n, &mut mrls_workload::rng_from_seed(seed ^ 0x9e37));
            Scenario::offline().with_release_times(release)
        } else {
            Scenario::offline()
        };
        let sim = Simulator::new(SimConfig {
            seed,
            perturbation: PerturbationModel::Multiplicative { sigma },
            scenario,
            max_events: None,
        });
        let kind = match policy_which {
            0 => PolicyKind::Static,
            1 => PolicyKind::ReactiveList,
            _ => PolicyKind::FullReschedule,
        };

        let (mut run, mut source) = sim.start(&instance, &plan).unwrap();
        let mut policy = kind.build();
        match run.drive(policy.as_mut(), &mut source) {
            Ok(RunStatus::Complete) => {}
            other => {
                return Err(TestCaseError::reject(format!(
                    "run did not complete: {other:?}"
                )));
            }
        }
        let engine_ready = run.ready_times().to_vec();
        let trace = run.into_trace(kind.label());

        let report = explain(&trace, &instance, None, Some(&engine_ready))
            .map_err(TestCaseError::fail)?;

        // Identity 1: per-job wait segments + execution exactly tile the
        // submit -> completion span. Identity 2: critical-path blame sums to
        // the realized makespan.
        report.check_identities(EPS).map_err(TestCaseError::fail)?;
        prop_assert!(
            report.critical_path.sums_to_makespan(EPS),
            "critical path sums to {} but makespan is {}",
            report.critical_path.totals.total(),
            report.critical_path.makespan
        );

        // Identity 3: the analyzer's derived readiness (max of admission and
        // predecessor finishes) agrees with the engine's recorded times.
        let derived = explain(&trace, &instance, None, None).map_err(TestCaseError::fail)?;
        for (j, (a, b)) in report.jobs.iter().zip(derived.jobs.iter()).enumerate() {
            prop_assert!(
                (a.ready - b.ready).abs() <= EPS,
                "job {j}: engine readiness {} vs derived {}",
                a.ready,
                b.ready
            );
        }
        derived.check_identities(EPS).map_err(TestCaseError::fail)?;

        // Aggregate sanity: total blame equals the summed job lifetimes, and
        // the gap report's bounds bracket the nominal makespan on
        // unperturbed runs.
        let lifetimes: f64 = report.jobs.iter().map(|s| s.total()).sum();
        prop_assert!(
            (report.totals.total() - lifetimes).abs() <= EPS * (n as f64).max(1.0),
            "blame totals {} vs summed lifetimes {lifetimes}",
            report.totals.total()
        );
        if sigma == 0.0 && !online {
            prop_assert!(
                report.gap.best_bound <= report.makespan + EPS,
                "lower bound {} exceeds realized makespan {}",
                report.gap.best_bound,
                report.makespan
            );
        }
    }

    #[test]
    fn same_seed_reports_are_byte_identical(
        seed in 0u64..1_000_000,
        n in 3usize..20,
    ) {
        let instance = InstanceRecipe::default_layered(n, 2, 8)
            .generate(seed)
            .instance;
        let plan = MrlsScheduler::with_defaults()
            .schedule(&instance)
            .map_err(|e| TestCaseError::reject(format!("planning failed: {e}")))?
            .schedule;
        let plan = normalize_plan(&instance, &plan).unwrap();
        let run_once = || {
            let sim = Simulator::new(SimConfig {
                seed,
                perturbation: PerturbationModel::Multiplicative { sigma: 0.3 },
                scenario: Scenario::offline(),
                max_events: None,
            });
            let (mut run, mut source) = sim.start(&instance, &plan).unwrap();
            let mut policy = PolicyKind::ReactiveList.build();
            let status = run.drive(policy.as_mut(), &mut source).unwrap();
            assert_eq!(status, RunStatus::Complete);
            let ready = run.ready_times().to_vec();
            let trace = run.into_trace("reactive-list");
            explain(&trace, &instance, None, Some(&ready)).unwrap().to_json()
        };
        prop_assert_eq!(run_once(), run_once());
    }
}
