//! End-to-end properties of the execution runtime, mirroring the acceptance
//! criteria: zero-noise replays are exact for every policy, noisy runs stay
//! feasible, same-seed runs are byte-identical, and reacting beats sliding on
//! the benched workloads.

use mrls_analysis::{validate_schedule_with, ValidationOptions};
use mrls_core::{MrlsScheduler, Schedule};
use mrls_model::Instance;
use mrls_sim::{
    PerturbationModel, PolicyKind, RealizedTrace, Scenario, SimConfig, SimError, Simulator,
};
use mrls_workload::{ArrivalRecipe, CapacityDropRecipe, DagRecipe, InstanceRecipe, SystemRecipe};

fn layered(n: usize, seed: u64) -> Instance {
    InstanceRecipe::default_layered(n, 2, 8)
        .generate(seed)
        .instance
}

fn cholesky(tiles: usize, seed: u64) -> Instance {
    let recipe = InstanceRecipe {
        system: SystemRecipe::Uniform { d: 2, p: 8 },
        dag: DagRecipe::Cholesky { tiles },
        jobs: mrls_workload::JobRecipe::default_mixed(),
    };
    recipe.generate(seed).instance
}

fn plan(instance: &Instance) -> Schedule {
    MrlsScheduler::with_defaults()
        .schedule(instance)
        .expect("planning must succeed")
        .schedule
}

fn run(
    instance: &Instance,
    planned: &Schedule,
    kind: PolicyKind,
    config: SimConfig,
) -> Result<RealizedTrace, SimError> {
    Simulator::new(config).run(instance, planned, kind.build().as_mut())
}

fn assert_feasible(instance: &Instance, trace: &RealizedTrace) {
    let report = validate_schedule_with(
        instance,
        &trace.realized,
        ValidationOptions {
            check_durations: false,
        },
    );
    assert!(
        report.is_valid(),
        "policy {} produced an infeasible realized schedule: {report:?}",
        trace.policy
    );
}

#[test]
fn zero_noise_replay_is_exact_for_every_policy() {
    // Property: with no noise, no arrivals and no capacity changes, every
    // policy realizes exactly the planned makespan, across DAG shapes and
    // seeds.
    let instances: Vec<Instance> = (0..4)
        .map(|s| layered(18, s))
        .chain((0..2).map(|s| cholesky(3, s)))
        .collect();
    for instance in &instances {
        let planned = plan(instance);
        for kind in PolicyKind::all() {
            let trace = run(instance, &planned, kind, SimConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
            assert!(
                (trace.stats.realized_makespan - planned.makespan).abs() < 1e-9,
                "{}: realized {} != planned {}",
                kind.label(),
                trace.stats.realized_makespan,
                planned.makespan
            );
            assert!((trace.stats.stretch - 1.0).abs() < 1e-9);
            assert_eq!(trace.stats.num_realloc_jobs, 0);
            assert_feasible(instance, &trace);
            // The realized schedule *is* the plan: same starts everywhere.
            for (r, p) in trace
                .realized
                .jobs
                .iter()
                .zip((0..instance.num_jobs()).map(|j| {
                    planned
                        .jobs
                        .iter()
                        .find(|sj| sj.job == j)
                        .expect("plan covers every job")
                }))
            {
                assert!(
                    (r.start - p.start).abs() < 1e-9,
                    "{}: job {} started at {} instead of {}",
                    kind.label(),
                    r.job,
                    r.start,
                    p.start
                );
            }
        }
    }
}

#[test]
fn same_seed_traces_are_byte_identical_and_seeds_matter() {
    let instance = layered(24, 11);
    let planned = plan(&instance);
    let noisy = |seed| SimConfig {
        seed,
        perturbation: PerturbationModel::Multiplicative { sigma: 0.4 },
        scenario: Scenario::offline(),
        max_events: None,
    };
    for kind in PolicyKind::all() {
        let a = run(&instance, &planned, kind, noisy(5)).unwrap();
        let b = run(&instance, &planned, kind, noisy(5)).unwrap();
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{} not deterministic",
            kind.label()
        );
        let c = run(&instance, &planned, kind, noisy(6)).unwrap();
        assert_ne!(
            a.to_json(),
            c.to_json(),
            "{} ignored the seed",
            kind.label()
        );
        // And the exported trace round-trips losslessly.
        let back = RealizedTrace::from_json(&a.to_json()).unwrap();
        assert_eq!(a, back);
    }
}

#[test]
fn noisy_runs_are_feasible_and_reacting_beats_sliding() {
    // Under multiplicative noise all three policies must stay feasible, and
    // re-running the list phase (ReactiveList) must not lose to blind replay
    // (Static) on average over the benched layered/cholesky workloads.
    let mut static_total = 0.0;
    let mut reactive_total = 0.0;
    let mut runs = 0usize;
    for (wl, instance) in (0..3)
        .map(|s| ("layered", layered(20, s)))
        .chain((0..2).map(|s| ("cholesky", cholesky(3, s))))
    {
        let planned = plan(&instance);
        for sim_seed in 0..3 {
            let config = |seed| SimConfig {
                seed,
                perturbation: PerturbationModel::Multiplicative { sigma: 0.35 },
                scenario: Scenario::offline(),
                max_events: None,
            };
            let mut makespans = Vec::new();
            for kind in PolicyKind::all() {
                let trace = run(&instance, &planned, kind, config(sim_seed))
                    .unwrap_or_else(|e| panic!("{wl}/{}: {e}", kind.label()));
                assert_feasible(&instance, &trace);
                assert!(trace.stats.realized_makespan > 0.0);
                makespans.push(trace.stats.realized_makespan);
            }
            static_total += makespans[0];
            reactive_total += makespans[1];
            runs += 1;
        }
    }
    assert!(runs > 0);
    assert!(
        reactive_total <= static_total + 1e-9,
        "reactive-list mean {} worse than static mean {}",
        reactive_total / runs as f64,
        static_total / runs as f64
    );
}

#[test]
fn heavy_tail_and_slowdown_models_stay_feasible() {
    let instance = layered(16, 2);
    let planned = plan(&instance);
    let models = [
        PerturbationModel::HeavyTail {
            prob: 0.2,
            alpha: 1.2,
            cap: 8.0,
        },
        PerturbationModel::ResourceSlowdown {
            factors: vec![1.0, 2.0],
        },
        PerturbationModel::Compose(vec![
            PerturbationModel::Multiplicative { sigma: 0.2 },
            PerturbationModel::HeavyTail {
                prob: 0.1,
                alpha: 1.5,
                cap: 5.0,
            },
        ]),
    ];
    for model in models {
        for kind in PolicyKind::all() {
            let trace = run(
                &instance,
                &planned,
                kind,
                SimConfig {
                    seed: 3,
                    perturbation: model.clone(),
                    scenario: Scenario::offline(),
                    max_events: None,
                },
            )
            .unwrap();
            assert_feasible(&instance, &trace);
            assert!(trace.stats.max_slowdown >= 1.0 - 1e-9);
        }
    }
}

#[test]
fn online_arrivals_delay_release_and_stay_feasible() {
    let instance = layered(20, 4);
    let planned = plan(&instance);
    let release = ArrivalRecipe::UniformWindow {
        horizon: planned.makespan * 0.5,
    }
    .release_times(instance.num_jobs(), &mut mrls_workload::rng_from_seed(9));
    let config = SimConfig {
        seed: 1,
        perturbation: PerturbationModel::None,
        scenario: Scenario::offline().with_release_times(release.clone()),
        max_events: None,
    };
    for kind in PolicyKind::all() {
        let trace = run(&instance, &planned, kind, config.clone())
            .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
        assert_feasible(&instance, &trace);
        // No job starts before its release time.
        for sj in &trace.realized.jobs {
            assert!(
                sj.start + 1e-9 >= release[sj.job],
                "{}: job {} started at {} before release {}",
                kind.label(),
                sj.job,
                sj.start,
                release[sj.job]
            );
        }
        // Arrivals are perturbation events: the full rescheduler reacts.
        if kind == PolicyKind::FullReschedule {
            assert!(trace.stats.num_reschedules > 0);
        }
    }
}

#[test]
fn capacity_drop_is_survived_by_rescheduling() {
    let instance = layered(20, 6);
    let planned = plan(&instance);
    // Halve every capacity a third of the way through the plan.
    let changes = CapacityDropRecipe::SingleDrop {
        at_frac: 0.33,
        keep_fraction: 0.5,
    }
    .changes(instance.system.capacities(), planned.makespan);
    let config = SimConfig {
        seed: 2,
        perturbation: PerturbationModel::None,
        scenario: Scenario::offline().with_capacity_changes(changes),
        max_events: None,
    };
    let trace = run(&instance, &planned, PolicyKind::FullReschedule, config).unwrap();
    assert_feasible(&instance, &trace);
    assert!(trace.stats.num_reschedules > 0);
    // The drop slows things down relative to the plan.
    assert!(trace.stats.stretch >= 1.0 - 1e-9);
    // Jobs *started* after the drop respect the degraded capacity in every
    // interval. (Jobs started before the drop are not preempted, so they may
    // legitimately hold more than the new capacity until they finish.)
    let drop_time = 0.33 * planned.makespan;
    let events = trace.realized.event_times();
    for w in events.windows(2) {
        if w[0] < drop_time {
            continue;
        }
        for i in 0..instance.num_resource_types() {
            let used: u64 = trace
                .realized
                .running_during(w[0], w[1])
                .iter()
                .filter(|&&j| trace.realized.jobs[j].start + 1e-9 >= drop_time)
                .map(|&j| trace.realized.jobs[j].alloc[i])
                .sum();
            let degraded = ((instance.system.capacity(i) as f64 * 0.5).ceil()) as u64;
            assert!(
                used <= degraded,
                "interval [{}, {}]: post-drop jobs use {used} > degraded capacity {degraded} of type {i}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn static_policy_deadlocks_on_fatal_capacity_drop_with_clear_error() {
    // If the machine drops below what a planned allocation needs and the
    // policy cannot re-allocate, the engine reports a stall instead of
    // spinning.
    let instance = layered(12, 3);
    let planned = plan(&instance);
    let max_alloc: u64 = planned
        .jobs
        .iter()
        .map(|sj| sj.alloc.amounts().iter().copied().max().unwrap_or(1))
        .max()
        .unwrap();
    if max_alloc <= 1 {
        return; // nothing to break
    }
    let config = SimConfig {
        seed: 0,
        perturbation: PerturbationModel::None,
        scenario: Scenario::offline().with_capacity_changes(vec![(planned.makespan * 0.1, 0, 1)]),
        max_events: None,
    };
    let result = run(&instance, &planned, PolicyKind::Static, config);
    match result {
        Err(SimError::Stalled { .. }) => {}
        Ok(trace) => assert_feasible(&instance, &trace), // plan happened to fit in 1 unit
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn externally_reordered_plans_are_normalised() {
    // A plan re-loaded from JSON may list jobs in any order; the engine must
    // index allocations and start times by job id, not entry position.
    let instance = layered(15, 8);
    let planned = plan(&instance);
    let mut shuffled = planned.clone();
    shuffled.jobs.reverse();
    for kind in PolicyKind::all() {
        let a = run(&instance, &planned, kind, SimConfig::default()).unwrap();
        let b = run(&instance, &shuffled, kind, SimConfig::default()).unwrap();
        assert_eq!(
            a.realized,
            b.realized,
            "{}: entry order changed the outcome",
            kind.label()
        );
        assert_eq!(b.stats.num_realloc_jobs, 0);
    }
    // Structurally broken plans are rejected, not silently mis-simulated.
    let mut duplicated = planned.clone();
    duplicated.jobs[0] = duplicated.jobs[1].clone();
    let err = run(
        &instance,
        &duplicated,
        PolicyKind::Static,
        SimConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, SimError::InvalidPlan(_)));
}

#[test]
fn lookahead_policies_stay_feasible_and_deterministic() {
    // Look-ahead placement is new semantics (EASY-style reservations), but
    // the engine contract is unchanged: every start it proposes must fit the
    // availability of the moment, so realized traces stay feasible under
    // noise, arrivals and capacity drops — and same-seed runs stay
    // byte-identical.
    use mrls_core::{MrlsConfig, PlacementMode, PriorityRule};
    use mrls_sim::{FullReschedulePolicy, ReactiveListPolicy};

    let instance = layered(22, 7);
    let planned = plan(&instance);
    let release = ArrivalRecipe::UniformWindow {
        horizon: planned.makespan * 0.4,
    }
    .release_times(instance.num_jobs(), &mut mrls_workload::rng_from_seed(3));
    let changes = CapacityDropRecipe::SingleDrop {
        at_frac: 0.5,
        keep_fraction: 0.75,
    }
    .changes(instance.system.capacities(), planned.makespan);
    let configs = [
        SimConfig::default(),
        SimConfig {
            seed: 9,
            perturbation: PerturbationModel::Multiplicative { sigma: 0.3 },
            scenario: Scenario::offline()
                .with_release_times(release)
                .with_capacity_changes(changes),
            max_events: None,
        },
    ];
    for config in configs {
        let mut reactive = ReactiveListPolicy::new(PriorityRule::CriticalPath)
            .with_placement(PlacementMode::LookAhead);
        let a = Simulator::new(config.clone())
            .run(&instance, &planned, &mut reactive)
            .expect("look-ahead reactive run");
        assert_feasible(&instance, &a);
        let mut full = FullReschedulePolicy::new(MrlsConfig::default(), 1.5)
            .with_placement(PlacementMode::LookAhead);
        let b = Simulator::new(config.clone())
            .run(&instance, &planned, &mut full)
            .expect("look-ahead full-reschedule run");
        assert_feasible(&instance, &b);
        // Determinism across repeated runs.
        let mut again = ReactiveListPolicy::new(PriorityRule::CriticalPath)
            .with_placement(PlacementMode::LookAhead);
        let a2 = Simulator::new(config.clone())
            .run(&instance, &planned, &mut again)
            .unwrap();
        assert_eq!(a.to_json(), a2.to_json());
    }
}

#[test]
fn empty_instance_simulates_to_empty_trace() {
    let instance = InstanceRecipe {
        system: SystemRecipe::Uniform { d: 2, p: 4 },
        dag: DagRecipe::Independent { n: 0 },
        jobs: mrls_workload::JobRecipe::default_mixed(),
    }
    .generate(0)
    .instance;
    let planned = plan(&instance);
    for kind in PolicyKind::all() {
        let trace = run(&instance, &planned, kind, SimConfig::default()).unwrap();
        assert_eq!(trace.realized.num_jobs(), 0);
        assert_eq!(trace.stats.stretch, 1.0);
    }
}
