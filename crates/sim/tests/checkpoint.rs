//! Checkpoint/restart of a running simulation: a run paused mid-flight,
//! serialised, parsed back and resumed must continue **byte-identically** to
//! the uninterrupted run.

use mrls_core::{MrlsScheduler, Schedule};
use mrls_model::Instance;
use mrls_sim::{
    normalize_plan, PerturbationModel, PolicyKind, RunStatus, Scenario, SimConfig, SimSnapshot,
    Simulator,
};
use mrls_workload::{ArrivalRecipe, InstanceRecipe};

fn setup(n: usize, seed: u64) -> (Instance, Schedule) {
    let instance = InstanceRecipe::default_layered(n, 2, 8)
        .generate(seed)
        .instance;
    let plan = MrlsScheduler::with_defaults()
        .schedule(&instance)
        .expect("planning must succeed")
        .schedule;
    (instance, plan)
}

fn noisy_config(scenario: Scenario) -> SimConfig {
    SimConfig {
        seed: 13,
        perturbation: PerturbationModel::Multiplicative { sigma: 0.35 },
        scenario,
        max_events: None,
    }
}

/// Runs to completion straight through, and again with a
/// serialise-deserialise-resume cycle at `t_frac` of the planned makespan;
/// both traces must be byte-identical.
fn roundtrip(kind: PolicyKind, scenario: Scenario, t_frac: f64) {
    let (instance, plan) = setup(22, 5);
    let sim = Simulator::new(noisy_config(scenario));
    let plan = normalize_plan(&instance, &plan).unwrap();

    let uninterrupted = sim
        .run(&instance, &plan, kind.build().as_mut())
        .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));

    let t_mid = t_frac * plan.makespan;
    let (mut first_half, mut source) = sim.start(&instance, &plan).unwrap();
    let status = first_half
        .drive_until(kind.build().as_mut(), &mut source, t_mid)
        .unwrap();
    assert_eq!(status, RunStatus::Paused, "{}", kind.label());
    assert!(first_half.num_completed() < instance.num_jobs());

    // Serialise, parse back, resume from the parsed snapshot with a fresh
    // scenario source — nothing survives from the first half but the JSON.
    let json = first_half.checkpoint().to_json();
    drop(first_half);
    drop(source);
    let snapshot = SimSnapshot::from_json(&json).unwrap();
    assert!(snapshot.now <= t_mid + 1e-9);
    // The snapshot itself round-trips to identical JSON (NaN slots included).
    assert_eq!(json, snapshot.to_json());

    let (mut resumed, mut source) = sim.resume(&instance, &plan, &snapshot).unwrap();
    let status = resumed
        .drive(kind.build().as_mut(), &mut source)
        .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
    assert_eq!(status, RunStatus::Complete, "{}", kind.label());
    let continued = resumed.into_trace(kind.label());

    assert_eq!(
        uninterrupted.to_json(),
        continued.to_json(),
        "{}: resumed continuation diverged from the uninterrupted run",
        kind.label()
    );
}

#[test]
fn static_replay_resumes_byte_identically() {
    roundtrip(PolicyKind::Static, Scenario::offline(), 0.4);
}

#[test]
fn reactive_list_resumes_byte_identically() {
    roundtrip(PolicyKind::ReactiveList, Scenario::offline(), 0.5);
}

#[test]
fn resume_replays_pending_scenario_events() {
    // Checkpoint before some arrivals and a capacity blip have fired; the
    // resumed scenario source must deliver exactly the not-yet-consumed ones.
    let (instance, plan) = setup(22, 5);
    let release = ArrivalRecipe::UniformWindow {
        horizon: plan.makespan * 0.8,
    }
    .release_times(instance.num_jobs(), &mut mrls_workload::rng_from_seed(3));
    let scenario = Scenario::offline()
        .with_release_times(release)
        .with_capacity_changes(vec![
            (plan.makespan * 0.5, 0, 4),
            (plan.makespan * 0.75, 0, 8),
        ]);
    roundtrip(PolicyKind::ReactiveList, scenario, 0.6);
}

/// A truncated snapshot (events harvested out before checkpointing) resumes
/// to a continuation byte-identical to one resumed from the untruncated
/// snapshot — reattaching the harvested prefix restores the full trace.
#[test]
fn truncated_snapshot_resumes_byte_identically() {
    let (instance, plan) = setup(22, 5);
    let sim = Simulator::new(noisy_config(Scenario::offline()));
    let plan = normalize_plan(&instance, &plan).unwrap();
    let t_mid = 0.45 * plan.makespan;

    let (mut run, mut source) = sim.start(&instance, &plan).unwrap();
    let kind = PolicyKind::ReactiveList;
    let status = run
        .drive_until(kind.build().as_mut(), &mut source, t_mid)
        .unwrap();
    assert_eq!(status, RunStatus::Paused);
    let full = run.checkpoint();
    assert!(!full.events.is_empty(), "mid-run history exists");

    // Harvest: the retained log empties, the watermark advances, and the
    // checkpoint is truncated — strictly smaller on the wire.
    let prefix = run.take_harvested_events();
    assert_eq!(prefix.len(), full.events.len());
    assert_eq!(run.harvested_events(), prefix.len());
    assert!((run.harvested_until() - full.now).abs() < 1e-12);
    let truncated = run.checkpoint();
    assert!(truncated.events.is_empty());
    assert_eq!(truncated.harvested_events, prefix.len());
    assert!(truncated.to_json().len() < full.to_json().len());
    drop(run);
    drop(source);

    // Continuation from the untruncated snapshot: the reference trace.
    let parsed = SimSnapshot::from_json(&full.to_json()).unwrap();
    let (mut reference, mut source) = sim.resume(&instance, &plan, &parsed).unwrap();
    assert_eq!(
        reference.drive(kind.build().as_mut(), &mut source).unwrap(),
        RunStatus::Complete
    );
    let reference = reference.into_trace(kind.label());

    // Continuation from the truncated snapshot, prefix reattached.
    let parsed = SimSnapshot::from_json(&truncated.to_json()).unwrap();
    assert_eq!(parsed.harvested_events, prefix.len());
    let (mut resumed, mut source) = sim.resume(&instance, &plan, &parsed).unwrap();
    assert_eq!(
        resumed.drive(kind.build().as_mut(), &mut source).unwrap(),
        RunStatus::Complete
    );
    let continued = resumed.into_trace_with_prefix(kind.label(), &prefix);

    assert_eq!(
        reference.to_json(),
        continued.to_json(),
        "truncated-snapshot continuation diverged"
    );
}

/// Snapshots serialised before the harvesting fields existed (no
/// `harvested_events` / `harvested_until` keys) still load, with nothing
/// considered harvested; corrupt harvest fields are rejected cleanly.
#[test]
fn old_format_snapshots_still_load() {
    let (instance, plan) = setup(14, 2);
    let sim = Simulator::new(noisy_config(Scenario::offline()));
    let plan = normalize_plan(&instance, &plan).unwrap();
    let (mut run, mut source) = sim.start(&instance, &plan).unwrap();
    run.drive_until(
        PolicyKind::Static.build().as_mut(),
        &mut source,
        0.4 * plan.makespan,
    )
    .unwrap();
    let json = run.checkpoint().to_json();
    assert!(json.contains("\"harvested_events\""));

    // Strip the two harvesting lines — exactly what a pre-harvest snapshot
    // looks like (they sit mid-object, so the JSON stays well-formed).
    let old_format: String = json
        .lines()
        .filter(|l| !l.contains("\"harvested_events\"") && !l.contains("\"harvested_until\""))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(!old_format.contains("harvested"));
    let snapshot = SimSnapshot::from_json(&old_format).expect("old format must load");
    assert_eq!(snapshot.harvested_events, 0);
    assert_eq!(snapshot.harvested_until, 0.0);

    // The old-format snapshot resumes to the same continuation as the
    // new-format one.
    let reference = SimSnapshot::from_json(&json).unwrap();
    let drive_on = |snapshot: &SimSnapshot| {
        let (mut run, mut source) = sim.resume(&instance, &plan, snapshot).unwrap();
        run.drive(PolicyKind::Static.build().as_mut(), &mut source)
            .unwrap();
        run.into_trace("static").to_json()
    };
    assert_eq!(drive_on(&reference), drive_on(&snapshot));

    // A harvest field of the wrong shape is a parse error, not a panic or a
    // silent default.
    let corrupt = json.replace("\"harvested_events\": 0", "\"harvested_events\": \"bogus\"");
    assert!(SimSnapshot::from_json(&corrupt).is_err());
}

#[test]
fn snapshots_reject_mismatched_worlds() {
    let (instance, plan) = setup(12, 1);
    let sim = Simulator::new(SimConfig::default());
    let plan = normalize_plan(&instance, &plan).unwrap();
    let (run, _source) = sim.start(&instance, &plan).unwrap();
    let mut snapshot = run.checkpoint();
    // More jobs in the snapshot than in the instance: rejected.
    snapshot.released.push(false);
    assert!(sim.resume(&instance, &plan, &snapshot).is_err());
    // Inconsistent field lengths: rejected.
    let mut snapshot = run.checkpoint();
    snapshot.started.pop();
    assert!(sim.resume(&instance, &plan, &snapshot).is_err());
    // Tampered completion counter: rejected.
    let mut snapshot = run.checkpoint();
    snapshot.num_completed += 1;
    assert!(sim.resume(&instance, &plan, &snapshot).is_err());
}

#[test]
fn corrupt_snapshots_fail_cleanly_instead_of_panicking() {
    use mrls_sim::RunningJob;
    let (instance, plan) = setup(14, 2);
    let sim = Simulator::new(noisy_config(Scenario::offline()));
    let plan = normalize_plan(&instance, &plan).unwrap();
    let (mut run, mut source) = sim.start(&instance, &plan).unwrap();
    run.drive_until(
        PolicyKind::ReactiveList.build().as_mut(),
        &mut source,
        0.4 * plan.makespan,
    )
    .unwrap();
    let good = run.checkpoint();
    assert!(!good.running.is_empty(), "checkpoint mid-execution");

    // A running entry for a job the instance does not have: rejected, no
    // out-of-bounds panic at the next completion event.
    let mut bad = good.clone();
    bad.running[0].job = 999;
    assert!(sim.resume(&instance, &plan, &bad).is_err());
    // A running entry contradicting the lifecycle flags: rejected.
    let mut bad = good.clone();
    bad.started[bad.running[0].job] = false;
    bad.released[bad.running[0].job] = false;
    assert!(sim.resume(&instance, &plan, &bad).is_err());
    // A duplicated running entry (double resource release): rejected.
    let mut bad = good.clone();
    let dup: RunningJob = bad.running[0].clone();
    bad.running.push(dup);
    assert!(sim.resume(&instance, &plan, &bad).is_err());
    // The untampered snapshot still resumes fine.
    assert!(sim.resume(&instance, &plan, &good).is_ok());
}
