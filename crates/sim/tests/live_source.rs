//! Driving the engine from a live, channel-fed event source: releases may
//! arrive between drive calls, and a drained-but-incomplete world reports
//! [`RunStatus::Idle`] (resumable) rather than a fatal stall.

use mrls_core::MrlsScheduler;
use mrls_dag::Dag;
use mrls_model::{ExecTimeSpec, Instance, MoldableJob, SystemConfig};
use mrls_sim::{
    normalize_plan, ChannelSource, PerturbationModel, PolicyKind, RunStatus, SimRun, SourceEvent,
};

/// A two-job chain 0 -> 1 on a 2-type machine.
fn chain_instance() -> Instance {
    let system = SystemConfig::new(vec![4, 4]).unwrap();
    let dag = Dag::from_edges(2, &[(0, 1)]).unwrap();
    let jobs = vec![
        MoldableJob::new(0, ExecTimeSpec::Constant { time: 2.0 }),
        MoldableJob::new(1, ExecTimeSpec::Constant { time: 1.0 }),
    ];
    Instance::new(system, dag, jobs).unwrap()
}

#[test]
fn out_of_order_releases_idle_then_complete() {
    let instance = chain_instance();
    let plan = MrlsScheduler::with_defaults()
        .schedule(&instance)
        .unwrap()
        .schedule;
    let plan = normalize_plan(&instance, &plan).unwrap();
    let mut run = SimRun::start(
        &instance,
        &plan,
        0,
        PerturbationModel::None,
        None,
        vec![false, false],
    )
    .unwrap();
    let mut policy = PolicyKind::ReactiveList.build();

    // The successor is released before its predecessor: nothing can run yet,
    // but the run is idle (the predecessor may still be fed), not stalled.
    let (tx, mut source) = ChannelSource::channel();
    tx.send(SourceEvent::Release { time: 0.0, job: 1 }).unwrap();
    let status = run.drive(policy.as_mut(), &mut source).unwrap();
    assert_eq!(status, RunStatus::Idle);
    assert_eq!(run.num_completed(), 0);

    // Feeding the predecessor unblocks the chain.
    tx.send(SourceEvent::Release { time: 1.0, job: 0 }).unwrap();
    let status = run.drive(policy.as_mut(), &mut source).unwrap();
    assert_eq!(status, RunStatus::Complete);
    assert_eq!(run.num_completed(), 2);
    let trace = run.into_trace("reactive-list");
    // Job 0 started at its release, job 1 right after its predecessor.
    assert!((trace.realized.jobs[0].start - 1.0).abs() < 1e-9);
    assert!((trace.realized.jobs[1].start - 3.0).abs() < 1e-9);
}
