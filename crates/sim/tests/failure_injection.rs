//! End-to-end failure semantics in the engine: seeded fault injection is
//! deterministic, bounded retry returns failed jobs to the ready set through
//! the policies' mirrored queues, exhausted budgets abandon whole subtrees,
//! outages kill exactly the jobs running on the dead type, and a
//! checkpoint/resume cycle mid-backoff continues byte-identically.

use mrls_analysis::{validate_schedule_with, ValidationOptions};
use mrls_core::{MrlsScheduler, Schedule, ScheduledJob};
use mrls_dag::Dag;
use mrls_model::{Allocation, ExecTimeSpec, Instance, MoldableJob, SystemConfig};
use mrls_sim::{
    normalize_plan, FailCause, FailureModel, FailurePlan, Outage, PerturbationModel, PolicyKind,
    RetryPolicy, RunStatus, Scenario, SimConfig, SimSnapshot, Simulator, TraceEvent,
};
use mrls_workload::InstanceRecipe;

fn layered(n: usize, seed: u64) -> (Instance, Schedule) {
    let instance = InstanceRecipe::default_layered(n, 2, 8)
        .generate(seed)
        .instance;
    let plan = MrlsScheduler::with_defaults()
        .schedule(&instance)
        .expect("planning must succeed")
        .schedule;
    let plan = normalize_plan(&instance, &plan).unwrap();
    (instance, plan)
}

fn config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        perturbation: PerturbationModel::Multiplicative { sigma: 0.2 },
        scenario: Scenario::offline(),
        max_events: None,
    }
}

fn flaky_plan(prob: f64) -> FailurePlan {
    FailurePlan {
        model: FailureModel::Random { prob },
        outages: Vec::new(),
        retry: RetryPolicy {
            max_attempts: 6,
            backoff_base: 0.1,
            backoff_factor: 2.0,
        },
    }
}

fn run_with_failures(
    instance: &Instance,
    plan: &Schedule,
    kind: PolicyKind,
    seed: u64,
    failures: FailurePlan,
) -> (mrls_sim::RealizedTrace, usize, Vec<u32>) {
    let sim = Simulator::new(config(seed));
    let (mut run, mut source) = sim.start(instance, plan).unwrap();
    run.set_failures(failures);
    let status = run
        .drive(kind.build().as_mut(), &mut source)
        .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
    assert_eq!(status, RunStatus::Complete, "{}", kind.label());
    let abandoned = run.num_abandoned();
    let attempts = run.attempts().to_vec();
    (run.into_trace(kind.label()), abandoned, attempts)
}

#[test]
fn failure_free_plan_is_a_noop() {
    let (instance, plan) = layered(18, 3);
    for kind in [PolicyKind::ReactiveList, PolicyKind::FullReschedule] {
        let sim = Simulator::new(config(7));
        let baseline = sim.run(&instance, &plan, kind.build().as_mut()).unwrap();
        let (with_plan, abandoned, _) =
            run_with_failures(&instance, &plan, kind, 7, FailurePlan::none());
        assert_eq!(abandoned, 0);
        assert_eq!(
            baseline.to_json(),
            with_plan.to_json(),
            "{}: installing a failure-free plan changed the run",
            kind.label()
        );
    }
}

#[test]
fn same_seed_failure_runs_are_byte_identical_and_seeds_matter() {
    let (instance, plan) = layered(22, 9);
    for kind in [PolicyKind::ReactiveList, PolicyKind::FullReschedule] {
        let (a, _, _) = run_with_failures(&instance, &plan, kind, 5, flaky_plan(0.3));
        let (b, _, _) = run_with_failures(&instance, &plan, kind, 5, flaky_plan(0.3));
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{}: failure injection not deterministic",
            kind.label()
        );
        let (c, _, _) = run_with_failures(&instance, &plan, kind, 6, flaky_plan(0.3));
        assert_ne!(
            a.to_json(),
            c.to_json(),
            "{} ignored the seed",
            kind.label()
        );
    }
}

#[test]
fn bounded_retry_completes_flaky_workloads_feasibly() {
    let (instance, plan) = layered(20, 4);
    for kind in [PolicyKind::ReactiveList, PolicyKind::FullReschedule] {
        let (trace, abandoned, attempts) =
            run_with_failures(&instance, &plan, kind, 2, flaky_plan(0.35));
        assert_eq!(abandoned, 0, "{}: generous budget exhausted", kind.label());
        let failures = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobFailed { .. }))
            .count();
        let retries = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobRetried { .. }))
            .count();
        assert!(
            failures > 0,
            "{}: p=0.35 produced no failures",
            kind.label()
        );
        assert_eq!(
            failures,
            retries,
            "{}: every non-terminal failure is followed by exactly one retry",
            kind.label()
        );
        assert!(attempts.iter().any(|&a| a > 1));
        assert!(attempts.iter().all(|&a| (1..=6).contains(&a)));
        // The realized schedule (final attempts) is still capacity- and
        // precedence-feasible.
        let report = validate_schedule_with(
            &instance,
            &trace.realized,
            ValidationOptions {
                check_durations: false,
            },
        );
        assert!(report.is_valid(), "{}: {report:?}", kind.label());
        // A retried job's final start never precedes its re-eligibility.
        for ev in &trace.events {
            if let TraceEvent::JobRetried { time, job, .. } = ev {
                assert!(trace.realized.jobs[*job].start + 1e-9 >= *time);
            }
        }
    }
}

#[test]
fn exhausted_budget_abandons_the_job_and_its_descendants() {
    // Chain 0 -> 1 -> 2 where every attempt dies: job 0 burns its budget and
    // the descendants are cascade-abandoned without ever running.
    let system = SystemConfig::new(vec![4]).unwrap();
    let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    let jobs = (0..3)
        .map(|j| MoldableJob::new(j, ExecTimeSpec::Constant { time: 1.0 }))
        .collect();
    let instance = Instance::new(system, dag, jobs).unwrap();
    let plan = Schedule::new(
        (0..3)
            .map(|j| ScheduledJob {
                job: j,
                start: j as f64,
                finish: j as f64 + 1.0,
                alloc: Allocation::new(vec![1]),
            })
            .collect(),
    );
    let failures = FailurePlan {
        model: FailureModel::Random { prob: 1.0 },
        outages: Vec::new(),
        retry: RetryPolicy::default(),
    };
    let sim = Simulator::new(SimConfig {
        seed: 1,
        ..SimConfig::default()
    });
    let (mut run, mut source) = sim.start(&instance, &plan).unwrap();
    run.set_failures(failures);
    let status = run
        .drive(PolicyKind::ReactiveList.build().as_mut(), &mut source)
        .unwrap();
    assert_eq!(status, RunStatus::Complete, "abandonment completes the run");
    assert_eq!(run.num_completed(), 0);
    assert_eq!(run.num_abandoned(), 3);
    assert_eq!(run.attempts()[0], RetryPolicy::default().max_attempts);
    assert_eq!(run.attempts()[1], 0, "descendants never ran");

    let trace = run.into_trace("reactive-list");
    let fault_failures = trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::JobFailed {
                    job: 0,
                    cause: FailCause::Fault,
                    ..
                }
            )
        })
        .count();
    assert_eq!(fault_failures as u32, RetryPolicy::default().max_attempts);
    for j in [1usize, 2] {
        assert!(
            trace.events.iter().any(|e| matches!(
                e,
                TraceEvent::JobFailed { job, attempt: 0, cause: FailCause::Cascade, .. } if *job == j
            )),
            "descendant {j} got no cascade event"
        );
    }
    // Stats exclude the never-ran jobs instead of turning NaN.
    assert!(trace.stats.mean_slowdown.is_finite());
    assert!(trace.stats.realized_makespan.is_finite());
}

#[test]
fn outages_kill_exactly_the_jobs_running_on_the_dead_type() {
    // Two independent jobs on different resource types; an outage of type 0
    // mid-flight kills only the job holding type 0, which then retries.
    let system = SystemConfig::new(vec![2, 2]).unwrap();
    let dag = Dag::independent(2);
    let jobs = (0..2)
        .map(|j| MoldableJob::new(j, ExecTimeSpec::Constant { time: 2.0 }))
        .collect();
    let instance = Instance::new(system, dag, jobs).unwrap();
    let plan = Schedule::new(vec![
        ScheduledJob {
            job: 0,
            start: 0.0,
            finish: 2.0,
            alloc: Allocation::new(vec![1, 0]),
        },
        ScheduledJob {
            job: 1,
            start: 0.0,
            finish: 2.0,
            alloc: Allocation::new(vec![0, 1]),
        },
    ]);
    let failures = FailurePlan {
        model: FailureModel::None,
        outages: vec![Outage {
            time: 1.0,
            resource: 0,
        }],
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_base: 0.25,
            backoff_factor: 2.0,
        },
    };
    let sim = Simulator::new(SimConfig {
        seed: 0,
        ..SimConfig::default()
    });
    let (mut run, mut source) = sim.start(&instance, &plan).unwrap();
    run.set_failures(failures);
    let status = run
        .drive(PolicyKind::ReactiveList.build().as_mut(), &mut source)
        .unwrap();
    assert_eq!(status, RunStatus::Complete);
    assert_eq!(run.num_abandoned(), 0);
    assert_eq!(run.attempts(), &[2, 1], "only the type-0 job was killed");
    let trace = run.into_trace("reactive-list");
    let outage_kills: Vec<(usize, FailCause)> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::JobFailed { job, cause, .. } => Some((*job, *cause)),
            _ => None,
        })
        .collect();
    assert_eq!(outage_kills, vec![(0, FailCause::Outage { resource: 0 })]);
    // The retry lands after the backoff: killed at 1.0, eligible at 1.25.
    assert!(trace.events.iter().any(|e| matches!(
        e,
        TraceEvent::JobRetried { job: 0, time, .. } if (*time - 1.25).abs() < 1e-9
    )));
    // Job 1 was untouched and finished on plan; job 0 restarted and ran its
    // full nominal time again.
    assert!((trace.realized.jobs[1].finish - 2.0).abs() < 1e-9);
    assert!((trace.realized.jobs[0].start - 1.25).abs() < 1e-9);
    assert!((trace.realized.jobs[0].finish - 3.25).abs() < 1e-9);
}

#[test]
fn straggler_kill_beheads_attempts_past_the_deadline() {
    // Heavy-tail noise plus a straggler-kill deadline: any attempt whose
    // realized/nominal ratio exceeds the factor dies at the deadline instead
    // of dragging the makespan; with a generous budget everything completes.
    let (instance, plan) = layered(18, 6);
    let failures = FailurePlan {
        model: FailureModel::StragglerKill {
            deadline_factor: 2.0,
        },
        outages: Vec::new(),
        retry: RetryPolicy {
            max_attempts: 8,
            backoff_base: 0.05,
            backoff_factor: 2.0,
        },
    };
    let sim = Simulator::new(SimConfig {
        seed: 11,
        perturbation: PerturbationModel::HeavyTail {
            prob: 0.3,
            alpha: 1.2,
            cap: 8.0,
        },
        scenario: Scenario::offline(),
        max_events: None,
    });
    let (mut run, mut source) = sim.start(&instance, &plan).unwrap();
    run.set_failures(failures);
    let status = run
        .drive(PolicyKind::ReactiveList.build().as_mut(), &mut source)
        .unwrap();
    assert_eq!(status, RunStatus::Complete);
    let trace = run.into_trace("reactive-list");
    let straggler_kills = trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::JobFailed {
                    cause: FailCause::Straggler,
                    ..
                }
            )
        })
        .count();
    assert!(
        straggler_kills > 0,
        "cap 8.0 > deadline 2.0 must trigger kills"
    );
    // A beheaded attempt never runs past deadline_factor * nominal: every
    // realized execution (final, completing attempt) obeys the cap set by
    // the heavy-tail model, and no *failure* event sits later than
    // deadline_factor times the nominal after its start.
    for ev in &trace.events {
        if let TraceEvent::JobFailed {
            time,
            job,
            cause: FailCause::Straggler,
            ..
        } = ev
        {
            let nominal = instance.jobs[*job]
                .spec
                .time(&trace.realized.jobs[*job].alloc);
            assert!(
                *time <= trace.realized.jobs[*job].finish + 1e-9,
                "straggler kill after the job's final finish"
            );
            assert!(nominal > 0.0);
        }
    }
}

#[test]
fn checkpoint_resume_mid_backoff_is_byte_identical() {
    // Pause inside a retry-backoff window, serialise, parse back, resume with
    // the failure plan reinstalled: the continuation must be byte-identical
    // to the uninterrupted failing run.
    let (instance, plan) = layered(22, 8);
    let failures = flaky_plan(0.4);
    let kind = PolicyKind::ReactiveList;
    let sim = Simulator::new(config(3));

    let (uninterrupted, _, _) = run_with_failures(&instance, &plan, kind, 3, failures.clone());

    // Find a failure instant so the pause lands inside churn: stop right
    // after the first JobFailed event (its backoff is still pending).
    let first_fail = uninterrupted
        .events
        .iter()
        .find_map(|e| match e {
            TraceEvent::JobFailed { time, .. } => Some(*time),
            _ => None,
        })
        .expect("p=0.4 produces at least one failure");
    let t_mid = first_fail + failures.retry.backoff_base * 0.5;

    let (mut first_half, mut source) = sim.start(&instance, &plan).unwrap();
    first_half.set_failures(failures.clone());
    let status = first_half
        .drive_until(kind.build().as_mut(), &mut source, t_mid)
        .unwrap();
    assert_eq!(status, RunStatus::Paused);
    let json = first_half.checkpoint().to_json();
    drop(first_half);
    drop(source);

    let snapshot = SimSnapshot::from_json(&json).unwrap();
    assert_eq!(json, snapshot.to_json(), "snapshot JSON round-trips");
    assert!(
        snapshot.retry_at.iter().any(|t| t.is_finite())
            || snapshot.attempts.iter().any(|&a| a > 1)
            || !snapshot.fail_cause.iter().all(|c| c.is_none()),
        "the pause captured live failure state"
    );

    let (mut resumed, mut source) = sim.resume(&instance, &plan, &snapshot).unwrap();
    resumed.set_failures(failures);
    let status = resumed.drive(kind.build().as_mut(), &mut source).unwrap();
    assert_eq!(status, RunStatus::Complete);
    let continued = resumed.into_trace(kind.label());
    assert_eq!(
        uninterrupted.to_json(),
        continued.to_json(),
        "mid-backoff resume diverged from the uninterrupted run"
    );
}

/// Removes top-level fields (scalars or flat multi-line arrays) from a
/// pretty-printed JSON object, fixing the dangling comma if the stripped
/// block was the object's tail — exactly what a snapshot written before
/// those fields existed looks like.
fn strip_fields(json: &str, keys: &[&str]) -> String {
    let mut out: Vec<&str> = Vec::new();
    let mut skip_indent: Option<usize> = None;
    for line in json.lines() {
        let trimmed = line.trim_start();
        let indent = line.len() - trimmed.len();
        if let Some(k) = skip_indent {
            if indent == k && (trimmed.starts_with(']') || trimmed.starts_with('}')) {
                skip_indent = None;
            }
            continue;
        }
        if keys
            .iter()
            .any(|k| trimmed.starts_with(&format!("\"{k}\":")))
        {
            let body = trimmed.trim_end().trim_end_matches(',').trim_end();
            if body.ends_with('[') || body.ends_with('{') {
                skip_indent = Some(indent);
            }
            continue;
        }
        out.push(line);
    }
    let mut text = out.join("\n");
    if let Some(close) = text.rfind('}') {
        let before = text[..close].trim_end().len();
        if before > 0 && text.as_bytes()[before - 1] == b',' {
            text.replace_range(before - 1..before, "");
        }
    }
    text
}

#[test]
fn pre_failure_snapshots_still_load_and_resume() {
    // Snapshots serialised before the failure fields existed must load with
    // empty failure state and resume identically.
    let (instance, plan) = layered(14, 2);
    let sim = Simulator::new(config(13));
    let (mut run, mut source) = sim.start(&instance, &plan).unwrap();
    run.drive_until(
        PolicyKind::ReactiveList.build().as_mut(),
        &mut source,
        0.4 * plan.makespan,
    )
    .unwrap();
    let json = run.checkpoint().to_json();
    assert!(json.contains("\"failure_attempts\""));

    let old_format = strip_fields(
        &json,
        &[
            "attempts",
            "retry_at",
            "abandoned",
            "fail_cause",
            "failure_attempts",
        ],
    );
    assert!(!old_format.contains("\"failure_attempts\""));
    let snapshot = SimSnapshot::from_json(&old_format).expect("old format must load");
    assert!(snapshot.attempts.is_empty());
    assert_eq!(snapshot.failure_attempts, 0);
    let reference = SimSnapshot::from_json(&json).unwrap();
    let drive_on = |snapshot: &SimSnapshot| {
        let (mut run, mut source) = sim.resume(&instance, &plan, snapshot).unwrap();
        run.drive(PolicyKind::ReactiveList.build().as_mut(), &mut source)
            .unwrap();
        run.into_trace("reactive-list").to_json()
    };
    assert_eq!(drive_on(&reference), drive_on(&snapshot));
}
