//! Shelf (pack) scheduling for independent moldable jobs — the second
//! algorithm family analysed by Sun et al. (IPDPS 2018), shown there to be
//! `(2d + 1)`-approximate.
//!
//! After the `L_min` allocation is fixed, jobs are sorted by non-increasing
//! execution time and greedily packed into *shelves*: a job joins the current
//! shelf if its allocation fits next to the jobs already on the shelf in
//! every resource type, otherwise a new shelf is opened. Shelves execute one
//! after another; the height of a shelf is the longest job on it. Pack
//! scheduling is attractive operationally (synchronised phases) but wastes
//! the area above shorter jobs, which is why the paper's list-based scheme
//! dominates it — reproducing that gap is the purpose of this baseline.

use crate::{BaselineOutcome, BaselineScheduler};
use mrls_core::allocators::IndependentOptimalAllocator;
use mrls_core::schedule::{Schedule, ScheduledJob};
use mrls_core::Result;
use mrls_model::Instance;

/// Shelf-based scheduler for independent moldable jobs (Sun et al., 2d+1).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShelfScheduler;

impl ShelfScheduler {
    /// Creates the baseline.
    pub fn new() -> Self {
        ShelfScheduler
    }
}

impl BaselineScheduler for ShelfScheduler {
    fn run(&self, instance: &Instance) -> Result<BaselineOutcome> {
        let profiles = instance.profiles()?;
        // Allocation phase: identical to the list-based variant (Lemma 8).
        let (decision, _lmin) = IndependentOptimalAllocator::solve(instance, &profiles)?;
        let d = instance.num_resource_types();
        let n = instance.num_jobs();
        let times: Vec<f64> = (0..n)
            .map(|j| instance.jobs[j].spec.time(&decision[j]))
            .collect();

        // Pack phase: longest job first, first-fit onto the open shelf.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            times[b]
                .partial_cmp(&times[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        let mut jobs: Vec<ScheduledJob> = Vec::with_capacity(n);
        let mut shelf_start = 0.0f64;
        let mut shelf_height = 0.0f64;
        let mut shelf_used: Vec<u64> = vec![0; d];
        for &j in &order {
            let fits =
                (0..d).all(|i| shelf_used[i] + decision[j][i] <= instance.system.capacity(i));
            if !fits {
                // Close the shelf and open a new one.
                shelf_start += shelf_height;
                shelf_height = 0.0;
                shelf_used = vec![0; d];
            }
            for i in 0..d {
                shelf_used[i] += decision[j][i];
            }
            shelf_height = shelf_height.max(times[j]);
            jobs.push(ScheduledJob {
                job: j,
                start: shelf_start,
                finish: shelf_start + times[j],
                alloc: decision[j].clone(),
            });
        }
        jobs.sort_by_key(|sj| sj.job);
        Ok(BaselineOutcome {
            decision,
            schedule: Schedule::new(jobs),
        })
    }

    fn name(&self) -> &'static str {
        "shelf-2d+1"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SunIndependentScheduler;
    use mrls_core::allocators::{Allocator, IndependentOptimalAllocator};
    use mrls_dag::Dag;
    use mrls_model::{ExecTimeSpec, MoldableJob, SystemConfig};

    fn independent_instance(n: usize, d: usize, seed_spread: bool) -> Instance {
        let jobs = (0..n)
            .map(|j| {
                let scale = if seed_spread {
                    1.0 + (j % 5) as f64
                } else {
                    1.0
                };
                MoldableJob::new(
                    j,
                    ExecTimeSpec::Amdahl {
                        seq: 0.5 * scale,
                        work: vec![6.0 * scale; d],
                    },
                )
            })
            .collect();
        Instance::new(
            SystemConfig::uniform(d, 8).unwrap(),
            Dag::independent(n),
            jobs,
        )
        .unwrap()
    }

    #[test]
    fn shelf_schedule_is_valid_and_respects_capacity() {
        let inst = independent_instance(12, 2, true);
        let out = ShelfScheduler::new().run(&inst).unwrap();
        // Validate with the analysis-independent logic: capacity per event
        // interval.
        let events = out.schedule.event_times();
        for w in events.windows(2) {
            let running = out.schedule.running_during(w[0], w[1]);
            for i in 0..2 {
                let used: u64 = running.iter().map(|&j| out.schedule.jobs[j].alloc[i]).sum();
                assert!(used <= inst.system.capacity(i));
            }
        }
        assert!(out.schedule.makespan > 0.0);
    }

    #[test]
    fn respects_2d_plus_1_bound_wrt_lmin() {
        for d in 1..=3usize {
            let inst = independent_instance(10, d, true);
            let profiles = inst.profiles().unwrap();
            let lmin = IndependentOptimalAllocator::new()
                .certified_lower_bound(&inst, &profiles)
                .unwrap();
            let out = ShelfScheduler::new().run(&inst).unwrap();
            assert!(
                out.schedule.makespan <= (2.0 * d as f64 + 1.0) * lmin + 1e-6,
                "d={d}: {} vs {}",
                out.schedule.makespan,
                (2.0 * d as f64 + 1.0) * lmin
            );
        }
    }

    #[test]
    fn list_variant_never_loses_to_shelves_by_much_and_usually_wins() {
        // The list-based scheme dominates pack scheduling on heterogeneous
        // job mixes (that is the message of Sun et al.'s comparison).
        let inst = independent_instance(20, 2, true);
        let shelf = ShelfScheduler::new().run(&inst).unwrap();
        let list = SunIndependentScheduler::default().run(&inst).unwrap();
        assert!(list.schedule.makespan <= shelf.schedule.makespan + 1e-9);
    }

    #[test]
    fn identical_jobs_fill_shelves_exactly() {
        // 8 identical sequential jobs on capacity 8: a single shelf.
        let inst = independent_instance(8, 1, false);
        let out = ShelfScheduler::new().run(&inst).unwrap();
        let profiles = inst.profiles().unwrap();
        let (decision, _) = IndependentOptimalAllocator::solve(&inst, &profiles).unwrap();
        let per_job_units = decision[0][0];
        let jobs_per_shelf = 8 / per_job_units.max(1);
        let shelves = 8_u64.div_ceil(jobs_per_shelf);
        let t = inst.jobs[0].spec.time(&decision[0]);
        assert!((out.schedule.makespan - shelves as f64 * t).abs() < 1e-9);
    }

    #[test]
    fn rejects_precedence_graphs() {
        let jobs = (0..2)
            .map(|j| MoldableJob::new(j, ExecTimeSpec::Constant { time: 1.0 }))
            .collect();
        let inst = Instance::new(SystemConfig::new(vec![4]).unwrap(), Dag::chain(2), jobs).unwrap();
        assert!(ShelfScheduler::new().run(&inst).is_err());
        assert_eq!(ShelfScheduler::new().name(), "shelf-2d+1");
    }
}
