//! # mrls-baseline — comparison algorithms for the evaluation
//!
//! The paper positions its algorithm against simpler strategies; this crate
//! implements the baselines the experiment harness compares against:
//!
//! * [`RigidListScheduler`] — Garey–Graham-style *rigid* scheduling: every
//!   job's allocation is frozen by a simple per-job rule (fastest, cheapest,
//!   balanced) and the multi-resource list scheduler runs it as-is, without
//!   the paper's µ-adjustment. This isolates the benefit of the paper's
//!   allocation phase.
//! * [`SunIndependentScheduler`] — the list-based algorithm of Sun et al.
//!   (IPDPS 2018) for *independent* moldable jobs: the exact `L_min`
//!   allocation followed by greedy list scheduling (2d-approximate).
//! * [`ShelfScheduler`] — the shelf/pack-scheduling variant from the same
//!   work ((2d+1)-approximate), which the list-based schemes dominate on
//!   heterogeneous job mixes.
//! * [`SequentialScheduler`] — runs the jobs one at a time (in a topological
//!   order), each with its fastest allocation. A trivially valid schedule
//!   whose makespan is the sum of minimum execution times; useful as an upper
//!   anchor when normalising results.
//!
//! All baselines reuse the Phase-2 list scheduler from `mrls-core` so that
//! differences in the results are attributable to the allocation decisions
//! only.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod rigid;
pub mod sequential;
pub mod shelf;
pub mod sun_independent;

pub use rigid::{RigidListScheduler, RigidRule};
pub use sequential::SequentialScheduler;
pub use shelf::ShelfScheduler;
pub use sun_independent::SunIndependentScheduler;

use mrls_core::Result;
use mrls_core::Schedule;
use mrls_model::{AllocationDecision, Instance};

/// A baseline scheduling algorithm: produces a full schedule for an instance.
pub trait BaselineScheduler {
    /// Runs the baseline on the instance.
    fn run(&self, instance: &Instance) -> Result<BaselineOutcome>;

    /// Name used in experiment tables.
    fn name(&self) -> &'static str;
}

/// The outcome of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// The allocation decision the baseline used.
    pub decision: AllocationDecision,
    /// The resulting schedule.
    pub schedule: Schedule,
}
