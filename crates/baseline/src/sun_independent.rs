//! The list-based algorithm of Sun et al. (IPDPS 2018) for independent
//! moldable jobs under multiple resource types (the paper's closest prior
//! work, 2d-approximate).
//!
//! The algorithm computes the exact `L_min` allocation (the same Lemma 8
//! routine our Theorem 5 pipeline uses) and then list-schedules greedily —
//! without the µ-adjustment that the present paper adds to obtain the
//! improved `d + 2√(d−1)` ratio for `d ≥ 4`.

use crate::{BaselineOutcome, BaselineScheduler};
use mrls_core::allocators::IndependentOptimalAllocator;
use mrls_core::{ListScheduler, PriorityRule, Result};
use mrls_model::Instance;

/// Sun et al.'s list-based independent-job scheduler (2d-approximation).
#[derive(Debug, Clone)]
pub struct SunIndependentScheduler {
    priority: PriorityRule,
}

impl SunIndependentScheduler {
    /// Creates the baseline with the given ready-queue priority.
    pub fn new(priority: PriorityRule) -> Self {
        SunIndependentScheduler { priority }
    }
}

impl Default for SunIndependentScheduler {
    fn default() -> Self {
        SunIndependentScheduler::new(PriorityRule::LongestTimeFirst)
    }
}

impl BaselineScheduler for SunIndependentScheduler {
    fn run(&self, instance: &Instance) -> Result<BaselineOutcome> {
        let profiles = instance.profiles()?;
        let (decision, _lmin) = IndependentOptimalAllocator::solve(instance, &profiles)?;
        let schedule = ListScheduler::new(self.priority.clone()).schedule(instance, &decision)?;
        Ok(BaselineOutcome { decision, schedule })
    }

    fn name(&self) -> &'static str {
        "sun-independent-2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrls_core::allocators::{Allocator, IndependentOptimalAllocator};
    use mrls_dag::Dag;
    use mrls_model::{ExecTimeSpec, MoldableJob, SystemConfig};

    fn independent_instance(n: usize, d: usize) -> Instance {
        let jobs = (0..n)
            .map(|j| {
                MoldableJob::new(
                    j,
                    ExecTimeSpec::Amdahl {
                        seq: 0.5,
                        work: vec![6.0; d],
                    },
                )
            })
            .collect();
        Instance::new(
            SystemConfig::uniform(d, 8).unwrap(),
            Dag::independent(n),
            jobs,
        )
        .unwrap()
    }

    #[test]
    fn respects_2d_bound_wrt_lmin() {
        for d in 1..=3usize {
            let inst = independent_instance(8, d);
            let profiles = inst.profiles().unwrap();
            let lmin = IndependentOptimalAllocator::new()
                .certified_lower_bound(&inst, &profiles)
                .unwrap();
            let out = SunIndependentScheduler::default().run(&inst).unwrap();
            assert!(
                out.schedule.makespan <= 2.0 * d as f64 * lmin + 1e-6,
                "d={d}: makespan {} vs 2d*Lmin {}",
                out.schedule.makespan,
                2.0 * d as f64 * lmin
            );
        }
    }

    #[test]
    fn fails_on_graphs_with_edges() {
        let jobs = (0..2)
            .map(|j| MoldableJob::new(j, ExecTimeSpec::Constant { time: 1.0 }))
            .collect();
        let inst = Instance::new(SystemConfig::new(vec![4]).unwrap(), Dag::chain(2), jobs).unwrap();
        assert!(SunIndependentScheduler::default().run(&inst).is_err());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(
            SunIndependentScheduler::default().name(),
            "sun-independent-2d"
        );
    }
}
