//! The trivial sequential baseline: one job at a time, fastest allocation.

use crate::{BaselineOutcome, BaselineScheduler};
use mrls_core::schedule::{Schedule, ScheduledJob};
use mrls_core::Result;
use mrls_model::Instance;

/// Runs jobs one at a time in topological order, each with its fastest
/// non-dominated allocation. Always valid; never faster than any reasonable
/// parallel schedule. Its makespan equals the sum of minimum execution times,
/// a useful upper anchor for normalisation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialScheduler;

impl SequentialScheduler {
    /// Creates the baseline.
    pub fn new() -> Self {
        SequentialScheduler
    }
}

impl BaselineScheduler for SequentialScheduler {
    fn run(&self, instance: &Instance) -> Result<BaselineOutcome> {
        let profiles = instance.profiles()?;
        let decision: Vec<_> = profiles
            .iter()
            .map(|p| p.min_time_point().alloc.clone())
            .collect();
        let order = instance.dag.topological_order();
        let mut now = 0.0f64;
        let mut jobs = vec![
            ScheduledJob {
                job: 0,
                start: 0.0,
                finish: 0.0,
                alloc: mrls_model::Allocation::ones(instance.num_resource_types()),
            };
            instance.num_jobs()
        ];
        for &j in &order {
            let t = profiles[j].min_time_point().time;
            jobs[j] = ScheduledJob {
                job: j,
                start: now,
                finish: now + t,
                alloc: decision[j].clone(),
            };
            now += t;
        }
        Ok(BaselineOutcome {
            decision,
            schedule: Schedule::new(jobs),
        })
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrls_dag::Dag;
    use mrls_model::{ExecTimeSpec, MoldableJob, SystemConfig};

    fn instance(dag: Dag) -> Instance {
        let n = dag.num_nodes();
        let jobs = (0..n)
            .map(|j| {
                MoldableJob::new(
                    j,
                    ExecTimeSpec::Amdahl {
                        seq: 1.0,
                        work: vec![4.0],
                    },
                )
            })
            .collect();
        Instance::new(SystemConfig::new(vec![4]).unwrap(), dag, jobs).unwrap()
    }

    #[test]
    fn makespan_is_sum_of_min_times() {
        let inst = instance(Dag::independent(5));
        let out = SequentialScheduler::new().run(&inst).unwrap();
        // Fastest time per job: 1 + 1 = 2; five jobs => 10.
        assert!((out.schedule.makespan - 10.0).abs() < 1e-9);
        assert_eq!(SequentialScheduler::new().name(), "sequential");
    }

    #[test]
    fn respects_precedence_even_though_sequential() {
        let inst = instance(Dag::chain(3));
        let out = SequentialScheduler::new().run(&inst).unwrap();
        for (u, v) in inst.dag.edges() {
            assert!(out.schedule.jobs[v].start + 1e-9 >= out.schedule.jobs[u].finish);
        }
    }

    #[test]
    fn empty_instance() {
        let inst = instance(Dag::independent(0));
        let out = SequentialScheduler::new().run(&inst).unwrap();
        assert_eq!(out.schedule.makespan, 0.0);
    }
}
