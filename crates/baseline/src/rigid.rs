//! Rigid list scheduling à la Garey–Graham: fixed allocations, no adjustment.

use crate::{BaselineOutcome, BaselineScheduler};
use mrls_core::allocators::heuristics::{HeuristicAllocator, HeuristicRule};
use mrls_core::allocators::Allocator;
use mrls_core::{ListScheduler, PriorityRule, Result};
use mrls_model::Instance;
use serde::{Deserialize, Serialize};

/// How the rigid allocation is chosen before scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RigidRule {
    /// Every job requests its fastest allocation (maximum parallelism).
    Fastest,
    /// Every job requests its cheapest (smallest-area) allocation.
    Cheapest,
    /// Every job requests the allocation minimising `t + a` — a genuine
    /// time/area compromise. (Note that `min max(t, a)` would degenerate to
    /// the fastest allocation because `a_j ≤ t_j` holds for every valid
    /// allocation.)
    Balanced,
}

impl RigidRule {
    fn heuristic(&self) -> HeuristicRule {
        match self {
            RigidRule::Fastest => HeuristicRule::MinTime,
            RigidRule::Cheapest => HeuristicRule::MinArea,
            RigidRule::Balanced => HeuristicRule::MinSum,
        }
    }

    /// Label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            RigidRule::Fastest => "rigid-fastest",
            RigidRule::Cheapest => "rigid-cheapest",
            RigidRule::Balanced => "rigid-balanced",
        }
    }
}

/// Rigid multi-resource list scheduling: freeze each job's allocation with a
/// local rule and run the greedy list scheduler (no µ-adjustment).
#[derive(Debug, Clone)]
pub struct RigidListScheduler {
    rule: RigidRule,
    priority: PriorityRule,
}

impl RigidListScheduler {
    /// Creates the baseline with the given allocation rule and priority.
    pub fn new(rule: RigidRule, priority: PriorityRule) -> Self {
        RigidListScheduler { rule, priority }
    }

    /// The allocation rule in use.
    pub fn rule(&self) -> RigidRule {
        self.rule
    }
}

impl BaselineScheduler for RigidListScheduler {
    fn run(&self, instance: &Instance) -> Result<BaselineOutcome> {
        let profiles = instance.profiles()?;
        let decision =
            HeuristicAllocator::new(self.rule.heuristic()).allocate(instance, &profiles)?;
        let schedule = ListScheduler::new(self.priority.clone()).schedule(instance, &decision)?;
        Ok(BaselineOutcome { decision, schedule })
    }

    fn name(&self) -> &'static str {
        self.rule.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrls_dag::Dag;
    use mrls_model::{Allocation, ExecTimeSpec, MoldableJob, SystemConfig};

    fn instance(n: usize) -> Instance {
        let jobs = (0..n)
            .map(|j| {
                MoldableJob::new(
                    j,
                    ExecTimeSpec::Amdahl {
                        seq: 1.0,
                        work: vec![8.0, 8.0],
                    },
                )
            })
            .collect();
        Instance::new(
            SystemConfig::new(vec![8, 8]).unwrap(),
            Dag::independent(n),
            jobs,
        )
        .unwrap()
    }

    #[test]
    fn fastest_rule_serialises_jobs() {
        // With the whole machine per job, jobs run one after another.
        let inst = instance(4);
        let out = RigidListScheduler::new(RigidRule::Fastest, PriorityRule::Fifo)
            .run(&inst)
            .unwrap();
        assert!(out
            .decision
            .iter()
            .all(|a| *a == Allocation::new(vec![8, 8])));
        // Each job takes 1 + 1 + 1 = 3, so the makespan is 12.
        assert!((out.schedule.makespan - 12.0).abs() < 1e-9);
    }

    #[test]
    fn cheapest_rule_runs_jobs_in_parallel() {
        let inst = instance(4);
        let out = RigidListScheduler::new(RigidRule::Cheapest, PriorityRule::Fifo)
            .run(&inst)
            .unwrap();
        assert!(out
            .decision
            .iter()
            .all(|a| *a == Allocation::new(vec![1, 1])));
        // All four sequential jobs fit simultaneously: makespan = 17.
        assert!((out.schedule.makespan - 17.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_rule_between_extremes() {
        let inst = instance(6);
        let fast = RigidListScheduler::new(RigidRule::Fastest, PriorityRule::Fifo)
            .run(&inst)
            .unwrap();
        let cheap = RigidListScheduler::new(RigidRule::Cheapest, PriorityRule::Fifo)
            .run(&inst)
            .unwrap();
        let balanced = RigidListScheduler::new(RigidRule::Balanced, PriorityRule::Fifo)
            .run(&inst)
            .unwrap();
        let best = fast.schedule.makespan.min(cheap.schedule.makespan);
        // Not necessarily better than both, but it must be a valid finite
        // schedule and usually competitive; sanity: within 3x of the best.
        assert!(balanced.schedule.makespan <= 3.0 * best);
    }

    #[test]
    fn names_and_rules() {
        assert_eq!(
            RigidListScheduler::new(RigidRule::Fastest, PriorityRule::Fifo).name(),
            "rigid-fastest"
        );
        assert_eq!(RigidRule::Cheapest.label(), "rigid-cheapest");
        assert_eq!(
            RigidListScheduler::new(RigidRule::Balanced, PriorityRule::Fifo).rule(),
            RigidRule::Balanced
        );
    }
}
