//! Property-based tests for the model layer: Pareto pruning and the
//! Definition 1/2 quantities.

use mrls_dag::Dag;
use mrls_model::{
    assumptions::check_assumption3, Allocation, AllocationSpace, ExecTimeSpec, Instance,
    JobProfile, MoldableJob, SystemConfig,
};
use proptest::prelude::*;

fn arb_amdahl(d: usize) -> impl Strategy<Value = ExecTimeSpec> {
    (0.0f64..5.0, proptest::collection::vec(0.5f64..20.0, d..=d))
        .prop_map(|(seq, work)| ExecTimeSpec::Amdahl { seq, work })
}

fn arb_powerlaw(d: usize) -> impl Strategy<Value = ExecTimeSpec> {
    (
        1.0f64..30.0,
        proptest::collection::vec(0.05f64..(0.9 / d as f64), d..=d),
    )
        .prop_map(|(base, alpha)| ExecTimeSpec::PowerLaw { base, alpha })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn pareto_frontier_never_contains_dominated_points(
        spec in prop_oneof![arb_amdahl(2), arb_powerlaw(2)],
        cap0 in 2u64..8,
        cap1 in 2u64..8,
    ) {
        let system = SystemConfig::new(vec![cap0, cap1]).unwrap();
        let profile = JobProfile::build(&spec, &AllocationSpace::FullGrid, &system, 0, 1_000_000)
            .unwrap();
        prop_assert!(!profile.is_empty());
        prop_assert!(profile.is_pareto_consistent());
        // The fastest point really is the minimum over the whole grid.
        let grid = AllocationSpace::FullGrid.enumerate(&system, 1_000_000).unwrap();
        let true_min = grid.iter().map(|a| spec.time(a)).fold(f64::INFINITY, f64::min);
        prop_assert!((profile.min_time_point().time - true_min).abs() < 1e-9);
    }

    #[test]
    fn assumption3_for_generated_models(
        spec in prop_oneof![arb_amdahl(2), arb_powerlaw(2)],
        cap in 2u64..6,
    ) {
        let system = SystemConfig::uniform(2, cap).unwrap();
        let report = check_assumption3(&spec, &AllocationSpace::FullGrid, &system, 1_000_000)
            .unwrap();
        prop_assert!(report.holds(), "violations: {:?}", report);
    }

    #[test]
    fn decision_metrics_bound_each_other(
        seq in 0.0f64..2.0,
        w0 in 1.0f64..10.0,
        w1 in 1.0f64..10.0,
        n in 2usize..8,
    ) {
        // On a chain, C(p) equals the sum of times and is therefore at least
        // d * A(p) / d ... more precisely A(p) <= C(p) when every job uses the
        // whole machine is not generally true; instead we check the generic
        // inequalities: L = max(A, C) >= C >= max_j t_j and A > 0.
        let system = SystemConfig::new(vec![4, 4]).unwrap();
        let dag = Dag::chain(n);
        let jobs: Vec<MoldableJob> = (0..n)
            .map(|i| MoldableJob::new(i, ExecTimeSpec::Amdahl { seq, work: vec![w0, w1] }))
            .collect();
        let inst = Instance::new(system, dag, jobs).unwrap();
        let decision = vec![Allocation::new(vec![2, 2]); n];
        let m = inst.evaluate_decision(&decision).unwrap();
        let max_t = m.times.iter().cloned().fold(0.0, f64::max);
        prop_assert!(m.critical_path + 1e-9 >= max_t);
        prop_assert!(m.lower_bound + 1e-9 >= m.critical_path);
        prop_assert!(m.lower_bound + 1e-9 >= m.average_total_area);
        prop_assert!(m.average_total_area > 0.0);
        // On a chain the critical path is the sum of all times.
        let sum_t: f64 = m.times.iter().sum();
        prop_assert!((m.critical_path - sum_t).abs() < 1e-9);
    }

    #[test]
    fn profile_queries_are_consistent(
        spec in arb_amdahl(3),
        cap in 2u64..5,
    ) {
        let system = SystemConfig::uniform(3, cap).unwrap();
        let profile = JobProfile::build(&spec, &AllocationSpace::FullGrid, &system, 0, 1_000_000)
            .unwrap();
        let fastest = profile.min_time_point();
        let cheapest = profile.min_area_point();
        prop_assert!(fastest.time <= cheapest.time + 1e-12);
        prop_assert!(cheapest.area <= fastest.area + 1e-12);
        // min_max point lies between the two extremes.
        let mm = profile.min_max_time_area_point();
        prop_assert!(mm.time.max(mm.area) <= fastest.time.max(fastest.area) + 1e-9);
        prop_assert!(mm.time.max(mm.area) <= cheapest.time.max(cheapest.area) + 1e-9);
        // Deadline queries: with deadline = fastest time we must find a point.
        prop_assert!(profile.cheapest_within_deadline(fastest.time).is_some());
        // Area queries: with budget = cheapest area we must find a point.
        prop_assert!(profile.fastest_within_area(cheapest.area).is_some());
    }
}
