//! Error type shared by the model layer.

use std::fmt;

/// Errors produced when constructing or evaluating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The system must have at least one resource type.
    NoResourceTypes,
    /// A resource capacity of zero is not allowed (Assumption 1 requires at
    /// least one allocatable unit per type).
    ZeroCapacity {
        /// The resource type index with zero capacity.
        resource: usize,
    },
    /// An allocation vector has a different dimensionality than the system.
    DimensionMismatch {
        /// Expected number of resource types.
        expected: usize,
        /// Number of entries in the offending vector.
        got: usize,
    },
    /// An allocation exceeds the capacity of a resource type.
    ExceedsCapacity {
        /// The resource type index.
        resource: usize,
        /// Requested amount.
        requested: u64,
        /// Available capacity.
        capacity: u64,
    },
    /// An allocation must request at least one unit of *some* resource type
    /// (an entirely zero request cannot execute anything).
    ZeroAllocation {
        /// A representative resource type index (always 0 for the all-zero
        /// case).
        resource: usize,
    },
    /// A job's candidate allocation space is empty.
    EmptyAllocationSpace {
        /// Job index.
        job: usize,
    },
    /// Enumerating an allocation space would exceed the configured safety
    /// limit (e.g. a full grid over huge capacities).
    AllocationSpaceTooLarge {
        /// The number of allocations that would be enumerated.
        size: u128,
        /// The configured limit.
        limit: u128,
    },
    /// The number of jobs does not match the number of DAG nodes.
    JobCountMismatch {
        /// Number of DAG nodes.
        dag_nodes: usize,
        /// Number of jobs supplied.
        jobs: usize,
    },
    /// An execution-time model produced a non-positive or non-finite time.
    InvalidExecutionTime {
        /// Job index (if known).
        job: usize,
        /// The offending value.
        value: f64,
    },
    /// An allocation decision vector has the wrong length.
    DecisionLengthMismatch {
        /// Expected number of jobs.
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// Error bubbled up from the DAG layer.
    Dag(mrls_dag::DagError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoResourceTypes => write!(f, "a system needs at least one resource type"),
            ModelError::ZeroCapacity { resource } => {
                write!(f, "resource type {resource} has zero capacity")
            }
            ModelError::DimensionMismatch { expected, got } => write!(
                f,
                "allocation has {got} entries but the system has {expected} resource types"
            ),
            ModelError::ExceedsCapacity {
                resource,
                requested,
                capacity,
            } => write!(
                f,
                "allocation requests {requested} units of resource {resource} but only {capacity} exist"
            ),
            ModelError::ZeroAllocation { resource } => write!(
                f,
                "allocation requests zero units of every resource type (first index {resource}); a job must use something"
            ),
            ModelError::EmptyAllocationSpace { job } => {
                write!(f, "job {job} has an empty candidate allocation space")
            }
            ModelError::AllocationSpaceTooLarge { size, limit } => write!(
                f,
                "allocation space has {size} points, exceeding the safety limit of {limit}"
            ),
            ModelError::JobCountMismatch { dag_nodes, jobs } => write!(
                f,
                "instance has {jobs} jobs but the precedence DAG has {dag_nodes} nodes"
            ),
            ModelError::InvalidExecutionTime { job, value } => write!(
                f,
                "execution-time model of job {job} produced invalid value {value}"
            ),
            ModelError::DecisionLengthMismatch { expected, got } => write!(
                f,
                "allocation decision has {got} entries, expected {expected}"
            ),
            ModelError::Dag(e) => write!(f, "dag error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<mrls_dag::DagError> for ModelError {
    fn from(e: mrls_dag::DagError) -> Self {
        ModelError::Dag(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_numbers() {
        let e = ModelError::ExceedsCapacity {
            resource: 1,
            requested: 9,
            capacity: 4,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));
        assert!(ModelError::NoResourceTypes
            .to_string()
            .contains("resource type"));
        assert!(ModelError::AllocationSpaceTooLarge { size: 10, limit: 5 }
            .to_string()
            .contains("safety limit"));
    }

    #[test]
    fn from_dag_error() {
        let e: ModelError = mrls_dag::DagError::EmptyGraph.into();
        assert!(matches!(e, ModelError::Dag(_)));
        assert!(e.to_string().contains("dag error"));
    }
}
