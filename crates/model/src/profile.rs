//! Job profiles: the non-dominated `(allocation, time, area)` points.
//!
//! Phase 1 of the algorithm (Section 4.1.2) discards, for every job `j`, the
//! subset `D_j` of *dominated* allocations — those for which some other
//! allocation is both strictly faster and has strictly smaller average area
//! (Equation 2) — and only works with the remaining set `N_j`. A
//! [`JobProfile`] is exactly this Pareto frontier, pre-sorted by increasing
//! execution time, which is the form both the LP relaxation and the rounding
//! step consume.

use crate::allocation::{Allocation, SystemConfig};
use crate::error::ModelError;
use crate::exectime::ExecTimeSpec;
use crate::space::AllocationSpace;
use crate::Result;
use serde::{Deserialize, Serialize};

/// One candidate allocation of a job together with its execution time and
/// average area on the target system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocPoint {
    /// The resource allocation `p_j`.
    pub alloc: Allocation,
    /// Execution time `t_j(p_j)`.
    pub time: f64,
    /// Average area `a_j(p_j) = (1/d) Σ_i p_j(i) · t_j(p_j) / P(i)`
    /// (Definition 1).
    pub area: f64,
}

impl AllocPoint {
    /// Builds a point by evaluating `spec` under `alloc` on `system`.
    pub fn evaluate(
        spec: &ExecTimeSpec,
        alloc: Allocation,
        system: &SystemConfig,
        job: usize,
    ) -> Result<AllocPoint> {
        system.validate_allocation(&alloc)?;
        let time = spec.time(&alloc);
        if !time.is_finite() || time <= 0.0 {
            return Err(ModelError::InvalidExecutionTime { job, value: time });
        }
        let area = average_area(&alloc, time, system);
        Ok(AllocPoint { alloc, time, area })
    }

    /// Work `w_j^{(i)} = p_j(i) · t_j(p_j)` on resource type `i`
    /// (Definition 1).
    pub fn work(&self, i: usize) -> f64 {
        self.alloc[i] as f64 * self.time
    }

    /// Area on a single resource type `a_j^{(i)} = w_j^{(i)} / P(i)`.
    pub fn area_on(&self, i: usize, system: &SystemConfig) -> f64 {
        self.work(i) / system.capacity(i) as f64
    }
}

/// Average area of an allocation with a given execution time (Definition 1).
pub fn average_area(alloc: &Allocation, time: f64, system: &SystemConfig) -> f64 {
    let d = system.num_resource_types();
    let sum: f64 = (0..d)
        .map(|i| alloc[i] as f64 * time / system.capacity(i) as f64)
        .sum();
    sum / d as f64
}

/// The non-dominated allocation set `N_j` of one job, sorted by increasing
/// execution time (hence non-increasing area).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    points: Vec<AllocPoint>,
}

impl JobProfile {
    /// Builds the profile of a job: enumerate the candidate allocations,
    /// evaluate the execution-time model, and prune dominated points
    /// (Equation 2).
    pub fn build(
        spec: &ExecTimeSpec,
        space: &AllocationSpace,
        system: &SystemConfig,
        job: usize,
        enumeration_limit: u128,
    ) -> Result<JobProfile> {
        let allocs = space.enumerate(system, enumeration_limit).map_err(|e| {
            if let ModelError::EmptyAllocationSpace { .. } = e {
                ModelError::EmptyAllocationSpace { job }
            } else {
                e
            }
        })?;
        // Allocations on which the model cannot run (e.g. zero units of a
        // resource type the job genuinely needs → infinite time) are simply
        // not usable points; drop them. Only error out if nothing remains.
        let mut points = Vec::with_capacity(allocs.len());
        let mut last_invalid = 0.0f64;
        for alloc in allocs {
            system.validate_allocation(&alloc)?;
            let time = spec.time(&alloc);
            if !time.is_finite() || time <= 0.0 {
                last_invalid = time;
                continue;
            }
            let area = average_area(&alloc, time, system);
            points.push(AllocPoint { alloc, time, area });
        }
        if points.is_empty() {
            return Err(ModelError::InvalidExecutionTime {
                job,
                value: last_invalid,
            });
        }
        Ok(JobProfile::from_points(points, job))
    }

    /// Builds a profile from explicit points, pruning dominated ones. The
    /// `job` index is only used for error attribution by callers; an empty
    /// point set yields an empty profile.
    pub fn from_points(mut points: Vec<AllocPoint>, _job: usize) -> JobProfile {
        // Sort by (time asc, area asc) and sweep keeping the running minimum
        // area: a point is dominated iff some strictly faster point has
        // strictly smaller area (Equation 2 uses strict inequalities on both
        // coordinates).
        points.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    a.area
                        .partial_cmp(&b.area)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        });
        let mut kept: Vec<AllocPoint> = Vec::new();
        let mut best_area_strictly_faster = f64::INFINITY;
        let mut i = 0usize;
        while i < points.len() {
            // Process all points with (numerically) equal time together: they
            // cannot dominate each other via Equation 2's strict time
            // inequality.
            let t = points[i].time;
            let mut group_end = i;
            while group_end < points.len() && (points[group_end].time - t).abs() <= 1e-12 {
                group_end += 1;
            }
            for p in &points[i..group_end] {
                // Equation 2 uses *strict* inequalities on both coordinates:
                // a point is dominated only if some strictly faster point has
                // strictly smaller area.
                if p.area <= best_area_strictly_faster {
                    kept.push(p.clone());
                }
            }
            let group_min_area = points[i..group_end]
                .iter()
                .map(|p| p.area)
                .fold(f64::INFINITY, f64::min);
            best_area_strictly_faster = best_area_strictly_faster.min(group_min_area);
            i = group_end;
        }
        JobProfile { points: kept }
    }

    /// The non-dominated points, sorted by increasing time.
    pub fn points(&self) -> &[AllocPoint] {
        &self.points
    }

    /// Number of non-dominated points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the profile has no points (only possible for pathological
    /// inputs; [`JobProfile::build`] errors out instead).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The fastest point (minimum execution time).
    pub fn min_time_point(&self) -> &AllocPoint {
        self.points
            .first()
            .expect("profiles are built from at least one allocation")
    }

    /// The cheapest point (minimum average area; ties broken towards the
    /// faster point because the scan keeps the first strictly-smaller area).
    pub fn min_area_point(&self) -> &AllocPoint {
        self.points
            .iter()
            .min_by(|a, b| {
                a.area
                    .partial_cmp(&b.area)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("profiles are built from at least one allocation")
    }

    /// The point with the smallest `max(time, area)`, a handy single-job
    /// proxy for `L_min`.
    pub fn min_max_time_area_point(&self) -> &AllocPoint {
        self.points
            .iter()
            .min_by(|a, b| {
                a.time
                    .max(a.area)
                    .partial_cmp(&b.time.max(b.area))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("profiles are built from at least one allocation")
    }

    /// Among points with `time ≤ deadline`, the one with the smallest area;
    /// `None` if no point is fast enough. This is the inner step of the
    /// independent-job optimal allocator (Lemma 8).
    pub fn cheapest_within_deadline(&self, deadline: f64) -> Option<&AllocPoint> {
        self.points
            .iter()
            .filter(|p| p.time <= deadline + 1e-12)
            .min_by(|a, b| {
                a.area
                    .partial_cmp(&b.area)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// The fastest point among those with area at most `area_budget`;
    /// `None` if even the cheapest point exceeds the budget.
    pub fn fastest_within_area(&self, area_budget: f64) -> Option<&AllocPoint> {
        self.points.iter().find(|p| p.area <= area_budget + 1e-12)
    }

    /// Finds the profile point for a specific allocation, if it is on the
    /// frontier.
    pub fn point_for(&self, alloc: &Allocation) -> Option<&AllocPoint> {
        self.points.iter().find(|p| &p.alloc == alloc)
    }

    /// Checks the Pareto invariant: the points are sorted by non-decreasing
    /// time and no point is dominated (Equation 2) by another point of the
    /// profile.
    pub fn is_pareto_consistent(&self) -> bool {
        for w in self.points.windows(2) {
            if w[1].time < w[0].time - 1e-12 {
                return false;
            }
        }
        for (i, p) in self.points.iter().enumerate() {
            for (k, q) in self.points.iter().enumerate() {
                if i != k && q.time < p.time - 1e-12 && q.area < p.area - 1e-12 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DEFAULT_ENUMERATION_LIMIT;

    fn system2() -> SystemConfig {
        SystemConfig::new(vec![4, 8]).unwrap()
    }

    fn amdahl2() -> ExecTimeSpec {
        ExecTimeSpec::Amdahl {
            seq: 1.0,
            work: vec![8.0, 8.0],
        }
    }

    #[test]
    fn average_area_definition() {
        let s = system2();
        let alloc = Allocation::new(vec![2, 4]);
        // w1 = 2t, a1 = 2t/4; w2 = 4t, a2 = 4t/8; average = (0.5t + 0.5t)/2
        let a = average_area(&alloc, 10.0, &s);
        assert!((a - 5.0).abs() < 1e-12);
    }

    #[test]
    fn build_profile_prunes_dominated() {
        let s = system2();
        let profile = JobProfile::build(
            &amdahl2(),
            &AllocationSpace::FullGrid,
            &s,
            0,
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        assert!(!profile.is_empty());
        assert!(profile.is_pareto_consistent());
        // The fastest point must be the full allocation for a pure Amdahl
        // profile.
        assert_eq!(profile.min_time_point().alloc, Allocation::new(vec![4, 8]));
        // The cheapest point is the all-ones allocation.
        assert_eq!(profile.min_area_point().alloc, Allocation::new(vec![1, 1]));
        // Far fewer points than the 32 grid points survive.
        assert!(profile.len() < 32);
    }

    #[test]
    fn explicit_points_domination() {
        let mk = |t: f64, a: f64| AllocPoint {
            alloc: Allocation::new(vec![1]),
            time: t,
            area: a,
        };
        let profile = JobProfile::from_points(
            vec![mk(1.0, 5.0), mk(2.0, 3.0), mk(3.0, 4.0), mk(4.0, 1.0)],
            0,
        );
        // (3.0, 4.0) is dominated by (2.0, 3.0).
        assert_eq!(profile.len(), 3);
        assert!(profile.is_pareto_consistent());
    }

    #[test]
    fn equal_time_points_do_not_dominate_each_other() {
        let mk = |t: f64, a: f64| AllocPoint {
            alloc: Allocation::new(vec![1]),
            time: t,
            area: a,
        };
        let profile = JobProfile::from_points(vec![mk(1.0, 5.0), mk(1.0, 3.0)], 0);
        // Equation 2 requires *strictly* smaller time, so both survive.
        assert_eq!(profile.len(), 2);
    }

    #[test]
    fn strictly_dominated_by_faster_and_cheaper_is_removed() {
        let mk = |t: f64, a: f64| AllocPoint {
            alloc: Allocation::new(vec![1]),
            time: t,
            area: a,
        };
        let profile = JobProfile::from_points(vec![mk(1.0, 1.0), mk(2.0, 2.0)], 0);
        assert_eq!(profile.len(), 1);
        assert!((profile.min_time_point().time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deadline_and_area_queries() {
        let s = system2();
        let profile = JobProfile::build(
            &amdahl2(),
            &AllocationSpace::FullGrid,
            &s,
            0,
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        let fastest = profile.min_time_point().time;
        let cheapest_area = profile.min_area_point().area;
        // With a deadline equal to the fastest time, we get a point at that
        // time; with a huge deadline we get the cheapest point.
        let p1 = profile.cheapest_within_deadline(fastest).unwrap();
        assert!(p1.time <= fastest + 1e-12);
        let p2 = profile.cheapest_within_deadline(1e12).unwrap();
        assert!((p2.area - cheapest_area).abs() < 1e-12);
        // Impossible deadline.
        assert!(profile.cheapest_within_deadline(fastest * 0.5).is_none());
        // Area queries.
        let q1 = profile.fastest_within_area(cheapest_area).unwrap();
        assert!(q1.area <= cheapest_area + 1e-12);
        assert!(profile.fastest_within_area(cheapest_area * 0.5).is_none());
    }

    #[test]
    fn point_for_lookup() {
        let s = system2();
        let profile = JobProfile::build(
            &amdahl2(),
            &AllocationSpace::FullGrid,
            &s,
            0,
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        let full = Allocation::new(vec![4, 8]);
        assert!(profile.point_for(&full).is_some());
        // A dominated allocation is absent: (4, 1) has t = 1 + 2 + 8 = 11 and
        // average area 6.19, while (2, 3) achieves t = 7.67 and area 3.35 —
        // both strictly better — so Pareto pruning must have dropped (4, 1).
        assert!(profile.point_for(&Allocation::new(vec![2, 3])).is_some());
        assert!(profile.point_for(&Allocation::new(vec![4, 1])).is_none());
    }

    #[test]
    fn work_and_per_resource_area() {
        let s = system2();
        let p = AllocPoint::evaluate(&amdahl2(), Allocation::new(vec![2, 2]), &s, 0).unwrap();
        // t = 1 + 4 + 4 = 9
        assert!((p.time - 9.0).abs() < 1e-12);
        assert!((p.work(0) - 18.0).abs() < 1e-12);
        assert!((p.area_on(0, &s) - 4.5).abs() < 1e-12);
        assert!((p.area_on(1, &s) - 2.25).abs() < 1e-12);
        assert!((p.area - (4.5 + 2.25) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_time_rejected() {
        let bad = ExecTimeSpec::Constant { time: 0.0 };
        let s = system2();
        assert!(matches!(
            AllocPoint::evaluate(&bad, Allocation::new(vec![1, 1]), &s, 3),
            Err(ModelError::InvalidExecutionTime { job: 3, .. })
        ));
        // A profile whose model can never run errors out as well.
        assert!(matches!(
            JobProfile::build(&bad, &AllocationSpace::FullGrid, &s, 3, 1_000_000),
            Err(ModelError::InvalidExecutionTime { job: 3, .. })
        ));
    }

    #[test]
    fn zero_component_points_are_dropped_not_fatal() {
        // A job that needs only resource type 0: allocations with zero units
        // of type 1 are fine, allocations with zero units of type 0 are
        // unusable and silently dropped.
        let s = system2();
        let spec = ExecTimeSpec::Amdahl {
            seq: 0.5,
            work: vec![4.0, 0.0],
        };
        let space = AllocationSpace::Explicit(vec![
            Allocation::new(vec![0, 1]),
            Allocation::new(vec![1, 0]),
            Allocation::new(vec![2, 0]),
        ]);
        let profile = JobProfile::build(&spec, &space, &s, 0, 1_000_000).unwrap();
        assert_eq!(profile.len(), 2);
        assert!(profile.points().iter().all(|p| p.alloc[0] >= 1));
    }

    #[test]
    fn comm_penalty_profile_is_pareto() {
        let s = SystemConfig::new(vec![16]).unwrap();
        let spec = ExecTimeSpec::CommPenalty {
            seq: 0.5,
            work: vec![16.0],
            comm: vec![0.4],
        };
        let profile = JobProfile::build(
            &spec,
            &AllocationSpace::FullGrid,
            &s,
            0,
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        assert!(profile.is_pareto_consistent());
        // Very large allocations are dominated because the overhead makes
        // them both slower and larger in area.
        assert!(profile.min_time_point().alloc[0] < 16);
    }

    #[test]
    fn serde_roundtrip() {
        let s = system2();
        let profile = JobProfile::build(
            &amdahl2(),
            &AllocationSpace::PowersOfTwo,
            &s,
            0,
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        let json = serde_json::to_string(&profile).unwrap();
        let back: JobProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(profile, back);
    }
}
