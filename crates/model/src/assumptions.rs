//! Numerical checkers for the paper's Assumption 3 (monotonic jobs with
//! non-superlinear speedup).
//!
//! The assumption states that, for any two comparable allocations
//! `p ⪯ q`:
//!
//! ```text
//! t(q) ≤ t(p) ≤ (max_i q_i / p_i) · t(q)
//! ```
//!
//! The checkers below verify the two inequalities over a candidate grid.
//! Workload generators use them in tests to guarantee that generated
//! instances really fall inside the model the theorems cover, and the
//! profile layer relies on the fact that pruning dominated allocations never
//! breaks the assumption for the remaining frontier.

use crate::allocation::{Allocation, SystemConfig};
use crate::exectime::ExecTimeSpec;
use crate::space::AllocationSpace;
use crate::Result;

/// The outcome of checking Assumption 3 on a grid of allocations.
#[derive(Debug, Clone, PartialEq)]
pub struct AssumptionReport {
    /// Number of comparable pairs checked.
    pub pairs_checked: usize,
    /// Pairs violating monotonicity (`t(q) > t(p)` for `p ⪯ q`).
    pub monotonicity_violations: Vec<(Allocation, Allocation)>,
    /// Pairs violating the non-superlinear bound
    /// (`t(p) > max_i(q_i/p_i) · t(q)`).
    pub superlinearity_violations: Vec<(Allocation, Allocation)>,
}

impl AssumptionReport {
    /// `true` iff both parts of Assumption 3 hold on the checked grid.
    pub fn holds(&self) -> bool {
        self.monotonicity_violations.is_empty() && self.superlinearity_violations.is_empty()
    }
}

/// Checks Assumption 3 for `spec` over every comparable pair of allocations in
/// `space` on `system`. Relative tolerance `1e-9`.
pub fn check_assumption3(
    spec: &ExecTimeSpec,
    space: &AllocationSpace,
    system: &SystemConfig,
    enumeration_limit: u128,
) -> Result<AssumptionReport> {
    let allocs = space.enumerate(system, enumeration_limit)?;
    let times: Vec<f64> = allocs.iter().map(|a| spec.time(a)).collect();
    let mut report = AssumptionReport {
        pairs_checked: 0,
        monotonicity_violations: Vec::new(),
        superlinearity_violations: Vec::new(),
    };
    for (i, p) in allocs.iter().enumerate() {
        for (j, q) in allocs.iter().enumerate() {
            if i == j || !p.dominated_by(q) {
                continue;
            }
            report.pairs_checked += 1;
            let (tp, tq) = (times[i], times[j]);
            let tol = 1e-9 * (1.0 + tp.abs().max(tq.abs()));
            if tq > tp + tol {
                report.monotonicity_violations.push((p.clone(), q.clone()));
            }
            let ratio = p.max_ratio_from(q);
            if tp > ratio * tq + tol {
                report
                    .superlinearity_violations
                    .push((p.clone(), q.clone()));
            }
        }
    }
    Ok(report)
}

/// Checks only the *non-superlinearity* half of Assumption 3, which is the part
/// Lemma 4 (the µ-adjustment) relies on. Monotonicity may legitimately fail
/// for raw models with overheads (e.g. [`ExecTimeSpec::CommPenalty`]); the
/// dominated-allocation filter removes those points before the algorithm ever
/// sees them.
pub fn check_non_superlinearity(
    spec: &ExecTimeSpec,
    space: &AllocationSpace,
    system: &SystemConfig,
    enumeration_limit: u128,
) -> Result<bool> {
    let report = check_assumption3(spec, space, system, enumeration_limit)?;
    Ok(report.superlinearity_violations.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DEFAULT_ENUMERATION_LIMIT;

    fn sys() -> SystemConfig {
        SystemConfig::new(vec![4, 4]).unwrap()
    }

    #[test]
    fn amdahl_satisfies_assumption3() {
        let spec = ExecTimeSpec::Amdahl {
            seq: 1.0,
            work: vec![6.0, 3.0],
        };
        let report = check_assumption3(
            &spec,
            &AllocationSpace::FullGrid,
            &sys(),
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        assert!(report.holds(), "violations: {report:?}");
        assert!(report.pairs_checked > 0);
    }

    #[test]
    fn powerlaw_with_small_exponents_satisfies() {
        let spec = ExecTimeSpec::PowerLaw {
            base: 10.0,
            alpha: vec![0.6, 0.4],
        };
        let report = check_assumption3(
            &spec,
            &AllocationSpace::FullGrid,
            &sys(),
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        assert!(report.holds());
    }

    #[test]
    fn superlinear_powerlaw_detected() {
        // Σ alpha = 1.6 > 1: the combined speedup is superlinear and must be
        // flagged.
        let spec = ExecTimeSpec::PowerLaw {
            base: 10.0,
            alpha: vec![0.8, 0.8],
        };
        let report = check_assumption3(
            &spec,
            &AllocationSpace::FullGrid,
            &sys(),
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        assert!(!report.superlinearity_violations.is_empty());
        assert!(!report.holds());
    }

    #[test]
    fn comm_penalty_fails_monotonicity_but_not_superlinearity() {
        let spec = ExecTimeSpec::CommPenalty {
            seq: 0.0,
            work: vec![4.0, 4.0],
            comm: vec![2.0, 2.0],
        };
        let report = check_assumption3(
            &spec,
            &AllocationSpace::FullGrid,
            &sys(),
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        assert!(!report.monotonicity_violations.is_empty());
        assert!(check_non_superlinearity(
            &spec,
            &AllocationSpace::FullGrid,
            &sys(),
            DEFAULT_ENUMERATION_LIMIT
        )
        .unwrap());
    }

    #[test]
    fn constant_model_trivially_holds_monotonicity() {
        let spec = ExecTimeSpec::Constant { time: 3.0 };
        let report = check_assumption3(
            &spec,
            &AllocationSpace::FullGrid,
            &sys(),
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        assert!(report.monotonicity_violations.is_empty());
        assert!(report.holds());
    }

    #[test]
    fn roofline_satisfies_assumption3() {
        let spec = ExecTimeSpec::Roofline {
            work: 24.0,
            plateau: vec![3, 4],
        };
        let report = check_assumption3(
            &spec,
            &AllocationSpace::FullGrid,
            &sys(),
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        assert!(report.holds());
    }
}
