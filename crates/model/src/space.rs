//! Candidate allocation spaces.
//!
//! Phase 1 of the algorithm works on the set `S` of possible resource
//! allocations of a job; the paper enumerates all `Q = Π_i P(i)` of them.
//! That is fine for small systems but explodes combinatorially, so this
//! module also offers restricted candidate grids (per-axis value lists,
//! powers of two). Restricting the candidate set only *removes* moldability
//! options — every remaining allocation still satisfies Assumptions 1–3 — so
//! all guarantees that are relative to the best allocation *within the
//! candidate set* continue to hold; this substitution is documented in
//! DESIGN.md.

use crate::allocation::{Allocation, SystemConfig};
use crate::error::ModelError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Safety limit on the number of allocations a single job may enumerate.
pub const DEFAULT_ENUMERATION_LIMIT: u128 = 2_000_000;

/// A description of which allocations a job may choose from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationSpace {
    /// Every integral allocation `1 ≤ p_i ≤ P(i)` (the paper's set `S`).
    FullGrid,
    /// Per resource type, only powers of two up to the capacity (plus the
    /// capacity itself). Keeps `O(Π log P(i))` candidates.
    PowersOfTwo,
    /// Explicit candidate values per resource type (the cartesian product is
    /// enumerated). Values outside `[1, P(i)]` are clamped/skipped.
    PerAxis(Vec<Vec<u64>>),
    /// An explicit list of candidate allocations.
    Explicit(Vec<Allocation>),
}

impl AllocationSpace {
    /// Enumerates the candidate allocations for a system, respecting the
    /// safety `limit` on the number of points (use
    /// [`DEFAULT_ENUMERATION_LIMIT`] unless you know better).
    pub fn enumerate(&self, system: &SystemConfig, limit: u128) -> Result<Vec<Allocation>> {
        let d = system.num_resource_types();
        match self {
            AllocationSpace::FullGrid => {
                let size = system.full_grid_size();
                if size > limit {
                    return Err(ModelError::AllocationSpaceTooLarge { size, limit });
                }
                let axes: Vec<Vec<u64>> =
                    (0..d).map(|i| (1..=system.capacity(i)).collect()).collect();
                Ok(cartesian(&axes))
            }
            AllocationSpace::PowersOfTwo => {
                let axes: Vec<Vec<u64>> = (0..d)
                    .map(|i| {
                        let cap = system.capacity(i);
                        let mut vals: Vec<u64> = Vec::new();
                        let mut v = 1u64;
                        while v <= cap {
                            vals.push(v);
                            v = v.saturating_mul(2);
                        }
                        if *vals.last().expect("at least 1") != cap {
                            vals.push(cap);
                        }
                        vals
                    })
                    .collect();
                let size: u128 = axes.iter().map(|a| a.len() as u128).product();
                if size > limit {
                    return Err(ModelError::AllocationSpaceTooLarge { size, limit });
                }
                Ok(cartesian(&axes))
            }
            AllocationSpace::PerAxis(values) => {
                if values.len() != d {
                    return Err(ModelError::DimensionMismatch {
                        expected: d,
                        got: values.len(),
                    });
                }
                let axes: Vec<Vec<u64>> = values
                    .iter()
                    .enumerate()
                    .map(|(i, vals)| {
                        let mut v: Vec<u64> = vals
                            .iter()
                            .copied()
                            .filter(|&x| x >= 1 && x <= system.capacity(i))
                            .collect();
                        v.sort_unstable();
                        v.dedup();
                        v
                    })
                    .collect();
                if axes.iter().any(|a| a.is_empty()) {
                    return Err(ModelError::EmptyAllocationSpace { job: usize::MAX });
                }
                let size: u128 = axes.iter().map(|a| a.len() as u128).product();
                if size > limit {
                    return Err(ModelError::AllocationSpaceTooLarge { size, limit });
                }
                Ok(cartesian(&axes))
            }
            AllocationSpace::Explicit(allocs) => {
                let mut out = Vec::new();
                for alloc in allocs {
                    system.validate_allocation(alloc)?;
                    out.push(alloc.clone());
                }
                if out.is_empty() {
                    return Err(ModelError::EmptyAllocationSpace { job: usize::MAX });
                }
                if out.len() as u128 > limit {
                    return Err(ModelError::AllocationSpaceTooLarge {
                        size: out.len() as u128,
                        limit,
                    });
                }
                Ok(out)
            }
        }
    }

    /// Number of candidate allocations without materialising them.
    pub fn size(&self, system: &SystemConfig) -> u128 {
        match self {
            AllocationSpace::FullGrid => system.full_grid_size(),
            AllocationSpace::PowersOfTwo => (0..system.num_resource_types())
                .map(|i| {
                    let cap = system.capacity(i);
                    let mut count = 0u128;
                    let mut v = 1u64;
                    while v <= cap {
                        count += 1;
                        v = v.saturating_mul(2);
                    }
                    let last_pow = 1u64 << (63 - cap.leading_zeros().min(63));
                    if last_pow != cap {
                        count += 1;
                    }
                    count
                })
                .product(),
            AllocationSpace::PerAxis(values) => values
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    v.iter()
                        .filter(|&&x| x >= 1 && x <= system.capacity(i))
                        .collect::<std::collections::BTreeSet<_>>()
                        .len() as u128
                })
                .product(),
            AllocationSpace::Explicit(a) => a.len() as u128,
        }
    }
}

/// Cartesian product of per-axis value lists, in lexicographic order.
fn cartesian(axes: &[Vec<u64>]) -> Vec<Allocation> {
    let mut out = Vec::new();
    let mut current = vec![0u64; axes.len()];
    fn rec(axes: &[Vec<u64>], depth: usize, current: &mut Vec<u64>, out: &mut Vec<Allocation>) {
        if depth == axes.len() {
            out.push(Allocation::new(current.clone()));
            return;
        }
        for &v in &axes[depth] {
            current[depth] = v;
            rec(axes, depth + 1, current, out);
        }
    }
    rec(axes, 0, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_small() {
        let s = SystemConfig::new(vec![2, 3]).unwrap();
        let allocs = AllocationSpace::FullGrid
            .enumerate(&s, DEFAULT_ENUMERATION_LIMIT)
            .unwrap();
        assert_eq!(allocs.len(), 6);
        assert!(allocs.contains(&Allocation::new(vec![1, 1])));
        assert!(allocs.contains(&Allocation::new(vec![2, 3])));
        assert_eq!(AllocationSpace::FullGrid.size(&s), 6);
    }

    #[test]
    fn full_grid_respects_limit() {
        let s = SystemConfig::new(vec![1000, 1000, 1000]).unwrap();
        let err = AllocationSpace::FullGrid.enumerate(&s, 1000).unwrap_err();
        assert!(matches!(err, ModelError::AllocationSpaceTooLarge { .. }));
    }

    #[test]
    fn powers_of_two_include_capacity() {
        let s = SystemConfig::new(vec![12]).unwrap();
        let allocs = AllocationSpace::PowersOfTwo
            .enumerate(&s, DEFAULT_ENUMERATION_LIMIT)
            .unwrap();
        let values: Vec<u64> = allocs.iter().map(|a| a[0]).collect();
        assert_eq!(values, vec![1, 2, 4, 8, 12]);
    }

    #[test]
    fn powers_of_two_exact_capacity_power() {
        let s = SystemConfig::new(vec![8]).unwrap();
        let allocs = AllocationSpace::PowersOfTwo
            .enumerate(&s, DEFAULT_ENUMERATION_LIMIT)
            .unwrap();
        let values: Vec<u64> = allocs.iter().map(|a| a[0]).collect();
        assert_eq!(values, vec![1, 2, 4, 8]);
    }

    #[test]
    fn per_axis_filters_and_dedups() {
        let s = SystemConfig::new(vec![4, 4]).unwrap();
        let space = AllocationSpace::PerAxis(vec![vec![1, 2, 2, 9], vec![4, 1]]);
        let allocs = space.enumerate(&s, DEFAULT_ENUMERATION_LIMIT).unwrap();
        assert_eq!(allocs.len(), 4); // {1,2} x {1,4}
        assert!(allocs.contains(&Allocation::new(vec![2, 4])));
    }

    #[test]
    fn per_axis_dimension_mismatch() {
        let s = SystemConfig::new(vec![4, 4]).unwrap();
        let space = AllocationSpace::PerAxis(vec![vec![1]]);
        assert!(matches!(
            space.enumerate(&s, DEFAULT_ENUMERATION_LIMIT),
            Err(ModelError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn per_axis_empty_axis() {
        let s = SystemConfig::new(vec![4]).unwrap();
        let space = AllocationSpace::PerAxis(vec![vec![99]]);
        assert!(matches!(
            space.enumerate(&s, DEFAULT_ENUMERATION_LIMIT),
            Err(ModelError::EmptyAllocationSpace { .. })
        ));
    }

    #[test]
    fn explicit_validation() {
        let s = SystemConfig::new(vec![4]).unwrap();
        let ok = AllocationSpace::Explicit(vec![Allocation::new(vec![2])]);
        assert_eq!(ok.enumerate(&s, 10).unwrap().len(), 1);
        let bad = AllocationSpace::Explicit(vec![Allocation::new(vec![9])]);
        assert!(bad.enumerate(&s, 10).is_err());
        let empty = AllocationSpace::Explicit(vec![]);
        assert!(empty.enumerate(&s, 10).is_err());
    }

    #[test]
    fn cartesian_order_is_lexicographic() {
        let s = SystemConfig::new(vec![2, 2]).unwrap();
        let allocs = AllocationSpace::FullGrid
            .enumerate(&s, DEFAULT_ENUMERATION_LIMIT)
            .unwrap();
        let amounts: Vec<Vec<u64>> = allocs.iter().map(|a| a.amounts().to_vec()).collect();
        assert_eq!(
            amounts,
            vec![vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2]]
        );
    }

    #[test]
    fn serde_roundtrip() {
        let space = AllocationSpace::PerAxis(vec![vec![1, 2], vec![3]]);
        let json = serde_json::to_string(&space).unwrap();
        let back: AllocationSpace = serde_json::from_str(&json).unwrap();
        assert_eq!(space, back);
    }
}
