//! The aggregate quantities of Definitions 1 and 2: work, area, total area,
//! critical path and the makespan lower bound `L(p)`.

use crate::allocation::Allocation;
use crate::instance::Instance;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A full resource-allocation decision `p = (p_1, …, p_n)`: one allocation per
/// job, indexed like the DAG nodes.
pub type AllocationDecision = Vec<Allocation>;

/// The aggregate quantities of Definition 2 evaluated for a specific
/// allocation decision on a specific instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceMetrics {
    /// Execution time of every job under its chosen allocation.
    pub times: Vec<f64>,
    /// Total work `W^{(i)}(p)` per resource type.
    pub total_work: Vec<f64>,
    /// Total area `A^{(i)}(p)` per resource type.
    pub total_area_per_type: Vec<f64>,
    /// Average total area `A(p)` over all resource types.
    pub average_total_area: f64,
    /// Critical-path length `C(p)`.
    pub critical_path: f64,
    /// `L(p) = max(A(p), C(p))` — the per-decision lower bound of Lemma 1.
    pub lower_bound: f64,
}

impl Instance {
    /// Evaluates every quantity of Definition 2 for the allocation decision
    /// `p`. Each allocation is validated against the system.
    pub fn evaluate_decision(&self, decision: &AllocationDecision) -> Result<InstanceMetrics> {
        let n = self.num_jobs();
        if decision.len() != n {
            return Err(crate::error::ModelError::DecisionLengthMismatch {
                expected: n,
                got: decision.len(),
            });
        }
        let d = self.system.num_resource_types();
        let mut times = Vec::with_capacity(n);
        let mut total_work = vec![0.0f64; d];
        for (j, alloc) in decision.iter().enumerate() {
            self.system.validate_allocation(alloc)?;
            let t = self.jobs[j].spec.time(alloc);
            if !t.is_finite() || t <= 0.0 {
                return Err(crate::error::ModelError::InvalidExecutionTime { job: j, value: t });
            }
            for (i, w) in total_work.iter_mut().enumerate() {
                *w += alloc[i] as f64 * t;
            }
            times.push(t);
        }
        let total_area_per_type: Vec<f64> = (0..d)
            .map(|i| total_work[i] / self.system.capacity(i) as f64)
            .collect();
        let average_total_area = total_area_per_type.iter().sum::<f64>() / d as f64;
        let critical_path = self.dag.critical_path_length(&times);
        Ok(InstanceMetrics {
            times,
            total_work,
            total_area_per_type,
            average_total_area,
            critical_path,
            lower_bound: average_total_area.max(critical_path),
        })
    }

    /// Convenience: evaluates only `L(p) = max(A(p), C(p))`.
    pub fn lower_bound_of(&self, decision: &AllocationDecision) -> Result<f64> {
        Ok(self.evaluate_decision(decision)?.lower_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::SystemConfig;
    use crate::exectime::ExecTimeSpec;
    use crate::instance::Instance;
    use crate::job::MoldableJob;
    use mrls_dag::Dag;

    fn small_instance() -> Instance {
        // Two resource types with capacities 4 and 2; a chain of 3 jobs.
        let system = SystemConfig::new(vec![4, 2]).unwrap();
        let dag = Dag::chain(3);
        let jobs = (0..3)
            .map(|i| {
                MoldableJob::new(
                    i,
                    ExecTimeSpec::Amdahl {
                        seq: 1.0,
                        work: vec![4.0, 2.0],
                    },
                )
            })
            .collect();
        Instance::new(system, dag, jobs).unwrap()
    }

    #[test]
    fn metrics_for_all_ones() {
        let inst = small_instance();
        let decision: AllocationDecision = vec![Allocation::ones(2); 3];
        let m = inst.evaluate_decision(&decision).unwrap();
        // Each job: t = 1 + 4 + 2 = 7.
        assert!(m.times.iter().all(|&t| (t - 7.0).abs() < 1e-12));
        // Work per type: 3 jobs * 1 unit * 7 = 21.
        assert!((m.total_work[0] - 21.0).abs() < 1e-12);
        assert!((m.total_work[1] - 21.0).abs() < 1e-12);
        // Areas: 21/4 and 21/2; average = (5.25 + 10.5)/2 = 7.875.
        assert!((m.average_total_area - 7.875).abs() < 1e-12);
        // Chain: critical path = 21.
        assert!((m.critical_path - 21.0).abs() < 1e-12);
        assert!((m.lower_bound - 21.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_for_full_allocation() {
        let inst = small_instance();
        let decision: AllocationDecision = vec![Allocation::new(vec![4, 2]); 3];
        let m = inst.evaluate_decision(&decision).unwrap();
        // Each job: t = 1 + 1 + 1 = 3; critical path 9.
        assert!((m.critical_path - 9.0).abs() < 1e-12);
        // Work type 0: 4*3*3 = 36; area = 9. Type 1: 2*3*3=18; area 9.
        assert!((m.average_total_area - 9.0).abs() < 1e-12);
        assert!((m.lower_bound - 9.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_length_decision() {
        let inst = small_instance();
        let decision: AllocationDecision = vec![Allocation::ones(2); 2];
        assert!(inst.evaluate_decision(&decision).is_err());
    }

    #[test]
    fn invalid_allocation_rejected() {
        let inst = small_instance();
        let mut decision: AllocationDecision = vec![Allocation::ones(2); 3];
        decision[1] = Allocation::new(vec![9, 1]);
        assert!(inst.evaluate_decision(&decision).is_err());
    }

    #[test]
    fn lower_bound_shortcut_matches() {
        let inst = small_instance();
        let decision: AllocationDecision = vec![Allocation::new(vec![2, 1]); 3];
        let m = inst.evaluate_decision(&decision).unwrap();
        assert!((inst.lower_bound_of(&decision).unwrap() - m.lower_bound).abs() < 1e-12);
    }
}
