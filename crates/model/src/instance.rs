//! A complete scheduling problem instance.

use crate::allocation::SystemConfig;
use crate::error::ModelError;
use crate::job::MoldableJob;
use crate::profile::JobProfile;
use crate::Result;
use mrls_dag::{Dag, GraphClass};
use serde::{Deserialize, Serialize};

/// A multi-resource moldable scheduling instance: the platform, the precedence
/// DAG, and one moldable job per DAG node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Resource capacities `P(1), …, P(d)`.
    pub system: SystemConfig,
    /// Precedence constraints; node `j` corresponds to `jobs[j]`.
    pub dag: Dag,
    /// The moldable jobs.
    pub jobs: Vec<MoldableJob>,
}

impl Instance {
    /// Creates an instance, checking that the job list matches the DAG.
    pub fn new(system: SystemConfig, dag: Dag, jobs: Vec<MoldableJob>) -> Result<Self> {
        if dag.num_nodes() != jobs.len() {
            return Err(ModelError::JobCountMismatch {
                dag_nodes: dag.num_nodes(),
                jobs: jobs.len(),
            });
        }
        Ok(Instance { system, dag, jobs })
    }

    /// Number of jobs `n`.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of resource types `d`.
    pub fn num_resource_types(&self) -> usize {
        self.system.num_resource_types()
    }

    /// Builds the non-dominated profile of every job (Equation 2). This is
    /// the input Phase 1 of the scheduling algorithm consumes.
    pub fn profiles(&self) -> Result<Vec<JobProfile>> {
        self.jobs
            .iter()
            .enumerate()
            .map(|(j, job)| job.profile(&self.system, j))
            .collect()
    }

    /// Classification of the precedence graph (drives which specialised
    /// allocator and which theorem applies).
    pub fn graph_class(&self) -> GraphClass {
        self.dag.classify()
    }

    /// Serialises the instance to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("instances are always serialisable")
    }

    /// Parses an instance from JSON.
    pub fn from_json(s: &str) -> std::result::Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exectime::ExecTimeSpec;
    use mrls_dag::Dag;

    fn jobs(n: usize) -> Vec<MoldableJob> {
        (0..n)
            .map(|i| {
                MoldableJob::new(
                    i,
                    ExecTimeSpec::Amdahl {
                        seq: 0.5,
                        work: vec![4.0, 2.0],
                    },
                )
            })
            .collect()
    }

    #[test]
    fn construction_checks_job_count() {
        let system = SystemConfig::new(vec![4, 4]).unwrap();
        let err = Instance::new(system.clone(), Dag::chain(3), jobs(2)).unwrap_err();
        assert!(matches!(err, ModelError::JobCountMismatch { .. }));
        let ok = Instance::new(system, Dag::chain(3), jobs(3)).unwrap();
        assert_eq!(ok.num_jobs(), 3);
        assert_eq!(ok.num_resource_types(), 2);
    }

    #[test]
    fn profiles_one_per_job() {
        let system = SystemConfig::new(vec![4, 4]).unwrap();
        let inst = Instance::new(system, Dag::independent(4), jobs(4)).unwrap();
        let profiles = inst.profiles().unwrap();
        assert_eq!(profiles.len(), 4);
        assert!(profiles.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn graph_class_passthrough() {
        let system = SystemConfig::new(vec![4, 4]).unwrap();
        let inst = Instance::new(system, Dag::independent(3), jobs(3)).unwrap();
        assert_eq!(inst.graph_class(), mrls_dag::GraphClass::Independent);
    }

    #[test]
    fn json_roundtrip() {
        let system = SystemConfig::new(vec![4, 4]).unwrap();
        let inst = Instance::new(system, Dag::chain(3), jobs(3)).unwrap();
        let json = inst.to_json();
        let back = Instance::from_json(&json).unwrap();
        assert_eq!(inst, back);
    }
}
