//! Execution-time functions `t_j(p_j)` for moldable jobs.
//!
//! Assumption 2 of the paper says the execution time of every job is known for
//! every possible allocation; Assumption 3 requires the function to be
//! *monotonic* (more resources never hurt) and to have *non-superlinear*
//! speedup with respect to each resource type:
//!
//! ```text
//! p ⪯ q   ⇒   t(q) ≤ t(p) ≤ (max_i q_i / p_i) · t(q)
//! ```
//!
//! This module provides several families that satisfy Assumption 3 by
//! construction (see the per-variant documentation), plus an explicit
//! table-driven model used for hand-crafted instances such as the Theorem 6
//! lower bound. [`crate::assumptions`] offers checkers that verify the
//! assumption numerically on any candidate allocation grid.

use crate::allocation::Allocation;
use serde::{Deserialize, Serialize};

/// An execution-time model. All variants return a strictly positive, finite
/// time for every allocation with at least one unit per resource type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExecTimeSpec {
    /// **Generalised Amdahl model.**
    ///
    /// `t(p) = seq + Σ_i work_i / p_i`.
    ///
    /// `seq` is the inherently sequential part; `work_i` is the parallelisable
    /// work on resource type `i`. Monotonic and non-superlinear: shrinking
    /// allocation `q` to `p` multiplies each term by at most `max_i q_i/p_i`.
    Amdahl {
        /// Sequential (non-parallelisable) time.
        seq: f64,
        /// Parallelisable work per resource type; length `d`.
        work: Vec<f64>,
    },

    /// **Power-law (Downey-style) model.**
    ///
    /// `t(p) = base · Π_i p_i^{-alpha_i}` with `alpha_i ≥ 0` and
    /// `Σ_i alpha_i ≤ 1`, which is exactly the condition under which the
    /// combined speedup stays non-superlinear (the slowdown when shrinking by
    /// per-type ratios `r_i ≥ 1` is `Π r_i^{alpha_i} ≤ (max_i r_i)^{Σ alpha}
    /// ≤ max_i r_i`).
    PowerLaw {
        /// Time under the all-ones allocation.
        base: f64,
        /// Per-type exponents; their sum must be at most 1.
        alpha: Vec<f64>,
    },

    /// **Roofline / bottleneck model.**
    ///
    /// `t(p) = work / min_i min(p_i, plateau_i)`: the job is limited by its
    /// scarcest resource, and each type stops helping beyond its plateau
    /// (maximum useful parallelism). Satisfies Assumption 3 because the
    /// bottleneck term shrinks by at most the largest per-type ratio.
    Roofline {
        /// Total work of the job.
        work: f64,
        /// Per-type plateau (maximum exploitable amount); length `d`.
        plateau: Vec<u64>,
    },

    /// **Communication-penalty model.**
    ///
    /// `t(p) = seq + Σ_i work_i / p_i + Σ_i comm_i · (p_i - 1)` — an Amdahl
    /// profile plus a linear communication/management overhead that grows
    /// with the allocation. The overhead makes large allocations genuinely
    /// unattractive (non-trivial Pareto fronts) while keeping monotonicity of
    /// the *time-optimal prefix*: note that this model is **not** monotonic
    /// beyond the point where overhead dominates, which is precisely why the
    /// dominated-allocation filter of Equation (2) matters. The non-dominated
    /// frontier it induces still satisfies Assumption 3 (see
    /// `assumptions::check_profile_assumption3`).
    CommPenalty {
        /// Sequential time.
        seq: f64,
        /// Parallelisable work per resource type.
        work: Vec<f64>,
        /// Per-unit communication overhead per resource type.
        comm: Vec<f64>,
    },

    /// **Explicit table.** Times are looked up for each allocation; missing
    /// allocations fall back to the nearest dominated entry (the largest
    /// tabulated allocation `⪯` the query), or `fallback` if none exists.
    /// Used by hand-crafted instances (e.g. the Theorem 6 tree, where a job
    /// needs one unit of a single type and any extra resource does not help).
    Table {
        /// Map from allocation amounts to execution time.
        entries: Vec<(Vec<u64>, f64)>,
        /// Time returned when no tabulated allocation is `⪯` the query.
        fallback: f64,
    },

    /// A fixed, allocation-independent execution time (a purely sequential
    /// job). Useful as a degenerate case in tests and for rigid baselines.
    Constant {
        /// The execution time.
        time: f64,
    },
}

impl ExecTimeSpec {
    /// Evaluates the execution time under `alloc`. The allocation must have at
    /// least one unit of every resource type the model refers to; this is
    /// enforced upstream by [`crate::SystemConfig::validate_allocation`].
    pub fn time(&self, alloc: &Allocation) -> f64 {
        match self {
            ExecTimeSpec::Amdahl { seq, work } => {
                let mut t = *seq;
                for (i, &w) in work.iter().enumerate() {
                    if w > 0.0 && alloc[i] == 0 {
                        return f64::INFINITY;
                    }
                    if w > 0.0 {
                        t += w / alloc[i] as f64;
                    }
                }
                t
            }
            ExecTimeSpec::PowerLaw { base, alpha } => {
                let mut t = *base;
                for (i, &a) in alpha.iter().enumerate() {
                    if a > 0.0 && alloc[i] == 0 {
                        return f64::INFINITY;
                    }
                    if a > 0.0 {
                        t /= (alloc[i] as f64).powf(a);
                    }
                }
                t
            }
            ExecTimeSpec::Roofline { work, plateau } => {
                let bottleneck = plateau
                    .iter()
                    .enumerate()
                    .map(|(i, &m)| alloc[i].min(m.max(1)))
                    .min()
                    .unwrap_or(1);
                if bottleneck == 0 {
                    return f64::INFINITY;
                }
                work / bottleneck as f64
            }
            ExecTimeSpec::CommPenalty { seq, work, comm } => {
                let mut t = *seq;
                for (i, &w) in work.iter().enumerate() {
                    if w > 0.0 && alloc[i] == 0 {
                        return f64::INFINITY;
                    }
                    if w > 0.0 {
                        t += w / alloc[i] as f64;
                    }
                }
                for (i, &c) in comm.iter().enumerate() {
                    t += c * (alloc[i].saturating_sub(1)) as f64;
                }
                t
            }
            ExecTimeSpec::Table { entries, fallback } => {
                // Return the entry for the largest tabulated allocation that
                // fits under `alloc` (component-wise); among those, the
                // smallest time (more resources can only reuse a smaller
                // tabulated configuration, never run slower).
                let mut best: Option<f64> = None;
                for (amounts, t) in entries {
                    let fits = amounts.len() == alloc.dim()
                        && amounts.iter().enumerate().all(|(i, &a)| a <= alloc[i]);
                    if fits {
                        best = Some(match best {
                            Some(b) => b.min(*t),
                            None => *t,
                        });
                    }
                }
                best.unwrap_or(*fallback)
            }
            ExecTimeSpec::Constant { time } => *time,
        }
    }

    /// Number of resource types the model refers to, if it is dimension
    /// specific (`None` for [`ExecTimeSpec::Constant`]).
    pub fn dimension(&self) -> Option<usize> {
        match self {
            ExecTimeSpec::Amdahl { work, .. } => Some(work.len()),
            ExecTimeSpec::PowerLaw { alpha, .. } => Some(alpha.len()),
            ExecTimeSpec::Roofline { plateau, .. } => Some(plateau.len()),
            ExecTimeSpec::CommPenalty { work, .. } => Some(work.len()),
            ExecTimeSpec::Table { entries, .. } => entries.first().map(|(a, _)| a.len()),
            ExecTimeSpec::Constant { .. } => None,
        }
    }

    /// A convenience constructor for a Table model describing the Theorem 6
    /// style jobs: the job needs `amount` units of resource `resource_type`
    /// (out of `d` types) and takes `time`; any allocation offering at least
    /// that amount runs in `time`, anything else is effectively not runnable
    /// (`fallback` is a very large value).
    pub fn single_resource_unit(d: usize, resource_type: usize, amount: u64, time: f64) -> Self {
        let mut amounts = vec![0u64; d];
        amounts[resource_type] = amount;
        // A job that "only requires a unit resource allocation from a single
        // resource type" (Theorem 6): other types are requested at zero.
        ExecTimeSpec::Table {
            entries: vec![(amounts, time)],
            fallback: time * 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: &[u64]) -> Allocation {
        Allocation::new(v.to_vec())
    }

    #[test]
    fn amdahl_basic() {
        let m = ExecTimeSpec::Amdahl {
            seq: 1.0,
            work: vec![8.0, 4.0],
        };
        assert!((m.time(&a(&[1, 1])) - 13.0).abs() < 1e-12);
        assert!((m.time(&a(&[8, 4])) - 3.0).abs() < 1e-12);
        assert!((m.time(&a(&[2, 1])) - 9.0).abs() < 1e-12);
        assert_eq!(m.dimension(), Some(2));
    }

    #[test]
    fn amdahl_monotone() {
        let m = ExecTimeSpec::Amdahl {
            seq: 0.5,
            work: vec![10.0, 6.0, 3.0],
        };
        let small = m.time(&a(&[1, 1, 1]));
        let big = m.time(&a(&[4, 2, 3]));
        assert!(big < small);
    }

    #[test]
    fn power_law_basic() {
        let m = ExecTimeSpec::PowerLaw {
            base: 16.0,
            alpha: vec![0.5, 0.5],
        };
        assert!((m.time(&a(&[1, 1])) - 16.0).abs() < 1e-12);
        assert!((m.time(&a(&[4, 4])) - 4.0).abs() < 1e-12);
        assert!((m.time(&a(&[4, 1])) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn roofline_bottleneck() {
        let m = ExecTimeSpec::Roofline {
            work: 24.0,
            plateau: vec![4, 8],
        };
        assert!((m.time(&a(&[1, 8])) - 24.0).abs() < 1e-12);
        assert!((m.time(&a(&[4, 8])) - 6.0).abs() < 1e-12);
        // Beyond the plateau of type 0 there is no further gain.
        assert!((m.time(&a(&[16, 8])) - 6.0).abs() < 1e-12);
        assert_eq!(m.dimension(), Some(2));
    }

    #[test]
    fn comm_penalty_can_be_non_monotone() {
        let m = ExecTimeSpec::CommPenalty {
            seq: 0.0,
            work: vec![4.0],
            comm: vec![1.0],
        };
        // 1 unit: 4.0; 2 units: 2 + 1 = 3; 4 units: 1 + 3 = 4 — large
        // allocations become dominated, which the profile layer prunes.
        assert!((m.time(&a(&[1])) - 4.0).abs() < 1e-12);
        assert!((m.time(&a(&[2])) - 3.0).abs() < 1e-12);
        assert!((m.time(&a(&[4])) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn table_lookup_and_fallback() {
        let m = ExecTimeSpec::Table {
            entries: vec![(vec![2, 1], 5.0), (vec![1, 2], 7.0), (vec![2, 2], 3.0)],
            fallback: 100.0,
        };
        assert!((m.time(&a(&[2, 1])) - 5.0).abs() < 1e-12);
        assert!((m.time(&a(&[2, 2])) - 3.0).abs() < 1e-12);
        assert!((m.time(&a(&[1, 1])) - 100.0).abs() < 1e-12);
        // A bigger allocation can reuse the best smaller configuration.
        assert!((m.time(&a(&[4, 4])) - 3.0).abs() < 1e-12);
        assert_eq!(m.dimension(), Some(2));
    }

    #[test]
    fn single_resource_unit_constructor() {
        let m = ExecTimeSpec::single_resource_unit(3, 1, 1, 1.0);
        assert!((m.time(&a(&[1, 1, 1])) - 1.0).abs() < 1e-12);
        assert!((m.time(&a(&[2, 2, 2])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_ignores_allocation() {
        let m = ExecTimeSpec::Constant { time: 2.5 };
        assert!((m.time(&a(&[1, 1])) - 2.5).abs() < 1e-12);
        assert!((m.time(&a(&[9, 9])) - 2.5).abs() < 1e-12);
        assert_eq!(m.dimension(), None);
    }

    #[test]
    fn serde_roundtrip() {
        let m = ExecTimeSpec::Amdahl {
            seq: 1.0,
            work: vec![2.0, 3.0],
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: ExecTimeSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn assumption3_holds_for_amdahl_and_powerlaw_samples() {
        let models = vec![
            ExecTimeSpec::Amdahl {
                seq: 1.0,
                work: vec![6.0, 3.0],
            },
            ExecTimeSpec::PowerLaw {
                base: 12.0,
                alpha: vec![0.4, 0.3],
            },
            ExecTimeSpec::Roofline {
                work: 20.0,
                plateau: vec![6, 6],
            },
        ];
        for m in models {
            for p0 in 1..=4u64 {
                for p1 in 1..=4u64 {
                    for q0 in p0..=4u64 {
                        for q1 in p1..=4u64 {
                            let p = a(&[p0, p1]);
                            let q = a(&[q0, q1]);
                            let tp = m.time(&p);
                            let tq = m.time(&q);
                            let ratio = p.max_ratio_from(&q);
                            assert!(tq <= tp + 1e-9, "monotonicity violated for {m:?}");
                            assert!(
                                tp <= ratio * tq + 1e-9,
                                "non-superlinearity violated for {m:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}
