//! Moldable job descriptions.

use crate::allocation::SystemConfig;
use crate::exectime::ExecTimeSpec;
use crate::profile::JobProfile;
use crate::space::{AllocationSpace, DEFAULT_ENUMERATION_LIMIT};
use crate::Result;
use serde::{Deserialize, Serialize};

/// A moldable parallel job: an execution-time model plus the set of candidate
/// allocations the scheduler may pick from. The job's position in the
/// precedence DAG is given by its index in the owning [`crate::Instance`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoldableJob {
    /// Human-readable name (defaults to `job<i>`).
    pub name: String,
    /// Execution-time function `t_j(p_j)`.
    pub spec: ExecTimeSpec,
    /// Candidate allocation space `S` for this job.
    pub space: AllocationSpace,
}

impl MoldableJob {
    /// Creates a job with an auto-generated name and the full allocation grid.
    pub fn new(index: usize, spec: ExecTimeSpec) -> Self {
        MoldableJob {
            name: format!("job{index}"),
            spec,
            space: AllocationSpace::FullGrid,
        }
    }

    /// Creates a job with an explicit name and allocation space.
    pub fn with_space(name: impl Into<String>, spec: ExecTimeSpec, space: AllocationSpace) -> Self {
        MoldableJob {
            name: name.into(),
            spec,
            space,
        }
    }

    /// Builds the job's non-dominated profile on `system`.
    pub fn profile(&self, system: &SystemConfig, job_index: usize) -> Result<JobProfile> {
        JobProfile::build(
            &self.spec,
            &self.space,
            system,
            job_index,
            DEFAULT_ENUMERATION_LIMIT,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;

    #[test]
    fn auto_name_and_profile() {
        let j = MoldableJob::new(
            3,
            ExecTimeSpec::Amdahl {
                seq: 1.0,
                work: vec![4.0],
            },
        );
        assert_eq!(j.name, "job3");
        let sys = SystemConfig::new(vec![4]).unwrap();
        let profile = j.profile(&sys, 3).unwrap();
        assert!(profile.len() >= 2);
        assert_eq!(profile.min_time_point().alloc, Allocation::new(vec![4]));
    }

    #[test]
    fn with_space_restricts_candidates() {
        let j = MoldableJob::with_space(
            "solver",
            ExecTimeSpec::Amdahl {
                seq: 0.0,
                work: vec![8.0],
            },
            AllocationSpace::PerAxis(vec![vec![1, 8]]),
        );
        let sys = SystemConfig::new(vec![8]).unwrap();
        let profile = j.profile(&sys, 0).unwrap();
        assert_eq!(profile.len(), 2);
        assert_eq!(j.name, "solver");
    }

    #[test]
    fn serde_roundtrip() {
        let j = MoldableJob::new(0, ExecTimeSpec::Constant { time: 1.0 });
        let json = serde_json::to_string(&j).unwrap();
        let back: MoldableJob = serde_json::from_str(&json).unwrap();
        assert_eq!(j, back);
    }
}
