//! # mrls-model — the multi-resource moldable job model
//!
//! This crate captures Section 3 of the paper ("Models"): systems with `d`
//! types of schedulable resources, moldable jobs whose execution time depends
//! on the amount of every resource they are allocated, and the quantities the
//! analysis is built on (work, area, critical path, the lower bound `L(p)`).
//!
//! * [`SystemConfig`] — the resource capacities `P(1), …, P(d)` (Assumption 1:
//!   integral resources).
//! * [`Allocation`] — one job's resource vector `p_j`.
//! * [`ExecTimeSpec`] — execution-time functions `t_j(p_j)` (Assumption 2:
//!   known execution times) with several speedup families that satisfy
//!   Assumption 3 (monotonic, non-superlinear).
//! * [`JobProfile`] — the set of *non-dominated* `(allocation, time, area)`
//!   points of a job (Equation 2), which is all Phase 1 ever needs.
//! * [`Instance`] — jobs + precedence DAG + system; evaluation helpers for
//!   `w_j^{(i)}`, `a_j`, `A(p)`, `C(p)` and `L(p)` (Definitions 1 and 2).
//!
//! The scheduling algorithms themselves live in `mrls-core`; this crate is
//! pure data and model evaluation, so that workload generation, scheduling and
//! analysis can all share one vocabulary.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocation;
pub mod assumptions;
pub mod error;
pub mod exectime;
pub mod instance;
pub mod job;
pub mod profile;
pub mod quantities;
pub mod space;

pub use allocation::{Allocation, SystemConfig};
pub use error::ModelError;
pub use exectime::ExecTimeSpec;
pub use instance::Instance;
pub use job::MoldableJob;
pub use profile::{AllocPoint, JobProfile};
pub use quantities::{AllocationDecision, InstanceMetrics};
pub use space::AllocationSpace;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, ModelError>;
