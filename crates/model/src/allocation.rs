//! Resource capacities and per-job resource allocations.

use crate::error::ModelError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// The platform: `d` resource types with integral capacities `P(1), …, P(d)`
/// (Assumption 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    capacities: Vec<u64>,
}

impl SystemConfig {
    /// Creates a system from per-type capacities. Every capacity must be at
    /// least one and there must be at least one resource type.
    pub fn new(capacities: Vec<u64>) -> Result<Self> {
        if capacities.is_empty() {
            return Err(ModelError::NoResourceTypes);
        }
        for (i, &c) in capacities.iter().enumerate() {
            if c == 0 {
                return Err(ModelError::ZeroCapacity { resource: i });
            }
        }
        Ok(SystemConfig { capacities })
    }

    /// A homogeneous system: `d` resource types, each with capacity `p`.
    pub fn uniform(d: usize, p: u64) -> Result<Self> {
        SystemConfig::new(vec![p; d])
    }

    /// Number of resource types `d`.
    #[inline]
    pub fn num_resource_types(&self) -> usize {
        self.capacities.len()
    }

    /// Capacity `P(i)` of resource type `i`.
    #[inline]
    pub fn capacity(&self, i: usize) -> u64 {
        self.capacities[i]
    }

    /// All capacities as a slice.
    #[inline]
    pub fn capacities(&self) -> &[u64] {
        &self.capacities
    }

    /// The smallest capacity `P_min = min_i P(i)`, which the theorems place
    /// conditions on (e.g. `P_min ≥ 7` in Theorem 1).
    pub fn min_capacity(&self) -> u64 {
        *self
            .capacities
            .iter()
            .min()
            .expect("constructor guarantees at least one resource type")
    }

    /// The total number of distinct positive allocations `Q = Π_i P(i)`,
    /// computed in 128-bit to avoid overflow for large systems.
    pub fn full_grid_size(&self) -> u128 {
        self.capacities.iter().map(|&c| c as u128).product()
    }

    /// Validates an allocation against this system: right dimension, within
    /// capacity, and not entirely zero.
    ///
    /// Individual components *may* be zero — the paper allows a job to
    /// request nothing from a resource type (e.g. the Theorem 6 instance,
    /// where each unit job uses a single type). Execution-time models that
    /// need a resource return an infinite time for such allocations and the
    /// profile layer drops those points.
    pub fn validate_allocation(&self, alloc: &Allocation) -> Result<()> {
        if alloc.dim() != self.num_resource_types() {
            return Err(ModelError::DimensionMismatch {
                expected: self.num_resource_types(),
                got: alloc.dim(),
            });
        }
        for i in 0..alloc.dim() {
            if alloc[i] > self.capacities[i] {
                return Err(ModelError::ExceedsCapacity {
                    resource: i,
                    requested: alloc[i],
                    capacity: self.capacities[i],
                });
            }
        }
        if alloc.amounts().iter().all(|&a| a == 0) {
            return Err(ModelError::ZeroAllocation { resource: 0 });
        }
        Ok(())
    }
}

/// A resource allocation `p_j = (p_j(1), …, p_j(d))` for one job.
///
/// Allocations are ordinary value types: cheap to clone, comparable with the
/// component-wise partial order `⪯` of Assumption 3.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Allocation(Vec<u64>);

impl Allocation {
    /// Creates an allocation from the per-type amounts.
    pub fn new(amounts: Vec<u64>) -> Self {
        Allocation(amounts)
    }

    /// The all-ones allocation in `d` dimensions (the minimal executable
    /// request under our models).
    pub fn ones(d: usize) -> Self {
        Allocation(vec![1; d])
    }

    /// An allocation that requests the entire system.
    pub fn full(system: &SystemConfig) -> Self {
        Allocation(system.capacities().to_vec())
    }

    /// Number of resource types.
    #[inline]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Amounts as a slice.
    #[inline]
    pub fn amounts(&self) -> &[u64] {
        &self.0
    }

    /// Component-wise partial order `self ⪯ other` (Assumption 3).
    pub fn dominated_by(&self, other: &Allocation) -> bool {
        self.dim() == other.dim() && (0..self.dim()).all(|i| self.0[i] <= other.0[i])
    }

    /// `max_i other_i / self_i` — the slowdown bound of Assumption 3 when
    /// shrinking from `other` to `self`. A component that drops to zero from
    /// a positive value yields an infinite ratio (the bound becomes vacuous);
    /// `0/0` counts as a ratio of one.
    pub fn max_ratio_from(&self, other: &Allocation) -> f64 {
        (0..self.dim())
            .map(|i| {
                if other.0[i] == 0 {
                    1.0
                } else if self.0[i] == 0 {
                    f64::INFINITY
                } else {
                    other.0[i] as f64 / self.0[i] as f64
                }
            })
            .fold(0.0, f64::max)
    }

    /// Component-wise minimum of two allocations.
    pub fn component_min(&self, other: &Allocation) -> Allocation {
        Allocation((0..self.dim()).map(|i| self.0[i].min(other.0[i])).collect())
    }

    /// Returns a copy with component `i` replaced by `value`.
    pub fn with_component(&self, i: usize, value: u64) -> Allocation {
        let mut v = self.0.clone();
        v[i] = value;
        Allocation(v)
    }

    /// Sum of all components (used by some heuristics as a size proxy).
    pub fn total_units(&self) -> u64 {
        self.0.iter().sum()
    }
}

impl std::ops::Index<usize> for Allocation {
    type Output = u64;
    fn index(&self, i: usize) -> &u64 {
        &self.0[i]
    }
}

impl std::fmt::Display for Allocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_construction() {
        let s = SystemConfig::new(vec![8, 16, 4]).unwrap();
        assert_eq!(s.num_resource_types(), 3);
        assert_eq!(s.capacity(1), 16);
        assert_eq!(s.min_capacity(), 4);
        assert_eq!(s.full_grid_size(), 8 * 16 * 4);
    }

    #[test]
    fn uniform_system() {
        let s = SystemConfig::uniform(4, 10).unwrap();
        assert_eq!(s.capacities(), &[10, 10, 10, 10]);
    }

    #[test]
    fn rejects_empty_and_zero() {
        assert_eq!(
            SystemConfig::new(vec![]).unwrap_err(),
            ModelError::NoResourceTypes
        );
        assert_eq!(
            SystemConfig::new(vec![4, 0]).unwrap_err(),
            ModelError::ZeroCapacity { resource: 1 }
        );
    }

    #[test]
    fn allocation_validation() {
        let s = SystemConfig::new(vec![4, 8]).unwrap();
        assert!(s.validate_allocation(&Allocation::new(vec![1, 8])).is_ok());
        assert!(matches!(
            s.validate_allocation(&Allocation::new(vec![1, 9])),
            Err(ModelError::ExceedsCapacity { resource: 1, .. })
        ));
        // A single zero component is allowed (the job simply does not use that
        // resource type)…
        assert!(s.validate_allocation(&Allocation::new(vec![0, 1])).is_ok());
        // … but an entirely empty request is not.
        assert!(matches!(
            s.validate_allocation(&Allocation::new(vec![0, 0])),
            Err(ModelError::ZeroAllocation { .. })
        ));
        assert!(matches!(
            s.validate_allocation(&Allocation::new(vec![1])),
            Err(ModelError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn partial_order_and_ratio() {
        let p = Allocation::new(vec![1, 2]);
        let q = Allocation::new(vec![2, 4]);
        assert!(p.dominated_by(&q));
        assert!(!q.dominated_by(&p));
        assert!(p.dominated_by(&p));
        assert!((p.max_ratio_from(&q) - 2.0).abs() < 1e-12);
        let r = Allocation::new(vec![3, 1]);
        assert!(!p.dominated_by(&r) && !r.dominated_by(&p));
    }

    #[test]
    fn helpers() {
        let s = SystemConfig::new(vec![4, 6]).unwrap();
        assert_eq!(Allocation::ones(2).amounts(), &[1, 1]);
        assert_eq!(Allocation::full(&s).amounts(), &[4, 6]);
        let a = Allocation::new(vec![2, 3]);
        assert_eq!(a.total_units(), 5);
        assert_eq!(a.with_component(0, 4).amounts(), &[4, 3]);
        assert_eq!(
            a.component_min(&Allocation::new(vec![1, 5])).amounts(),
            &[1, 3]
        );
        assert_eq!(a.to_string(), "(2, 3)");
        assert_eq!(a[1], 3);
    }

    #[test]
    fn serde_roundtrip() {
        let s = SystemConfig::new(vec![4, 6]).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        let a = Allocation::new(vec![2, 3]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Allocation = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
