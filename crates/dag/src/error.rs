//! Error type for DAG construction and queries.

use std::fmt;

/// Errors produced while building or querying a [`crate::Dag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge endpoint refers to a node id `>= num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// The number of nodes in the graph.
        num_nodes: usize,
    },
    /// A self-loop `u -> u` was added; precedence graphs must be irreflexive.
    SelfLoop(usize),
    /// The edge set contains a directed cycle, so the graph is not a DAG.
    CycleDetected {
        /// One node known to lie on a cycle.
        witness: usize,
    },
    /// A weight vector of the wrong length was supplied.
    WeightLengthMismatch {
        /// Expected length (number of nodes).
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// An appended edge points *into* the pre-existing node prefix, which
    /// [`crate::Dag::append`] freezes (growth may only add edges towards
    /// appended nodes, never retro-actively constrain old ones).
    EdgeIntoFrozenPrefix {
        /// The edge source.
        from: usize,
        /// The offending target inside the frozen prefix.
        to: usize,
        /// Size of the frozen prefix (nodes `0..frozen` are immutable).
        frozen: usize,
    },
    /// The graph is not series-parallel (contains an "N" sub-order), so no SP
    /// decomposition exists.
    NotSeriesParallel,
    /// The graph is empty where a non-empty graph was required.
    EmptyGraph,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::NodeOutOfRange { node, num_nodes } => write!(
                f,
                "node id {node} out of range for a graph with {num_nodes} nodes"
            ),
            DagError::SelfLoop(n) => write!(f, "self-loop on node {n} is not allowed"),
            DagError::CycleDetected { witness } => {
                write!(f, "the edge set contains a cycle through node {witness}")
            }
            DagError::WeightLengthMismatch { expected, got } => write!(
                f,
                "weight vector has length {got}, expected {expected} (one per node)"
            ),
            DagError::EdgeIntoFrozenPrefix { from, to, frozen } => write!(
                f,
                "appended edge {from} -> {to} targets the frozen prefix (nodes 0..{frozen})"
            ),
            DagError::NotSeriesParallel => {
                write!(f, "the graph is not a series-parallel order")
            }
            DagError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
        }
    }
}

impl std::error::Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_node_out_of_range() {
        let e = DagError::NodeOutOfRange {
            node: 7,
            num_nodes: 3,
        };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn display_self_loop() {
        assert!(DagError::SelfLoop(2).to_string().contains("self-loop"));
    }

    #[test]
    fn display_cycle() {
        assert!(DagError::CycleDetected { witness: 1 }
            .to_string()
            .contains("cycle"));
    }

    #[test]
    fn display_weight_mismatch() {
        let e = DagError::WeightLengthMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("4"));
        assert!(e.to_string().contains("2"));
    }

    #[test]
    fn display_not_sp() {
        assert!(DagError::NotSeriesParallel
            .to_string()
            .contains("series-parallel"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(DagError::EmptyGraph);
        assert!(e.to_string().contains("non-empty"));
    }
}
