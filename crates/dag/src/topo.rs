//! Topological orders and level structures.

use crate::graph::{Dag, NodeId};

impl Dag {
    /// Returns a topological order of the nodes (Kahn's algorithm, smallest
    /// node id first among ready nodes so the order is deterministic).
    ///
    /// The graph is guaranteed acyclic by construction, so this never fails.
    pub fn topological_order(&self) -> Vec<NodeId> {
        let n = self.num_nodes();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.in_degree(v)).collect();
        // A simple binary-heap-free approach: keep a sorted ready set using a
        // BinaryHeap of Reverse ids for deterministic output.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut ready: BinaryHeap<Reverse<NodeId>> =
            (0..n).filter(|&v| indeg[v] == 0).map(Reverse).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(u)) = ready.pop() {
            order.push(u);
            for &v in self.successors(u) {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    ready.push(Reverse(v));
                }
            }
        }
        debug_assert_eq!(order.len(), n, "graph is acyclic by construction");
        order
    }

    /// Returns, for every node, its *level*: the length (in number of edges)
    /// of the longest path from any source to the node. Sources have level 0.
    pub fn levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.num_nodes()];
        for &u in &self.topological_order() {
            for &v in self.successors(u) {
                level[v] = level[v].max(level[u] + 1);
            }
        }
        level
    }

    /// Groups nodes by [`Dag::levels`]: `result[l]` lists all nodes at level
    /// `l`, ascending. The number of groups equals the graph *height* (number
    /// of nodes on the longest chain).
    pub fn level_sets(&self) -> Vec<Vec<NodeId>> {
        let levels = self.levels();
        let height = levels.iter().copied().max().map_or(0, |m| m + 1);
        let mut sets = vec![Vec::new(); height];
        for (v, &l) in levels.iter().enumerate() {
            sets[l].push(v);
        }
        sets
    }

    /// Number of nodes on the longest chain of the DAG (its height); zero for
    /// the empty graph.
    pub fn height(&self) -> usize {
        if self.num_nodes() == 0 {
            0
        } else {
            self.levels().iter().copied().max().unwrap_or(0) + 1
        }
    }

    /// Checks that `order` is a permutation of the nodes consistent with every
    /// precedence edge. Used by tests and by the schedule validator.
    pub fn is_topological_order(&self, order: &[NodeId]) -> bool {
        if order.len() != self.num_nodes() {
            return false;
        }
        let mut pos = vec![usize::MAX; self.num_nodes()];
        for (i, &v) in order.iter().enumerate() {
            if v >= self.num_nodes() || pos[v] != usize::MAX {
                return false;
            }
            pos[v] = i;
        }
        self.edges().all(|(u, v)| pos[u] < pos[v])
    }
}

#[cfg(test)]
mod tests {
    use crate::Dag;

    fn diamond() -> Dag {
        Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn topo_order_is_valid() {
        let g = diamond();
        let order = g.topological_order();
        assert!(g.is_topological_order(&order));
        assert_eq!(order[0], 0);
        assert_eq!(order[3], 3);
    }

    #[test]
    fn topo_order_deterministic() {
        let g = Dag::independent(5);
        assert_eq!(g.topological_order(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn levels_of_diamond() {
        let g = diamond();
        assert_eq!(g.levels(), vec![0, 1, 1, 2]);
        assert_eq!(g.level_sets(), vec![vec![0], vec![1, 2], vec![3]]);
        assert_eq!(g.height(), 3);
    }

    #[test]
    fn levels_of_chain() {
        let g = Dag::chain(5);
        assert_eq!(g.levels(), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.height(), 5);
    }

    #[test]
    fn levels_of_independent() {
        let g = Dag::independent(3);
        assert_eq!(g.levels(), vec![0, 0, 0]);
        assert_eq!(g.height(), 1);
    }

    #[test]
    fn empty_graph_height_zero() {
        let g = Dag::independent(0);
        assert_eq!(g.height(), 0);
        assert!(g.level_sets().is_empty());
        assert!(g.topological_order().is_empty());
    }

    #[test]
    fn invalid_orders_rejected() {
        let g = diamond();
        assert!(!g.is_topological_order(&[3, 1, 2, 0]));
        assert!(!g.is_topological_order(&[0, 1, 2])); // wrong length
        assert!(!g.is_topological_order(&[0, 0, 1, 2])); // repeated node
        assert!(!g.is_topological_order(&[0, 1, 2, 9])); // out of range
    }

    #[test]
    fn reversed_topo_is_reverse_consistent() {
        let g = diamond();
        let r = g.reversed();
        let order = r.topological_order();
        assert!(r.is_topological_order(&order));
        assert!(!g.is_topological_order(&order));
    }
}
