//! Classification of the precedence-graph families for which the paper proves
//! improved approximation ratios (Table 1): independent jobs, chains,
//! in-/out-trees (forests) and series-parallel orders.

use crate::graph::{Dag, NodeId};
use serde::{Deserialize, Serialize};

/// The graph families distinguished by the paper's analysis, from most to
/// least restrictive. [`Dag::classify`] returns the most specific class that
/// applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphClass {
    /// No precedence constraints at all (Theorem 5).
    Independent,
    /// A single chain (each node has at most one predecessor and successor and
    /// the graph is connected as one path). Chains are trees, hence SP.
    Chain,
    /// An out-forest: every node has at most one predecessor (Theorem 3/4).
    OutTree,
    /// An in-forest: every node has at most one successor (Theorem 3/4).
    InTree,
    /// A series-parallel order (Theorem 3/4).
    SeriesParallel,
    /// Anything else (Theorems 1/2).
    General,
}

impl GraphClass {
    /// Human-readable label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            GraphClass::Independent => "independent",
            GraphClass::Chain => "chain",
            GraphClass::OutTree => "out-tree",
            GraphClass::InTree => "in-tree",
            GraphClass::SeriesParallel => "series-parallel",
            GraphClass::General => "general",
        }
    }

    /// `true` if the class is covered by the SP/tree FPTAS of Lemma 7
    /// (everything except [`GraphClass::General`]; independent jobs are also
    /// SP but have their own, stronger allocator).
    pub fn admits_sp_fptas(&self) -> bool {
        !matches!(self, GraphClass::General)
    }
}

impl std::fmt::Display for GraphClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl Dag {
    /// `true` iff the graph has no edges.
    pub fn is_independent(&self) -> bool {
        self.num_edges() == 0
    }

    /// `true` iff every node has at most one immediate predecessor
    /// (the graph is a forest of out-trees rooted at its sources).
    pub fn is_out_forest(&self) -> bool {
        (0..self.num_nodes()).all(|v| self.in_degree(v) <= 1)
    }

    /// `true` iff every node has at most one immediate successor
    /// (a forest of in-trees).
    pub fn is_in_forest(&self) -> bool {
        (0..self.num_nodes()).all(|v| self.out_degree(v) <= 1)
    }

    /// `true` iff the graph is a disjoint union of chains.
    pub fn is_chain_forest(&self) -> bool {
        self.is_out_forest() && self.is_in_forest()
    }

    /// `true` iff the graph is one single chain covering all nodes.
    pub fn is_single_chain(&self) -> bool {
        self.num_nodes() > 0 && self.is_chain_forest() && self.num_edges() + 1 == self.num_nodes()
    }

    /// Returns the most specific [`GraphClass`] describing this DAG.
    ///
    /// Series-parallel membership is decided by [`crate::sp::SpDecomposition`],
    /// which may cost `O(n^2)` for the transitive closure; all other checks
    /// are linear.
    pub fn classify(&self) -> GraphClass {
        if self.is_independent() {
            return GraphClass::Independent;
        }
        if self.is_single_chain() {
            return GraphClass::Chain;
        }
        if self.is_out_forest() {
            return GraphClass::OutTree;
        }
        if self.is_in_forest() {
            return GraphClass::InTree;
        }
        if crate::sp::SpDecomposition::decompose(self).is_ok() {
            return GraphClass::SeriesParallel;
        }
        GraphClass::General
    }

    /// Roots of an out-forest (nodes without predecessors). For a general DAG
    /// this simply returns the sources.
    pub fn roots(&self) -> Vec<NodeId> {
        self.sources()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_class() {
        assert_eq!(Dag::independent(4).classify(), GraphClass::Independent);
        assert!(Dag::independent(4).is_independent());
    }

    #[test]
    fn chain_class() {
        let g = Dag::chain(5);
        assert!(g.is_single_chain());
        assert_eq!(g.classify(), GraphClass::Chain);
    }

    #[test]
    fn chain_forest_but_not_single_chain() {
        // Two disjoint chains 0->1 and 2->3.
        let g = Dag::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(g.is_chain_forest());
        assert!(!g.is_single_chain());
        assert_eq!(g.classify(), GraphClass::OutTree);
    }

    #[test]
    fn out_tree_class() {
        // Root 0 with children 1,2; 1 has children 3,4.
        let g = Dag::from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4)]).unwrap();
        assert!(g.is_out_forest());
        assert!(!g.is_in_forest());
        assert_eq!(g.classify(), GraphClass::OutTree);
    }

    #[test]
    fn in_tree_class() {
        // Leaves 0,1 join into 2; 2,3 join into 4.
        let g = Dag::from_edges(5, &[(0, 2), (1, 2), (2, 4), (3, 4)]).unwrap();
        assert!(g.is_in_forest());
        assert!(!g.is_out_forest());
        assert_eq!(g.classify(), GraphClass::InTree);
    }

    #[test]
    fn diamond_is_series_parallel() {
        let g = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(g.classify(), GraphClass::SeriesParallel);
    }

    #[test]
    fn n_graph_is_general() {
        // The forbidden "N": 0->2, 1->2, 1->3 (0 and 3 incomparable, 1 before
        // both 2 and 3, 0 only before 2).
        let g = Dag::from_edges(4, &[(0, 2), (1, 2), (1, 3)]).unwrap();
        assert_eq!(g.classify(), GraphClass::General);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(GraphClass::Independent.label(), "independent");
        assert_eq!(GraphClass::General.to_string(), "general");
        assert!(GraphClass::OutTree.admits_sp_fptas());
        assert!(!GraphClass::General.admits_sp_fptas());
    }
}
