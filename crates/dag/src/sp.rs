//! Series-parallel decomposition of precedence graphs.
//!
//! The paper proves improved ratios (Theorems 3 and 4) when the precedence
//! constraints form a *series-parallel graph or tree*, using the FPTAS of
//! Lepère, Trystram and Woeginger (Lemma 7). That FPTAS is a dynamic program
//! over the series-parallel decomposition, which this module computes.
//!
//! ## Modelling note
//!
//! We work with **series-parallel partial orders** (a.k.a. N-free orders):
//! * a single job is series-parallel;
//! * the *series* composition `S(G1, …, Gk)` puts every job of `Gi` before
//!   every job of `Gj` for `i < j`;
//! * the *parallel* composition `P(G1, …, Gk)` is the disjoint union.
//!
//! This is the standard formulation the Lepère et al. dynamic program is
//! stated for; it contains chains, in-/out-trees (forests) and independent
//! sets, and the cost recurrences (`C` adds under series and maxes under
//! parallel, `A` always adds) are exactly those used by the FPTAS. The
//! two-terminal "merged source/sink" definition quoted in the paper describes
//! the same family up to the bookkeeping of shared endpoint jobs; we document
//! this substitution in `DESIGN.md`.
//!
//! Recognition follows Valdes–Tarjan–Lawler: a partial order is
//! series-parallel iff it can be recursively split either into the connected
//! components of its *comparability* graph (parallel composition) or into the
//! linearly-ordered connected components of its *incomparability* graph
//! (series composition); otherwise it contains the forbidden "N" sub-order.

use crate::error::DagError;
use crate::graph::{Dag, DagBuilder, NodeId};
use crate::reachability::Reachability;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A series-parallel decomposition expression whose leaves are jobs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpExpr {
    /// A single job.
    Job(NodeId),
    /// Series composition: every job of child `i` precedes every job of child
    /// `i + 1`.
    Series(Vec<SpExpr>),
    /// Parallel composition: children are mutually unordered.
    Parallel(Vec<SpExpr>),
}

impl SpExpr {
    /// Builds a series composition, flattening nested series children.
    pub fn series(children: Vec<SpExpr>) -> SpExpr {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                SpExpr::Series(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("length checked")
        } else {
            SpExpr::Series(flat)
        }
    }

    /// Builds a parallel composition, flattening nested parallel children.
    pub fn parallel(children: Vec<SpExpr>) -> SpExpr {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                SpExpr::Parallel(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("length checked")
        } else {
            SpExpr::Parallel(flat)
        }
    }

    /// All jobs appearing in the expression, in left-to-right order.
    pub fn jobs(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.collect_jobs(&mut out);
        out
    }

    fn collect_jobs(&self, out: &mut Vec<NodeId>) {
        match self {
            SpExpr::Job(j) => out.push(*j),
            SpExpr::Series(cs) | SpExpr::Parallel(cs) => {
                for c in cs {
                    c.collect_jobs(out);
                }
            }
        }
    }

    /// Number of jobs in the expression.
    pub fn num_jobs(&self) -> usize {
        match self {
            SpExpr::Job(_) => 1,
            SpExpr::Series(cs) | SpExpr::Parallel(cs) => cs.iter().map(SpExpr::num_jobs).sum(),
        }
    }

    /// Depth of the expression tree (a single job has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            SpExpr::Job(_) => 1,
            SpExpr::Series(cs) | SpExpr::Parallel(cs) => {
                1 + cs.iter().map(SpExpr::depth).max().unwrap_or(0)
            }
        }
    }

    /// Minimal (source) jobs of the induced order.
    pub fn minimal_jobs(&self) -> Vec<NodeId> {
        match self {
            SpExpr::Job(j) => vec![*j],
            SpExpr::Series(cs) => cs.first().map(SpExpr::minimal_jobs).unwrap_or_default(),
            SpExpr::Parallel(cs) => cs.iter().flat_map(SpExpr::minimal_jobs).collect(),
        }
    }

    /// Maximal (sink) jobs of the induced order.
    pub fn maximal_jobs(&self) -> Vec<NodeId> {
        match self {
            SpExpr::Job(j) => vec![*j],
            SpExpr::Series(cs) => cs.last().map(SpExpr::maximal_jobs).unwrap_or_default(),
            SpExpr::Parallel(cs) => cs.iter().flat_map(SpExpr::maximal_jobs).collect(),
        }
    }

    /// Builds the (transitively reduced) DAG induced by the expression over
    /// `num_nodes` jobs. Jobs not mentioned in the expression become isolated
    /// nodes.
    pub fn to_dag(&self, num_nodes: usize) -> Result<Dag> {
        let mut builder = DagBuilder::new(num_nodes);
        self.add_edges(&mut builder)?;
        builder.build()
    }

    fn add_edges(&self, builder: &mut DagBuilder) -> Result<()> {
        match self {
            SpExpr::Job(_) => Ok(()),
            SpExpr::Parallel(cs) => {
                for c in cs {
                    c.add_edges(builder)?;
                }
                Ok(())
            }
            SpExpr::Series(cs) => {
                for c in cs {
                    c.add_edges(builder)?;
                }
                for w in cs.windows(2) {
                    for &u in &w[0].maximal_jobs() {
                        for &v in &w[1].minimal_jobs() {
                            builder.add_edge(u, v)?;
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

/// The result of successfully decomposing a DAG into a series-parallel
/// expression.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpDecomposition {
    /// The decomposition expression; its leaves are exactly the DAG's nodes.
    pub expr: SpExpr,
}

impl SpDecomposition {
    /// Attempts to decompose `dag` as a series-parallel order.
    ///
    /// Returns [`DagError::NotSeriesParallel`] if the induced partial order
    /// contains the forbidden "N" pattern, and [`DagError::EmptyGraph`] for a
    /// graph without nodes.
    pub fn decompose(dag: &Dag) -> Result<SpDecomposition> {
        if dag.num_nodes() == 0 {
            return Err(DagError::EmptyGraph);
        }
        let reach = dag.reachability();
        let all: Vec<NodeId> = (0..dag.num_nodes()).collect();
        let expr = decompose_set(&all, &reach)?;
        Ok(SpDecomposition { expr })
    }

    /// Verifies that the decomposition's leaves are exactly `0..num_nodes`,
    /// each appearing once.
    pub fn covers_all_jobs(&self, num_nodes: usize) -> bool {
        let mut seen = vec![false; num_nodes];
        for j in self.expr.jobs() {
            if j >= num_nodes || seen[j] {
                return false;
            }
            seen[j] = true;
        }
        seen.into_iter().all(|s| s)
    }
}

/// Recursive Valdes–Tarjan–Lawler style decomposition of the sub-order induced
/// by `nodes`.
fn decompose_set(nodes: &[NodeId], reach: &Reachability) -> Result<SpExpr> {
    debug_assert!(!nodes.is_empty());
    if nodes.len() == 1 {
        return Ok(SpExpr::Job(nodes[0]));
    }

    // --- Parallel split: connected components of the comparability graph ---
    let comp_components = components(nodes, |u, v| reach.comparable(u, v));
    if comp_components.len() > 1 {
        let children = comp_components
            .into_iter()
            .map(|c| decompose_set(&c, reach))
            .collect::<Result<Vec<_>>>()?;
        return Ok(SpExpr::parallel(children));
    }

    // --- Series split: connected components of the incomparability graph ---
    let incomp_components = components(nodes, |u, v| !reach.comparable(u, v));
    if incomp_components.len() > 1 {
        // Order components by how many other components precede them (an
        // integer key, so the sort never sees an inconsistent comparator even
        // on malformed inputs), then verify every cross pair agrees.
        let reps: Vec<NodeId> = incomp_components.iter().map(|c| c[0]).collect();
        let mut keyed: Vec<(usize, Vec<NodeId>)> = incomp_components
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                let preceding = reps
                    .iter()
                    .enumerate()
                    .filter(|&(j, &r)| j != i && reach.reaches(r, c[0]))
                    .count();
                (preceding, c)
            })
            .collect();
        keyed.sort_by_key(|(k, _)| *k);
        let ordered: Vec<Vec<NodeId>> = keyed.into_iter().map(|(_, c)| c).collect();
        for i in 0..ordered.len() {
            for j in (i + 1)..ordered.len() {
                for &u in &ordered[i] {
                    for &v in &ordered[j] {
                        if !reach.reaches(u, v) {
                            return Err(DagError::NotSeriesParallel);
                        }
                    }
                }
            }
        }
        let children = ordered
            .into_iter()
            .map(|c| decompose_set(&c, reach))
            .collect::<Result<Vec<_>>>()?;
        return Ok(SpExpr::series(children));
    }

    Err(DagError::NotSeriesParallel)
}

/// Connected components of the undirected graph over `nodes` whose adjacency
/// is given by `adjacent`. Components are returned with their nodes in the
/// original relative order.
fn components<F>(nodes: &[NodeId], adjacent: F) -> Vec<Vec<NodeId>>
where
    F: Fn(NodeId, NodeId) -> bool,
{
    let k = nodes.len();
    let mut comp = vec![usize::MAX; k];
    let mut num_comp = 0usize;
    for start in 0..k {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = num_comp;
        num_comp += 1;
        let mut stack = vec![start];
        comp[start] = id;
        while let Some(i) = stack.pop() {
            for j in 0..k {
                if comp[j] == usize::MAX && adjacent(nodes[i], nodes[j]) {
                    comp[j] = id;
                    stack.push(j);
                }
            }
        }
    }
    let mut out = vec![Vec::new(); num_comp];
    for (i, &c) in comp.iter().enumerate() {
        out[c].push(nodes[i]);
    }
    out
}

impl Dag {
    /// `true` iff the precedence graph is a series-parallel order.
    pub fn is_series_parallel(&self) -> bool {
        self.num_nodes() == 0 || SpDecomposition::decompose(self).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn single_job() {
        let g = Dag::independent(1);
        let d = SpDecomposition::decompose(&g).unwrap();
        assert_eq!(d.expr, SpExpr::Job(0));
        assert!(d.covers_all_jobs(1));
    }

    #[test]
    fn independent_is_parallel() {
        let g = Dag::independent(3);
        let d = SpDecomposition::decompose(&g).unwrap();
        match &d.expr {
            SpExpr::Parallel(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected parallel, got {other:?}"),
        }
        assert!(d.covers_all_jobs(3));
    }

    #[test]
    fn chain_is_series() {
        let g = Dag::chain(4);
        let d = SpDecomposition::decompose(&g).unwrap();
        match &d.expr {
            SpExpr::Series(cs) => assert_eq!(cs.len(), 4),
            other => panic!("expected series, got {other:?}"),
        }
    }

    #[test]
    fn diamond_decomposes() {
        let d = SpDecomposition::decompose(&diamond()).unwrap();
        assert!(d.covers_all_jobs(4));
        assert_eq!(d.expr.num_jobs(), 4);
        // Root must be a series with the fork in the middle.
        match &d.expr {
            SpExpr::Series(cs) => {
                assert_eq!(cs.len(), 3);
                assert_eq!(cs[0], SpExpr::Job(0));
                assert_eq!(cs[2], SpExpr::Job(3));
                match &cs[1] {
                    SpExpr::Parallel(ps) => assert_eq!(ps.len(), 2),
                    other => panic!("middle should be parallel, got {other:?}"),
                }
            }
            other => panic!("expected series root, got {other:?}"),
        }
    }

    #[test]
    fn n_graph_rejected() {
        let g = Dag::from_edges(4, &[(0, 2), (1, 2), (1, 3)]).unwrap();
        assert_eq!(
            SpDecomposition::decompose(&g).unwrap_err(),
            DagError::NotSeriesParallel
        );
        assert!(!g.is_series_parallel());
    }

    #[test]
    fn out_tree_decomposes() {
        let g = Dag::from_edges(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]).unwrap();
        let d = SpDecomposition::decompose(&g).unwrap();
        assert!(d.covers_all_jobs(7));
    }

    #[test]
    fn empty_graph_error() {
        assert_eq!(
            SpDecomposition::decompose(&Dag::independent(0)).unwrap_err(),
            DagError::EmptyGraph
        );
        assert!(Dag::independent(0).is_series_parallel());
    }

    #[test]
    fn expression_roundtrip_to_dag() {
        // S(0, P(1, S(2, 3)), 4)
        let expr = SpExpr::series(vec![
            SpExpr::Job(0),
            SpExpr::parallel(vec![
                SpExpr::Job(1),
                SpExpr::series(vec![SpExpr::Job(2), SpExpr::Job(3)]),
            ]),
            SpExpr::Job(4),
        ]);
        let dag = expr.to_dag(5).unwrap();
        assert!(dag.is_series_parallel());
        let reach = dag.reachability();
        assert!(reach.reaches(0, 1));
        assert!(reach.reaches(0, 4));
        assert!(reach.reaches(2, 3));
        assert!(reach.reaches(3, 4));
        assert!(!reach.comparable(1, 2));
        assert!(!reach.comparable(1, 3));
        // Re-decomposition covers all jobs.
        let d = SpDecomposition::decompose(&dag).unwrap();
        assert!(d.covers_all_jobs(5));
    }

    #[test]
    fn series_flattening() {
        let e = SpExpr::series(vec![
            SpExpr::series(vec![SpExpr::Job(0), SpExpr::Job(1)]),
            SpExpr::Job(2),
        ]);
        match e {
            SpExpr::Series(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected flattened series, got {other:?}"),
        }
    }

    #[test]
    fn parallel_flattening_and_singleton() {
        let e = SpExpr::parallel(vec![SpExpr::Job(7)]);
        assert_eq!(e, SpExpr::Job(7));
        let e2 = SpExpr::parallel(vec![
            SpExpr::parallel(vec![SpExpr::Job(0), SpExpr::Job(1)]),
            SpExpr::Job(2),
        ]);
        assert_eq!(e2.num_jobs(), 3);
    }

    #[test]
    fn minimal_maximal_jobs() {
        let expr = SpExpr::series(vec![
            SpExpr::parallel(vec![SpExpr::Job(0), SpExpr::Job(1)]),
            SpExpr::Job(2),
        ]);
        let mut mins = expr.minimal_jobs();
        mins.sort_unstable();
        assert_eq!(mins, vec![0, 1]);
        assert_eq!(expr.maximal_jobs(), vec![2]);
        assert_eq!(expr.depth(), 3);
    }

    #[test]
    fn decompose_matches_original_order() {
        // Build a moderately complex SP dag and check the decomposition
        // reproduces exactly the same partial order.
        let expr = SpExpr::series(vec![
            SpExpr::Job(0),
            SpExpr::parallel(vec![
                SpExpr::series(vec![SpExpr::Job(1), SpExpr::Job(2)]),
                SpExpr::series(vec![
                    SpExpr::Job(3),
                    SpExpr::parallel(vec![SpExpr::Job(4), SpExpr::Job(5)]),
                ]),
            ]),
            SpExpr::Job(6),
        ]);
        let dag = expr.to_dag(7).unwrap();
        let decomp = SpDecomposition::decompose(&dag).unwrap();
        let rebuilt = decomp.expr.to_dag(7).unwrap();
        assert_eq!(
            dag.transitive_closure(),
            rebuilt.transitive_closure(),
            "decomposition must induce the same partial order"
        );
    }
}
