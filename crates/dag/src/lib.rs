//! # mrls-dag — DAG substrate for multi-resource moldable scheduling
//!
//! This crate provides the directed-acyclic-graph machinery that the
//! [ICPP 2021 paper](https://arxiv.org/abs/2106.07059) *"Multi-Resource List
//! Scheduling of Moldable Parallel Jobs under Precedence Constraints"*
//! (Perotin, Sun, Raghavan) relies on:
//!
//! * a compact precedence graph over jobs ([`Dag`]) with constant-time access to
//!   predecessors and successors,
//! * topological orders and level structures ([`topo`]),
//! * weighted longest (critical) paths and path extraction ([`paths`]) — the
//!   quantity `C(p)` of Definition 2 in the paper,
//! * reachability, transitive closure and transitive reduction
//!   ([`reachability`]),
//! * classification of the special graph families the paper gives improved
//!   bounds for: independent sets, chains, in-/out-trees ([`classify`]),
//! * series-parallel decomposition ([`sp`]) used by the FPTAS allocator of
//!   Theorem 3/4 (Lemma 7, after Lepère, Trystram, Woeginger),
//! * Graphviz DOT export for debugging and documentation ([`dot`]).
//!
//! The crate is deliberately free of any scheduling policy: it only knows about
//! nodes (jobs), edges (precedence constraints) and node weights (execution
//! times chosen by a resource allocation).
//!
//! ## Quick example
//!
//! ```
//! use mrls_dag::{Dag, DagBuilder};
//!
//! // A diamond: 0 -> {1, 2} -> 3
//! let mut b = DagBuilder::new(4);
//! b.add_edge(0, 1).unwrap();
//! b.add_edge(0, 2).unwrap();
//! b.add_edge(1, 3).unwrap();
//! b.add_edge(2, 3).unwrap();
//! let dag: Dag = b.build().unwrap();
//!
//! assert_eq!(dag.num_nodes(), 4);
//! assert_eq!(dag.sources(), vec![0]);
//! assert_eq!(dag.sinks(), vec![3]);
//!
//! // Critical path with unit weights has three nodes.
//! let weights = vec![1.0; 4];
//! let cp = dag.critical_path(&weights);
//! assert_eq!(cp.length, 3.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod classify;
pub mod dot;
pub mod error;
pub mod graph;
pub mod paths;
pub mod reachability;
pub mod sp;
pub mod topo;

pub use classify::GraphClass;
pub use error::DagError;
pub use graph::{Dag, DagBuilder, NodeId};
pub use paths::CriticalPath;
pub use reachability::Reachability;
pub use sp::{SpDecomposition, SpExpr};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DagError>;
