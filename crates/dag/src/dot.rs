//! Graphviz DOT export, used by the CLI and for documentation figures.

use crate::graph::Dag;

impl Dag {
    /// Renders the DAG in Graphviz DOT syntax. `labels` optionally supplies a
    /// textual label per node (defaults to the node id); `None` entries fall
    /// back to the id as well.
    pub fn to_dot(&self, name: &str, labels: Option<&[String]>) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{}\" {{\n", sanitize(name)));
        out.push_str("  rankdir=TB;\n  node [shape=box];\n");
        for v in 0..self.num_nodes() {
            let label = labels
                .and_then(|l| l.get(v))
                .cloned()
                .unwrap_or_else(|| format!("j{v}"));
            out.push_str(&format!("  n{} [label=\"{}\"];\n", v, sanitize(&label)));
        }
        for (u, v) in self.edges() {
            out.push_str(&format!("  n{u} -> n{v};\n"));
        }
        out.push_str("}\n");
        out
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c == '"' || c == '\\' { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::Dag;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let dot = g.to_dot("test", None);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 [label=\"j0\"]"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_with_custom_labels() {
        let g = Dag::chain(2);
        let labels = vec!["load".to_string(), "solve".to_string()];
        let dot = g.to_dot("wf", Some(&labels));
        assert!(dot.contains("label=\"load\""));
        assert!(dot.contains("label=\"solve\""));
    }

    #[test]
    fn dot_sanitizes_quotes() {
        let g = Dag::independent(1);
        let labels = vec!["a\"b".to_string()];
        let dot = g.to_dot("x\"y", Some(&labels));
        assert!(!dot.contains("a\"b"));
        assert!(dot.contains("a_b"));
    }
}
