//! Reachability, transitive closure and transitive reduction.
//!
//! The series-parallel recogniser works on the *partial order* induced by the
//! DAG, i.e. its transitive closure. Closure rows are stored as dense bitsets
//! (`Vec<u64>` words) so that the recogniser's repeated comparability queries
//! stay cheap even for a few thousand jobs.

use crate::graph::{Dag, NodeId};

/// Dense transitive-closure matrix of a [`Dag`].
///
/// `reaches(u, v)` answers "is there a directed path from `u` to `v`?" (with
/// `u != v`; a node does not reach itself).
#[derive(Debug, Clone)]
pub struct Reachability {
    n: usize,
    words: usize,
    /// Row-major bitset: bit `v` of row `u` is set iff `u` reaches `v`.
    bits: Vec<u64>,
}

impl Reachability {
    /// Computes the transitive closure of `dag` in reverse topological order.
    pub fn new(dag: &Dag) -> Self {
        let n = dag.num_nodes();
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        let order = dag.topological_order();
        for &u in order.iter().rev() {
            // Row u = union of rows of successors, plus the successors
            // themselves.
            // Work on a scratch row to appease the borrow checker.
            let mut row = vec![0u64; words];
            for &v in dag.successors(u) {
                row[v / 64] |= 1u64 << (v % 64);
                let src = &bits[v * words..(v + 1) * words];
                for (r, s) in row.iter_mut().zip(src.iter()) {
                    *r |= *s;
                }
            }
            bits[u * words..(u + 1) * words].copy_from_slice(&row);
        }
        Reachability { n, words, bits }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Returns `true` iff there is a directed path from `u` to `v` (`u != v`).
    #[inline]
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        debug_assert!(u < self.n && v < self.n);
        (self.bits[u * self.words + v / 64] >> (v % 64)) & 1 == 1
    }

    /// Returns `true` iff `u` and `v` are comparable in the induced partial
    /// order (one reaches the other). A node is *not* comparable to itself by
    /// this definition.
    #[inline]
    pub fn comparable(&self, u: NodeId, v: NodeId) -> bool {
        u != v && (self.reaches(u, v) || self.reaches(v, u))
    }

    /// Number of ordered pairs `(u, v)` with `u` reaching `v`.
    pub fn num_reachable_pairs(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// All descendants of `u` (nodes reachable from `u`), ascending.
    pub fn descendants(&self, u: NodeId) -> Vec<NodeId> {
        (0..self.n).filter(|&v| self.reaches(u, v)).collect()
    }

    /// All ancestors of `v` (nodes that reach `v`), ascending.
    pub fn ancestors(&self, v: NodeId) -> Vec<NodeId> {
        (0..self.n).filter(|&u| self.reaches(u, v)).collect()
    }
}

impl Dag {
    /// Computes the transitive closure as a [`Reachability`] matrix.
    pub fn reachability(&self) -> Reachability {
        Reachability::new(self)
    }

    /// Returns the transitive reduction of the DAG: the unique minimal edge
    /// set with the same reachability relation. An edge `u -> v` is redundant
    /// iff some other successor of `u` reaches `v`.
    pub fn transitive_reduction(&self) -> Dag {
        let reach = self.reachability();
        let mut keep = Vec::new();
        for (u, v) in self.edges() {
            let redundant = self
                .successors(u)
                .iter()
                .any(|&w| w != v && reach.reaches(w, v));
            if !redundant {
                keep.push((u, v));
            }
        }
        Dag::from_edges(self.num_nodes(), &keep)
            .expect("a subset of the edges of a DAG is still a DAG")
    }

    /// Returns the transitive closure as an explicit DAG (every reachable pair
    /// becomes an edge). Mostly useful for tests and the SP recogniser.
    pub fn transitive_closure(&self) -> Dag {
        let reach = self.reachability();
        let mut edges = Vec::new();
        for u in 0..self.num_nodes() {
            for v in 0..self.num_nodes() {
                if reach.reaches(u, v) {
                    edges.push((u, v));
                }
            }
        }
        Dag::from_edges(self.num_nodes(), &edges).expect("the closure of a DAG is a DAG")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn diamond_reachability() {
        let r = diamond().reachability();
        assert!(r.reaches(0, 3));
        assert!(r.reaches(0, 1));
        assert!(!r.reaches(1, 2));
        assert!(!r.reaches(3, 0));
        assert!(!r.reaches(0, 0));
        assert!(r.comparable(0, 3));
        assert!(!r.comparable(1, 2));
        assert!(!r.comparable(2, 2));
    }

    #[test]
    fn chain_reachability_counts() {
        let g = Dag::chain(5);
        let r = g.reachability();
        // 4+3+2+1 reachable pairs
        assert_eq!(r.num_reachable_pairs(), 10);
        assert_eq!(r.descendants(0), vec![1, 2, 3, 4]);
        assert_eq!(r.ancestors(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn independent_reachability_empty() {
        let r = Dag::independent(3).reachability();
        assert_eq!(r.num_reachable_pairs(), 0);
        assert!(r.descendants(0).is_empty());
    }

    #[test]
    fn transitive_reduction_removes_shortcut() {
        // 0->1->2 plus shortcut 0->2; the reduction drops 0->2.
        let g = Dag::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let red = g.transitive_reduction();
        assert_eq!(red.num_edges(), 2);
        assert!(red.has_edge(0, 1));
        assert!(red.has_edge(1, 2));
        assert!(!red.has_edge(0, 2));
    }

    #[test]
    fn transitive_reduction_preserves_reachability() {
        let g = Dag::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (0, 3),
                (3, 4),
                (1, 4),
                (4, 5),
            ],
        )
        .unwrap();
        let red = g.transitive_reduction();
        let r1 = g.reachability();
        let r2 = red.reachability();
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(r1.reaches(u, v), r2.reaches(u, v), "pair {u}->{v}");
            }
        }
        assert!(red.num_edges() <= g.num_edges());
    }

    #[test]
    fn transitive_closure_adds_shortcut() {
        let g = Dag::chain(4);
        let clo = g.transitive_closure();
        assert_eq!(clo.num_edges(), 6);
        assert!(clo.has_edge(0, 3));
    }

    #[test]
    fn closure_of_reduction_matches_closure() {
        let g = diamond();
        let a = g.transitive_closure();
        let b = g.transitive_reduction().transitive_closure();
        assert_eq!(a, b);
    }

    #[test]
    fn large_chain_bitset_boundaries() {
        // Exercises multi-word bitset rows (n > 64).
        let g = Dag::chain(130);
        let r = g.reachability();
        assert!(r.reaches(0, 129));
        assert!(r.reaches(63, 64));
        assert!(r.reaches(64, 128));
        assert!(!r.reaches(129, 0));
        assert_eq!(r.num_reachable_pairs(), 130 * 129 / 2);
    }
}
