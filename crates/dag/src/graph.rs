//! Compact precedence-graph representation.
//!
//! A [`Dag`] stores, for every node (job), the list of immediate predecessors
//! and immediate successors. Construction goes through [`DagBuilder`], which
//! validates node ids, rejects self loops and duplicate edges, and checks
//! acyclicity once at [`DagBuilder::build`] time. After construction the graph
//! is immutable, which lets the scheduler and the analysis code share it
//! freely.

use crate::error::DagError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Identifier of a node (job) in a [`Dag`]. Nodes are numbered `0..num_nodes`.
pub type NodeId = usize;

/// An immutable directed acyclic graph over `0..num_nodes` nodes.
///
/// Edges are precedence constraints: an edge `u -> v` means job `v` may only
/// start after job `u` has completed (Section 3.1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dag {
    num_nodes: usize,
    /// `succs[u]` = immediate successors of `u`, sorted ascending.
    succs: Vec<Vec<NodeId>>,
    /// `preds[v]` = immediate predecessors of `v`, sorted ascending.
    preds: Vec<Vec<NodeId>>,
    /// Total number of edges.
    num_edges: usize,
}

impl Dag {
    /// Builds a DAG with `num_nodes` nodes and no edges (an *independent* job
    /// set in the paper's terminology).
    pub fn independent(num_nodes: usize) -> Self {
        Dag {
            num_nodes,
            succs: vec![Vec::new(); num_nodes],
            preds: vec![Vec::new(); num_nodes],
            num_edges: 0,
        }
    }

    /// Builds a DAG directly from an edge list. Convenience wrapper around
    /// [`DagBuilder`].
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId)]) -> Result<Self> {
        let mut b = DagBuilder::new(num_nodes);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        b.build()
    }

    /// Builds a chain `0 -> 1 -> ... -> n-1`.
    pub fn chain(num_nodes: usize) -> Self {
        let mut b = DagBuilder::new(num_nodes);
        for i in 1..num_nodes {
            b.add_edge(i - 1, i).expect("chain edges are always valid");
        }
        b.build().expect("a chain is acyclic")
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_nodes == 0
    }

    /// Immediate successors of `u` (sorted ascending).
    #[inline]
    pub fn successors(&self, u: NodeId) -> &[NodeId] {
        &self.succs[u]
    }

    /// Immediate predecessors of `v` (sorted ascending).
    #[inline]
    pub fn predecessors(&self, v: NodeId) -> &[NodeId] {
        &self.preds[v]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.succs[u].len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.preds[v].len()
    }

    /// Returns `true` if the edge `u -> v` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.num_nodes && self.succs[u].binary_search(&v).is_ok()
    }

    /// All nodes with no predecessors ("ready at time zero" in list
    /// scheduling), ascending.
    pub fn sources(&self) -> Vec<NodeId> {
        (0..self.num_nodes)
            .filter(|&v| self.preds[v].is_empty())
            .collect()
    }

    /// All nodes with no successors, ascending.
    pub fn sinks(&self) -> Vec<NodeId> {
        (0..self.num_nodes)
            .filter(|&v| self.succs[v].is_empty())
            .collect()
    }

    /// Iterator over all edges `(u, v)` in ascending `(u, v)` order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// Validates an externally supplied per-node weight vector.
    pub(crate) fn check_weights(&self, weights: &[f64]) -> Result<()> {
        if weights.len() != self.num_nodes {
            return Err(DagError::WeightLengthMismatch {
                expected: self.num_nodes,
                got: weights.len(),
            });
        }
        Ok(())
    }

    /// Returns the induced subgraph over `nodes` together with the mapping
    /// from new node ids to the original ids (`mapping[new] = old`). Edges of
    /// the original graph between retained nodes are preserved.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Dag, Vec<NodeId>) {
        let mut old_to_new = vec![usize::MAX; self.num_nodes];
        let mut mapping = Vec::with_capacity(nodes.len());
        for (new, &old) in nodes.iter().enumerate() {
            old_to_new[old] = new;
            mapping.push(old);
        }
        let mut b = DagBuilder::new(nodes.len());
        for &old_u in nodes {
            for &old_v in &self.succs[old_u] {
                if old_to_new[old_v] != usize::MAX {
                    b.add_edge(old_to_new[old_u], old_to_new[old_v])
                        .expect("subgraph edge endpoints are in range");
                }
            }
        }
        (b.build().expect("a subgraph of a DAG is a DAG"), mapping)
    }

    /// Like [`Dag::induced_subgraph`], but for `nodes` **sorted ascending**
    /// (an unchecked contract in release builds): membership is resolved by
    /// binary search instead of an O(num_nodes) scratch map, so the cost
    /// scales with the subgraph, not the graph — what the incremental
    /// serving path needs when re-planning a small pending frontier inside a
    /// huge world. Produces exactly the same graph and mapping as
    /// [`Dag::induced_subgraph`].
    pub fn induced_subgraph_sorted(&self, nodes: &[NodeId]) -> (Dag, Vec<NodeId>) {
        debug_assert!(
            nodes.windows(2).all(|w| w[0] < w[1]),
            "induced_subgraph_sorted requires strictly ascending nodes"
        );
        let mut b = DagBuilder::new(nodes.len());
        for (new_u, &old_u) in nodes.iter().enumerate() {
            for &old_v in &self.succs[old_u] {
                if let Ok(new_v) = nodes.binary_search(&old_v) {
                    b.add_edge(new_u, new_v)
                        .expect("subgraph edge endpoints are in range");
                }
            }
        }
        (
            b.build().expect("a subgraph of a DAG is a DAG"),
            nodes.to_vec(),
        )
    }

    /// Grows the graph **in place** by `added` nodes (numbered
    /// `num_nodes..num_nodes + added`) and the given edges, without rebuilding
    /// the adjacency of the existing nodes — the incremental-world operation
    /// the online service relies on for O(batch)-per-round growth.
    ///
    /// The pre-existing prefix is *frozen*: every new edge must point at an
    /// appended node (`v >= old num_nodes`); sources may be old or new. Edges
    /// among the appended nodes are checked for acyclicity (edges from the
    /// frozen prefix can never close a cycle because nothing points back into
    /// it). Duplicate edges are ignored, matching [`DagBuilder::build`].
    ///
    /// On error the graph is left unchanged.
    pub fn append(&mut self, added: usize, edges: &[(NodeId, NodeId)]) -> Result<()> {
        let old_n = self.num_nodes;
        let new_n = old_n + added;
        for &(u, v) in edges {
            if u >= new_n || v >= new_n {
                return Err(DagError::NodeOutOfRange {
                    node: u.max(v),
                    num_nodes: new_n,
                });
            }
            if u == v {
                return Err(DagError::SelfLoop(u));
            }
            if v < old_n {
                return Err(DagError::EdgeIntoFrozenPrefix {
                    from: u,
                    to: v,
                    frozen: old_n,
                });
            }
        }
        // Acyclicity only involves the appended block: validate it in
        // isolation (shifted down by `old_n`) before touching the adjacency.
        let local: Vec<(NodeId, NodeId)> = edges
            .iter()
            .filter(|&&(u, _)| u >= old_n)
            .map(|&(u, v)| (u - old_n, v - old_n))
            .collect();
        Dag::from_edges(added, &local).map_err(|e| match e {
            DagError::CycleDetected { witness } => DagError::CycleDetected {
                witness: witness + old_n,
            },
            other => other,
        })?;
        self.succs.resize(new_n, Vec::new());
        self.preds.resize(new_n, Vec::new());
        for &(u, v) in edges {
            if let Err(pos) = self.succs[u].binary_search(&v) {
                self.succs[u].insert(pos, v);
                let ppos = self.preds[v]
                    .binary_search(&u)
                    .expect_err("succ/pred lists agree");
                self.preds[v].insert(ppos, u);
                self.num_edges += 1;
            }
        }
        self.num_nodes = new_n;
        Ok(())
    }

    /// Returns the reverse graph (every edge flipped). Useful for computing
    /// bottom levels as top levels of the reverse graph.
    pub fn reversed(&self) -> Dag {
        Dag {
            num_nodes: self.num_nodes,
            succs: self.preds.clone(),
            preds: self.succs.clone(),
            num_edges: self.num_edges,
        }
    }
}

/// Incremental builder for [`Dag`].
#[derive(Debug, Clone)]
pub struct DagBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl DagBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        DagBuilder {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Adds a precedence edge `u -> v`. Duplicate edges are silently ignored
    /// at build time. Returns an error for out-of-range endpoints or self
    /// loops; cycles are only detected at [`DagBuilder::build`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self> {
        if u >= self.num_nodes {
            return Err(DagError::NodeOutOfRange {
                node: u,
                num_nodes: self.num_nodes,
            });
        }
        if v >= self.num_nodes {
            return Err(DagError::NodeOutOfRange {
                node: v,
                num_nodes: self.num_nodes,
            });
        }
        if u == v {
            return Err(DagError::SelfLoop(u));
        }
        self.edges.push((u, v));
        Ok(self)
    }

    /// Adds many edges at once.
    pub fn add_edges(&mut self, edges: &[(NodeId, NodeId)]) -> Result<&mut Self> {
        for &(u, v) in edges {
            self.add_edge(u, v)?;
        }
        Ok(self)
    }

    /// Finalises the graph, deduplicating edges and verifying acyclicity.
    pub fn build(&self) -> Result<Dag> {
        let mut succs = vec![Vec::new(); self.num_nodes];
        let mut preds = vec![Vec::new(); self.num_nodes];
        let mut sorted = self.edges.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let num_edges = sorted.len();
        for (u, v) in sorted {
            succs[u].push(v);
            preds[v].push(u);
        }
        for list in succs.iter_mut().chain(preds.iter_mut()) {
            list.sort_unstable();
        }
        let dag = Dag {
            num_nodes: self.num_nodes,
            succs,
            preds,
            num_edges,
        };
        // Kahn's algorithm to detect cycles.
        let mut indeg: Vec<usize> = (0..dag.num_nodes).map(|v| dag.in_degree(v)).collect();
        let mut stack: Vec<NodeId> = (0..dag.num_nodes).filter(|&v| indeg[v] == 0).collect();
        let mut visited = 0usize;
        while let Some(u) = stack.pop() {
            visited += 1;
            for &v in dag.successors(u) {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
        }
        if visited != dag.num_nodes {
            let witness = (0..dag.num_nodes)
                .find(|&v| indeg[v] > 0)
                .expect("some node has positive residual in-degree on a cycle");
            return Err(DagError::CycleDetected { witness });
        }
        Ok(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn independent_has_no_edges() {
        let g = Dag::independent(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.sources(), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.sinks(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn chain_structure() {
        let g = Dag::chain(4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![3]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn diamond_degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.successors(0), &[1, 2]);
        assert_eq!(g.predecessors(3), &[1, 2]);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let g = Dag::from_edges(3, &[(0, 1), (0, 1), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = DagBuilder::new(2);
        let err = b.add_edge(0, 5).unwrap_err();
        assert!(matches!(err, DagError::NodeOutOfRange { node: 5, .. }));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = DagBuilder::new(2);
        assert_eq!(b.add_edge(1, 1).unwrap_err(), DagError::SelfLoop(1));
    }

    #[test]
    fn rejects_cycle() {
        let err = Dag::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap_err();
        assert!(matches!(err, DagError::CycleDetected { .. }));
    }

    #[test]
    fn rejects_two_cycle() {
        let err = Dag::from_edges(2, &[(0, 1), (1, 0)]).unwrap_err();
        assert!(matches!(err, DagError::CycleDetected { .. }));
    }

    #[test]
    fn edges_iterator_sorted() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = Dag::independent(0);
        assert!(g.is_empty());
        assert!(g.sources().is_empty());
        assert!(g.edges().next().is_none());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = diamond();
        let (sub, map) = g.induced_subgraph(&[0, 1, 3]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(map, vec![0, 1, 3]);
        // 0->1 and 1->3 survive, 0->2->3 path is gone.
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = diamond();
        let r = g.reversed();
        assert!(r.has_edge(1, 0));
        assert!(r.has_edge(3, 2));
        assert_eq!(r.sources(), vec![3]);
        assert_eq!(r.sinks(), vec![0]);
    }

    #[test]
    fn serde_roundtrip() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: Dag = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn sorted_subgraph_matches_general_subgraph() {
        let g =
            Dag::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 5)]).unwrap();
        for nodes in [vec![0, 1, 3], vec![2, 3, 4, 5], vec![1], vec![], vec![0, 5]] {
            let (a, map_a) = g.induced_subgraph(&nodes);
            let (b, map_b) = g.induced_subgraph_sorted(&nodes);
            assert_eq!(a, b, "subgraph over {nodes:?} diverged");
            assert_eq!(map_a, map_b);
        }
    }

    #[test]
    fn append_grows_equal_to_batch_rebuild() {
        // Growing in place must be indistinguishable from rebuilding from the
        // combined edge list (the differential service harness relies on it).
        let mut g = diamond();
        let new_edges = [(3, 4), (1, 5), (4, 5), (5, 6)];
        g.append(3, &new_edges).unwrap();
        let mut all: Vec<(usize, usize)> = diamond().edges().collect();
        all.extend_from_slice(&new_edges);
        let rebuilt = Dag::from_edges(7, &all).unwrap();
        assert_eq!(g, rebuilt);
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.predecessors(5), &[1, 4]);
    }

    #[test]
    fn append_with_no_edges_adds_isolated_nodes() {
        let mut g = Dag::independent(2);
        g.append(2, &[]).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.sources(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn append_rejects_edges_into_the_frozen_prefix() {
        let mut g = diamond();
        let before = g.clone();
        let err = g.append(1, &[(4, 2)]).unwrap_err();
        assert!(matches!(
            err,
            DagError::EdgeIntoFrozenPrefix {
                from: 4,
                to: 2,
                frozen: 4
            }
        ));
        // Also from an old node into an old node.
        let err = g.append(1, &[(0, 3)]).unwrap_err();
        assert!(matches!(err, DagError::EdgeIntoFrozenPrefix { .. }));
        assert_eq!(g, before, "failed append must leave the graph unchanged");
    }

    #[test]
    fn append_rejects_cycles_and_bad_ids_without_mutating() {
        let mut g = diamond();
        let before = g.clone();
        let err = g.append(2, &[(4, 5), (5, 4)]).unwrap_err();
        assert!(matches!(err, DagError::CycleDetected { witness } if witness >= 4));
        assert!(matches!(
            g.append(1, &[(4, 4)]).unwrap_err(),
            DagError::SelfLoop(4)
        ));
        assert!(matches!(
            g.append(1, &[(0, 9)]).unwrap_err(),
            DagError::NodeOutOfRange { node: 9, .. }
        ));
        assert_eq!(g, before);
    }

    #[test]
    fn append_deduplicates_repeated_edges() {
        let mut g = Dag::chain(2);
        g.append(1, &[(1, 2), (1, 2), (0, 2)]).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.predecessors(2), &[0, 1]);
    }
}
