//! Weighted critical-path computations.
//!
//! Given per-node weights (job execution times under a fixed resource
//! allocation), the *critical path length* `C(p)` of Definition 2 in the paper
//! is the maximum, over all paths `f` of the DAG, of the sum of node weights
//! along `f`. These routines also expose top/bottom levels, which drive the
//! critical-path priority rule of the list scheduler.

use crate::graph::{Dag, NodeId};
use crate::Result;

/// A critical (longest) path of a weighted DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Total weight along the path (`C(p)` in the paper). Zero for an empty
    /// graph.
    pub length: f64,
    /// The nodes along the path, in precedence order. Empty for an empty
    /// graph.
    pub nodes: Vec<NodeId>,
}

impl Dag {
    /// *Top level* of every node: the largest total weight of a path ending at
    /// (and including) the node. Equivalently the earliest possible completion
    /// time of the job if every job ran with its given weight and unlimited
    /// resources.
    pub fn top_levels(&self, weights: &[f64]) -> Result<Vec<f64>> {
        self.check_weights(weights)?;
        let mut top = vec![0.0f64; self.num_nodes()];
        for &u in &self.topological_order() {
            let best_pred = self
                .predecessors(u)
                .iter()
                .map(|&p| top[p])
                .fold(0.0f64, f64::max);
            top[u] = best_pred + weights[u];
        }
        Ok(top)
    }

    /// *Bottom level* of every node: the largest total weight of a path
    /// starting at (and including) the node. This is the classic
    /// critical-path priority used by list schedulers.
    pub fn bottom_levels(&self, weights: &[f64]) -> Result<Vec<f64>> {
        self.check_weights(weights)?;
        let mut bottom = vec![0.0f64; self.num_nodes()];
        let order = self.topological_order();
        for &u in order.iter().rev() {
            let best_succ = self
                .successors(u)
                .iter()
                .map(|&s| bottom[s])
                .fold(0.0f64, f64::max);
            bottom[u] = best_succ + weights[u];
        }
        Ok(bottom)
    }

    /// Length of the critical path, i.e. `C(p) = max_f Σ_{j∈f} t_j(p_j)`.
    /// Returns `0.0` for an empty graph.
    pub fn critical_path_length(&self, weights: &[f64]) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.top_levels(weights)
            .expect("weights validated by caller or panic is acceptable here")
            .into_iter()
            .fold(0.0f64, f64::max)
    }

    /// Computes a critical (longest) path and its node sequence.
    pub fn critical_path(&self, weights: &[f64]) -> CriticalPath {
        if self.num_nodes() == 0 {
            return CriticalPath {
                length: 0.0,
                nodes: Vec::new(),
            };
        }
        let top = self
            .top_levels(weights)
            .expect("weight vector must match node count");
        // Find the endpoint with the maximum top level, then walk backwards
        // choosing, at each step, a predecessor realising the value.
        let mut end = 0usize;
        for v in 1..self.num_nodes() {
            if top[v] > top[end] {
                end = v;
            }
        }
        let mut nodes = vec![end];
        let mut current = end;
        loop {
            let preds = self.predecessors(current);
            if preds.is_empty() {
                break;
            }
            let target = top[current] - weights[current];
            let mut chosen = preds[0];
            let mut best = f64::NEG_INFINITY;
            for &p in preds {
                if top[p] > best {
                    best = top[p];
                    chosen = p;
                }
            }
            debug_assert!(
                (best - target).abs() <= 1e-9 * (1.0 + target.abs()),
                "predecessor top level must realise the path value"
            );
            nodes.push(chosen);
            current = chosen;
        }
        nodes.reverse();
        CriticalPath {
            length: top[end],
            nodes,
        }
    }

    /// Sum of weights along an explicit path; used by tests and the analysis
    /// crate. Does not verify that consecutive nodes are actually linked.
    pub fn path_weight(&self, path: &[NodeId], weights: &[f64]) -> f64 {
        path.iter().map(|&v| weights[v]).sum()
    }

    /// Verifies that `path` is a genuine directed path of the DAG (each
    /// consecutive pair is an edge).
    pub fn is_path(&self, path: &[NodeId]) -> bool {
        path.windows(2).all(|w| self.has_edge(w[0], w[1]))
            && path.iter().all(|&v| v < self.num_nodes())
    }

    /// Total weight of all nodes — the "work" of the whole graph under the
    /// weights, used as a sanity bound (`C ≤ total` on a chain, `C ≥ max`).
    pub fn total_weight(&self, weights: &[f64]) -> f64 {
        weights.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn unit_weights_diamond() {
        let g = diamond();
        let w = vec![1.0; 4];
        assert_eq!(g.critical_path_length(&w), 3.0);
        let cp = g.critical_path(&w);
        assert_eq!(cp.length, 3.0);
        assert_eq!(cp.nodes.len(), 3);
        assert!(g.is_path(&cp.nodes));
        assert_eq!(cp.nodes[0], 0);
        assert_eq!(cp.nodes[2], 3);
    }

    #[test]
    fn weighted_diamond_prefers_heavy_branch() {
        let g = diamond();
        let w = vec![1.0, 10.0, 2.0, 1.0];
        let cp = g.critical_path(&w);
        assert_eq!(cp.nodes, vec![0, 1, 3]);
        assert!((cp.length - 12.0).abs() < 1e-12);
    }

    #[test]
    fn chain_critical_path_is_everything() {
        let g = Dag::chain(5);
        let w = vec![2.0; 5];
        let cp = g.critical_path(&w);
        assert_eq!(cp.nodes, vec![0, 1, 2, 3, 4]);
        assert!((cp.length - 10.0).abs() < 1e-12);
        assert!((cp.length - g.total_weight(&w)).abs() < 1e-12);
    }

    #[test]
    fn independent_critical_path_is_max() {
        let g = Dag::independent(4);
        let w = vec![1.0, 5.0, 3.0, 2.0];
        assert!((g.critical_path_length(&w) - 5.0).abs() < 1e-12);
        let cp = g.critical_path(&w);
        assert_eq!(cp.nodes, vec![1]);
    }

    #[test]
    fn top_and_bottom_levels() {
        let g = diamond();
        let w = vec![1.0, 2.0, 3.0, 4.0];
        let top = g.top_levels(&w).unwrap();
        let bottom = g.bottom_levels(&w).unwrap();
        assert_eq!(top, vec![1.0, 3.0, 4.0, 8.0]);
        assert_eq!(bottom, vec![8.0, 6.0, 7.0, 4.0]);
        // top[v] + bottom[v] - w[v] equals length of longest path through v.
        let through: Vec<f64> = (0..4).map(|v| top[v] + bottom[v] - w[v]).collect();
        assert!(through.iter().cloned().fold(f64::MIN, f64::max) - 8.0 < 1e-12);
    }

    #[test]
    fn weight_length_mismatch_is_error() {
        let g = diamond();
        assert!(g.top_levels(&[1.0, 2.0]).is_err());
        assert!(g.bottom_levels(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn empty_graph_zero_path() {
        let g = Dag::independent(0);
        assert_eq!(g.critical_path_length(&[]), 0.0);
        let cp = g.critical_path(&[]);
        assert_eq!(cp.length, 0.0);
        assert!(cp.nodes.is_empty());
    }

    #[test]
    fn zero_weights_allowed() {
        let g = diamond();
        let w = vec![0.0; 4];
        assert_eq!(g.critical_path_length(&w), 0.0);
    }

    #[test]
    fn is_path_rejects_non_edges() {
        let g = diamond();
        assert!(g.is_path(&[0, 1, 3]));
        assert!(!g.is_path(&[0, 3]));
        assert!(!g.is_path(&[1, 0]));
    }

    #[test]
    fn path_weight_sums() {
        let g = diamond();
        let w = vec![1.0, 2.0, 3.0, 4.0];
        assert!((g.path_weight(&[0, 2, 3], &w) - 8.0).abs() < 1e-12);
    }
}
