//! Prometheus text-format (version 0.0.4) rendering of a [`Snapshot`], plus a
//! line-format checker used by the CI smoke test. Output order is canonical:
//! counters, then gauges, then histograms, each sorted by metric name.

use crate::{bucket_upper_bound, HistogramSnapshot, Snapshot};

/// Maps a registry name like `core.ready_queue.early_exits` to a Prometheus
/// metric name `mrls_core_ready_queue_early_exits`.
pub fn metric_name(prefix: &str, name: &str) -> String {
    let mut out = String::with_capacity(prefix.len() + name.len());
    out.push_str(prefix);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a string for use inside a quoted Prometheus label value:
/// backslash, double quote, and newline become backslash escapes, per the
/// text exposition format.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Inclusive upper bound of the log2 bucket containing the `q`-quantile of
/// `h` (`q` in `(0, 1]`): the smallest bucket upper bound at or below which
/// at least `ceil(q * count)` observations fall. 0 for an empty histogram.
pub fn quantile_upper_bound(h: &HistogramSnapshot, q: f64) -> u64 {
    if h.count == 0 {
        return 0;
    }
    let target = (q * h.count as f64).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (idx, n) in h.buckets.iter().enumerate() {
        cumulative = cumulative.saturating_add(*n);
        if cumulative >= target {
            return bucket_upper_bound(idx);
        }
    }
    bucket_upper_bound(h.buckets.len().saturating_sub(1))
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (idx, n) in h.buckets.iter().enumerate() {
        cumulative = cumulative.saturating_add(*n);
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            bucket_upper_bound(idx)
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{name}_sum {}\n", h.sum));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Renders the snapshot in Prometheus text format. Deterministic namespaces
/// get the `mrls_` prefix; wall-clock histograms get `mrls_wall_` so a scrape
/// can exclude nondeterministic series by prefix.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (k, v) in &snap.counters {
        let name = metric_name("mrls_", k);
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (k, v) in &snap.gauges {
        let name = metric_name("mrls_", k);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (k, h) in &snap.histograms {
        render_histogram(&mut out, &metric_name("mrls_", k), h);
    }
    for (k, h) in &snap.wall {
        let name = metric_name("mrls_wall_", k);
        render_histogram(&mut out, &name, h);
        // SLO companion gauge: the log2-bucket upper estimate of the p99,
        // so a scrape can alert on e.g. round latency vs the configured
        // tick without PromQL histogram_quantile over sparse buckets.
        out.push_str(&format!(
            "# TYPE {name}_p99 gauge\n{name}_p99 {}\n",
            quantile_upper_bound(h, 0.99)
        ));
    }
    out
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_set(s: &str) -> bool {
    // Accepts `name="value"(,name="value")*`. Values may contain the three
    // exposition-format escapes (`\\`, `\"`, `\n`); a bare quote or newline
    // inside a value, an unknown escape, or an unterminated value is
    // malformed.
    let mut rest = s;
    loop {
        let Some(eq) = rest.find('=') else {
            return false;
        };
        if !valid_metric_name(&rest[..eq]) {
            return false;
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return false;
        }
        let mut end = None;
        let mut escaped = false;
        for (i, c) in after.char_indices().skip(1) {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return false;
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else if c == '\n' {
                return false;
            }
        }
        let Some(end) = end else {
            return false;
        };
        rest = &after[end + 1..];
        if rest.is_empty() {
            return true;
        }
        let Some(r) = rest.strip_prefix(',') else {
            return false;
        };
        rest = r;
    }
}

/// Checks that `text` is well-formed Prometheus exposition format: every line
/// is a `# TYPE`/`# HELP` comment or a `name[{labels}] value` sample with a
/// parseable number. Returns the number of sample lines.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let rest = comment.trim_start();
            let mut words = rest.split_whitespace();
            match words.next() {
                Some("TYPE") => {
                    let name = words
                        .next()
                        .ok_or(format!("line {lineno}: TYPE without name"))?;
                    if !valid_metric_name(name) {
                        return Err(format!("line {lineno}: bad TYPE metric name `{name}`"));
                    }
                    match words.next() {
                        Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                        other => {
                            return Err(format!("line {lineno}: bad TYPE kind {other:?}"));
                        }
                    }
                }
                Some("HELP") => {}
                _ => return Err(format!("line {lineno}: unknown comment `{line}`")),
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {lineno}: sample without value"))?;
        let name = if let Some((name, rest)) = series.split_once('{') {
            let labels = rest
                .strip_suffix('}')
                .ok_or(format!("line {lineno}: unterminated label set"))?;
            if !valid_label_set(labels) {
                return Err(format!("line {lineno}: bad label set `{{{labels}}}`"));
            }
            name
        } else {
            series
        };
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: bad metric name `{name}`"));
        }
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "-Inf" && value != "NaN" {
            return Err(format!("line {lineno}: bad sample value `{value}`"));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("core.ready_queue.early_exits".into(), 7);
        s.gauges.insert("serve.queue_depth".into(), 3);
        let h = s
            .histograms
            .entry("serve.plan_diff.updates".into())
            .or_default();
        h.observe(0);
        h.observe(1);
        h.observe(5);
        s.wall
            .entry("serve.round_us".into())
            .or_default()
            .observe(120);
        s
    }

    #[test]
    fn render_is_valid_and_cumulative() {
        let text = render(&sample_snapshot());
        let samples = validate(&text).expect("rendering validates");
        assert!(samples >= 8, "got {samples} samples:\n{text}");
        assert!(text.contains("# TYPE mrls_core_ready_queue_early_exits counter\n"));
        assert!(text.contains("mrls_core_ready_queue_early_exits 7\n"));
        assert!(text.contains("mrls_serve_queue_depth 3\n"));
        // Buckets are cumulative: le=0 has 1, le=1 has 2, le=3 has 2, le=7 has 3.
        assert!(text.contains("mrls_serve_plan_diff_updates_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("mrls_serve_plan_diff_updates_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("mrls_serve_plan_diff_updates_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("mrls_serve_plan_diff_updates_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("mrls_serve_plan_diff_updates_sum 6\n"));
        assert!(text.contains("mrls_serve_plan_diff_updates_count 3\n"));
        assert!(text.contains("mrls_wall_serve_round_us_sum 120\n"));
        // Every wall histogram carries its p99 SLO companion gauge: one
        // sample of 120µs lands in the log2 bucket topping out at 127.
        assert!(text.contains("# TYPE mrls_wall_serve_round_us_p99 gauge\n"));
        assert!(text.contains("mrls_wall_serve_round_us_p99 127\n"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate("mrls_ok 1\n").is_ok());
        assert!(validate("1bad_name 1\n").is_err());
        assert!(validate("mrls_ok notanumber\n").is_err());
        assert!(validate("mrls_ok{le=\"unterminated} 1\n").is_err());
        assert!(validate("mrls_ok{le=} 1\n").is_err());
        assert!(validate("# TYPE mrls_ok flavor\n").is_err());
        assert!(validate("# random comment\n").is_err());
        assert!(validate("# HELP mrls_ok text here\n").is_ok());
    }

    #[test]
    fn label_values_escape_and_validate() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(
            escape_label_value("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd",
            "quote, backslash, and newline get escaped"
        );
        // Escaped values pass the validator; raw specials do not.
        let escaped = format!(
            "mrls_ok{{tenant=\"{}\"}} 1\n",
            escape_label_value("a\"b\\c\nd")
        );
        assert!(
            validate(&escaped).is_ok(),
            "escaped value rejected:\n{escaped}"
        );
        assert!(
            validate("mrls_ok{tenant=\"a\"b\"} 1\n").is_err(),
            "bare quote"
        );
        assert!(
            validate("mrls_ok{tenant=\"a\\zb\"} 1\n").is_err(),
            "unknown escape"
        );
        assert!(
            validate("mrls_ok{tenant=\"a\\\\\"} 1\n").is_ok(),
            "trailing escaped backslash"
        );
        assert!(
            validate("mrls_ok{a=\"1\",b=\"2\"} 3\n").is_ok(),
            "multiple labels"
        );
        assert!(
            validate("mrls_ok{a=\"1\"b=\"2\"} 3\n").is_err(),
            "missing comma"
        );
        // A comma *inside* an escaped-quoted value must not split the pair.
        assert!(validate("mrls_ok{a=\"x,y\"} 3\n").is_ok());
    }

    #[test]
    fn quantile_upper_bound_tracks_log2_buckets() {
        let mut h = HistogramSnapshot::default();
        assert_eq!(quantile_upper_bound(&h, 0.99), 0, "empty histogram");
        for _ in 0..99 {
            h.observe(3); // bucket [2, 3]
        }
        assert_eq!(quantile_upper_bound(&h, 0.99), 3);
        h.observe(1000); // one outlier in bucket [512, 1023]
        assert_eq!(quantile_upper_bound(&h, 0.99), 3, "99 of 100 below 4");
        assert_eq!(quantile_upper_bound(&h, 1.0), 1023, "max tracks the tail");
        assert_eq!(quantile_upper_bound(&h, 0.5), 3);
    }
}
