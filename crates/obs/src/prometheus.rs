//! Prometheus text-format (version 0.0.4) rendering of a [`Snapshot`], plus a
//! line-format checker used by the CI smoke test. Output order is canonical:
//! counters, then gauges, then histograms, each sorted by metric name.

use crate::{bucket_upper_bound, HistogramSnapshot, Snapshot};

/// Maps a registry name like `core.ready_queue.early_exits` to a Prometheus
/// metric name `mrls_core_ready_queue_early_exits`.
pub fn metric_name(prefix: &str, name: &str) -> String {
    let mut out = String::with_capacity(prefix.len() + name.len());
    out.push_str(prefix);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (idx, n) in h.buckets.iter().enumerate() {
        cumulative = cumulative.saturating_add(*n);
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            bucket_upper_bound(idx)
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{name}_sum {}\n", h.sum));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Renders the snapshot in Prometheus text format. Deterministic namespaces
/// get the `mrls_` prefix; wall-clock histograms get `mrls_wall_` so a scrape
/// can exclude nondeterministic series by prefix.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (k, v) in &snap.counters {
        let name = metric_name("mrls_", k);
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (k, v) in &snap.gauges {
        let name = metric_name("mrls_", k);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (k, h) in &snap.histograms {
        render_histogram(&mut out, &metric_name("mrls_", k), h);
    }
    for (k, h) in &snap.wall {
        render_histogram(&mut out, &metric_name("mrls_wall_", k), h);
    }
    out
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_set(s: &str) -> bool {
    // Accepts `name="value"(,name="value")*` with no escapes inside values
    // (the renderer never emits any).
    for part in s.split(',') {
        let Some((k, v)) = part.split_once('=') else {
            return false;
        };
        if !valid_metric_name(k) {
            return false;
        }
        if v.len() < 2 || !v.starts_with('"') || !v.ends_with('"') {
            return false;
        }
        if v[1..v.len() - 1].contains('"') {
            return false;
        }
    }
    true
}

/// Checks that `text` is well-formed Prometheus exposition format: every line
/// is a `# TYPE`/`# HELP` comment or a `name[{labels}] value` sample with a
/// parseable number. Returns the number of sample lines.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let rest = comment.trim_start();
            let mut words = rest.split_whitespace();
            match words.next() {
                Some("TYPE") => {
                    let name = words
                        .next()
                        .ok_or(format!("line {lineno}: TYPE without name"))?;
                    if !valid_metric_name(name) {
                        return Err(format!("line {lineno}: bad TYPE metric name `{name}`"));
                    }
                    match words.next() {
                        Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                        other => {
                            return Err(format!("line {lineno}: bad TYPE kind {other:?}"));
                        }
                    }
                }
                Some("HELP") => {}
                _ => return Err(format!("line {lineno}: unknown comment `{line}`")),
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {lineno}: sample without value"))?;
        let name = if let Some((name, rest)) = series.split_once('{') {
            let labels = rest
                .strip_suffix('}')
                .ok_or(format!("line {lineno}: unterminated label set"))?;
            if !valid_label_set(labels) {
                return Err(format!("line {lineno}: bad label set `{{{labels}}}`"));
            }
            name
        } else {
            series
        };
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: bad metric name `{name}`"));
        }
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "-Inf" && value != "NaN" {
            return Err(format!("line {lineno}: bad sample value `{value}`"));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("core.ready_queue.early_exits".into(), 7);
        s.gauges.insert("serve.queue_depth".into(), 3);
        let h = s
            .histograms
            .entry("serve.plan_diff.updates".into())
            .or_default();
        h.observe(0);
        h.observe(1);
        h.observe(5);
        s.wall
            .entry("serve.round_us".into())
            .or_default()
            .observe(120);
        s
    }

    #[test]
    fn render_is_valid_and_cumulative() {
        let text = render(&sample_snapshot());
        let samples = validate(&text).expect("rendering validates");
        assert!(samples >= 8, "got {samples} samples:\n{text}");
        assert!(text.contains("# TYPE mrls_core_ready_queue_early_exits counter\n"));
        assert!(text.contains("mrls_core_ready_queue_early_exits 7\n"));
        assert!(text.contains("mrls_serve_queue_depth 3\n"));
        // Buckets are cumulative: le=0 has 1, le=1 has 2, le=3 has 2, le=7 has 3.
        assert!(text.contains("mrls_serve_plan_diff_updates_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("mrls_serve_plan_diff_updates_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("mrls_serve_plan_diff_updates_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("mrls_serve_plan_diff_updates_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("mrls_serve_plan_diff_updates_sum 6\n"));
        assert!(text.contains("mrls_serve_plan_diff_updates_count 3\n"));
        assert!(text.contains("mrls_wall_serve_round_us_sum 120\n"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate("mrls_ok 1\n").is_ok());
        assert!(validate("1bad_name 1\n").is_err());
        assert!(validate("mrls_ok notanumber\n").is_err());
        assert!(validate("mrls_ok{le=\"unterminated} 1\n").is_err());
        assert!(validate("mrls_ok{le=} 1\n").is_err());
        assert!(validate("# TYPE mrls_ok flavor\n").is_err());
        assert!(validate("# random comment\n").is_err());
        assert!(validate("# HELP mrls_ok text here\n").is_ok());
    }
}
