//! Blame aggregation: per-category virtual-time totals and the realized
//! critical-path decomposition they assemble into.
//!
//! [`BlameTotals`] is a deterministic (sorted-key) accumulator of virtual
//! time per [`Blame`](crate::span::Blame) label. [`CriticalPathBlame`] is a
//! walk back through the jobs that determined the realized makespan, each
//! step carrying its own blamed segments; because consecutive steps chain at
//! the predecessor's finish time, the summed segment durations telescope to
//! exactly the makespan — the identity [`CriticalPathBlame::sums_to_makespan`]
//! checks and the explain proptests pin.

use crate::span::{Blame, SpanSegment};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Virtual time accumulated per blame category, keyed by the stable
/// [`Blame::label`] so JSON output is sorted and byte-identical across
/// same-seed runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BlameTotals {
    /// Category label → total virtual time.
    pub by_category: BTreeMap<String, f64>,
}

impl BlameTotals {
    /// An empty accumulator.
    pub fn new() -> Self {
        BlameTotals::default()
    }

    /// Adds `duration` to `blame`'s bucket (no-op for zero durations, so
    /// empty categories never appear in the output).
    pub fn add(&mut self, blame: Blame, duration: f64) {
        if duration != 0.0 {
            *self.by_category.entry(blame.label()).or_insert(0.0) += duration;
        }
    }

    /// Adds every segment of `segments`.
    pub fn add_segments(&mut self, segments: &[SpanSegment]) {
        for seg in segments {
            self.add(seg.blame, seg.duration());
        }
    }

    /// Sum over all categories.
    pub fn total(&self) -> f64 {
        self.by_category.values().sum()
    }

    /// The total charged to one category (0.0 if absent).
    pub fn get(&self, label: &str) -> f64 {
        self.by_category.get(label).copied().unwrap_or(0.0)
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &BlameTotals) {
        for (k, v) in &other.by_category {
            *self.by_category.entry(k.clone()).or_insert(0.0) += v;
        }
    }
}

/// One job on the realized critical path, with the segments it contributes
/// to the makespan decomposition (its wait since the chaining point plus its
/// execution).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathStep {
    /// The job.
    pub job: usize,
    /// When this step's contribution begins (the previous step's finish, or
    /// time zero for the head of the chain).
    pub from: f64,
    /// When the job finished.
    pub finish: f64,
    /// Blamed segments tiling `[from, finish]`.
    pub segments: Vec<SpanSegment>,
}

/// The realized critical path and its exact blame decomposition of the
/// makespan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathBlame {
    /// Path steps in execution order (chain head first, makespan-determining
    /// job last).
    pub steps: Vec<CriticalPathStep>,
    /// Summed blame over every step's segments.
    pub totals: BlameTotals,
    /// The realized makespan the decomposition must sum to.
    pub makespan: f64,
}

impl CriticalPathBlame {
    /// `true` iff the per-category totals sum to the makespan within `eps` —
    /// the telescoping identity of the path walk.
    pub fn sums_to_makespan(&self, eps: f64) -> bool {
        (self.totals.total() - self.makespan).abs() <= eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_merge_and_skip_zeroes() {
        let mut t = BlameTotals::new();
        t.add(Blame::Execution, 2.0);
        t.add(Blame::Execution, 1.5);
        t.add(Blame::Resource { resource: 0 }, 0.5);
        t.add(Blame::Policy, 0.0);
        assert_eq!(t.by_category.len(), 2, "zero durations never appear");
        assert!((t.total() - 4.0).abs() < 1e-12);
        assert!((t.get("execution") - 3.5).abs() < 1e-12);
        assert_eq!(t.get("policy"), 0.0);

        let mut other = BlameTotals::new();
        other.add(Blame::Precedence, 1.0);
        other.add(Blame::Execution, 0.5);
        t.merge(&other);
        assert!((t.get("execution") - 4.0).abs() < 1e-12);
        assert!((t.get("precedence") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn telescoping_path_sums_to_makespan() {
        let seg = |from: f64, until: f64, blame| SpanSegment { from, until, blame };
        let mut totals = BlameTotals::new();
        let steps = vec![
            CriticalPathStep {
                job: 0,
                from: 0.0,
                finish: 3.0,
                segments: vec![
                    seg(0.0, 1.0, Blame::Admission),
                    seg(1.0, 3.0, Blame::Execution),
                ],
            },
            CriticalPathStep {
                job: 1,
                from: 3.0,
                finish: 7.5,
                segments: vec![
                    seg(3.0, 4.0, Blame::Resource { resource: 1 }),
                    seg(4.0, 7.5, Blame::Execution),
                ],
            },
        ];
        for s in &steps {
            totals.add_segments(&s.segments);
        }
        let cp = CriticalPathBlame {
            steps,
            totals,
            makespan: 7.5,
        };
        assert!(cp.sums_to_makespan(1e-9));
        let json = serde_json::to_string(&cp).unwrap();
        let back: CriticalPathBlame = serde_json::from_str(&json).unwrap();
        assert_eq!(cp, back);
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}
