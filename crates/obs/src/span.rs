//! Virtual-time lifecycle spans: the causal record of one job's journey
//! through the scheduler, with every non-executing interval attributed to a
//! blame category.
//!
//! A [`JobSpan`] carries the five milestones of a job's life —
//! submitted → admitted → ready (dependencies satisfied) → started →
//! completed — plus a list of [`SpanSegment`]s that **exactly tile** the
//! `[submitted, completed]` interval. Each segment names the single reason
//! the job was not executing ([`Blame`]): admission/batching delay,
//! precedence wait, a specific resource type being exhausted, replan churn,
//! or the placement policy passing it over while it would have fit.
//!
//! All values are virtual time, so spans are byte-identical across same-seed
//! runs — the standing determinism invariant. Nothing here reads a clock;
//! populating spans is the job of the sim engine (milestones) and the
//! post-hoc analyzer in `mrls-sim::explain` (segment attribution).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a job spent a span segment not executing (or executing, for the
/// final segment). Categories are mutually exclusive per segment; the
/// analyzer picks the *binding* cause for each sub-interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Blame {
    /// The job did not exist yet (before its submission). Only appears in
    /// makespan decompositions, never inside a job's own span.
    Arrival,
    /// Submitted but not yet released into the engine: batching window,
    /// admission queue, or round granularity.
    Admission,
    /// Released, but a predecessor had not finished.
    Precedence,
    /// Ready, but resource type `resource` had less available than the job
    /// requests (the smallest such type index is charged).
    Resource {
        /// The binding resource type.
        resource: usize,
    },
    /// Ready and fitting, but a reschedule happened between readiness and
    /// this interval — the wait is replan churn, not a capacity shortage.
    Replan,
    /// A failed attempt plus the backoff before the job became eligible
    /// again: the time lost to failure-driven re-execution churn.
    Retry,
    /// Ready and fitting with no intervening reschedule: the placement
    /// order or policy simply had not started it yet.
    Policy,
    /// Executing (start to completion).
    Execution,
}

impl Blame {
    /// Stable lowercase label used as the JSON / metrics key.
    pub fn label(&self) -> String {
        match self {
            Blame::Arrival => "arrival".to_string(),
            Blame::Admission => "admission".to_string(),
            Blame::Precedence => "precedence".to_string(),
            Blame::Resource { resource } => format!("resource[{resource}]"),
            Blame::Replan => "replan".to_string(),
            Blame::Retry => "retry".to_string(),
            Blame::Policy => "policy".to_string(),
            Blame::Execution => "execution".to_string(),
        }
    }
}

impl fmt::Display for Blame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One attributed interval `[from, until)` of a lifecycle span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanSegment {
    /// Segment start (virtual time).
    pub from: f64,
    /// Segment end (virtual time).
    pub until: f64,
    /// The single binding reason for this interval.
    pub blame: Blame,
}

impl SpanSegment {
    /// The segment's duration in virtual time.
    pub fn duration(&self) -> f64 {
        self.until - self.from
    }
}

/// The full virtual-time lifecycle of one job: milestones plus the exact
/// tiling of `[submitted, completed]` into blamed segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpan {
    /// The job's index.
    pub job: usize,
    /// When the job was submitted (serve ingest virtual time; for offline
    /// runs, its release time).
    pub submitted: f64,
    /// When it was released into the engine (round stamp / release event).
    pub admitted: f64,
    /// When its last predecessor finished (`max(admitted, max pred finish)`).
    pub ready: f64,
    /// When it started executing.
    pub started: f64,
    /// When it completed.
    pub completed: f64,
    /// Blame segments tiling `[submitted, completed]` exactly, in time order.
    pub segments: Vec<SpanSegment>,
}

impl JobSpan {
    /// Total lifetime `completed - submitted`.
    pub fn total(&self) -> f64 {
        self.completed - self.submitted
    }

    /// Total non-executing time `started - submitted`.
    pub fn wait(&self) -> f64 {
        self.started - self.submitted
    }

    /// Execution time `completed - started`.
    pub fn execution(&self) -> f64 {
        self.completed - self.started
    }

    /// `true` iff the segments tile `[submitted, completed]` exactly:
    /// contiguous (each starts where the previous ended, within `eps`),
    /// starting at `submitted` and ending at `completed`, with the summed
    /// durations matching the total lifetime within `eps`.
    pub fn tiles_exactly(&self, eps: f64) -> bool {
        let mut cursor = self.submitted;
        let mut sum = 0.0;
        for seg in &self.segments {
            if (seg.from - cursor).abs() > eps || seg.until < seg.from - eps {
                return false;
            }
            sum += seg.duration();
            cursor = seg.until;
        }
        (cursor - self.completed).abs() <= eps && (sum - self.total()).abs() <= eps
    }

    /// The milestone ordering every well-formed span satisfies.
    pub fn milestones_ordered(&self) -> bool {
        self.submitted <= self.admitted
            && self.admitted <= self.ready
            && self.ready <= self.started
            && self.started <= self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span() -> JobSpan {
        JobSpan {
            job: 3,
            submitted: 1.0,
            admitted: 2.0,
            ready: 4.0,
            started: 5.5,
            completed: 8.0,
            segments: vec![
                SpanSegment {
                    from: 1.0,
                    until: 2.0,
                    blame: Blame::Admission,
                },
                SpanSegment {
                    from: 2.0,
                    until: 4.0,
                    blame: Blame::Precedence,
                },
                SpanSegment {
                    from: 4.0,
                    until: 5.5,
                    blame: Blame::Resource { resource: 1 },
                },
                SpanSegment {
                    from: 5.5,
                    until: 8.0,
                    blame: Blame::Execution,
                },
            ],
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Blame::Arrival.label(), "arrival");
        assert_eq!(Blame::Admission.label(), "admission");
        assert_eq!(Blame::Precedence.label(), "precedence");
        assert_eq!(Blame::Resource { resource: 2 }.label(), "resource[2]");
        assert_eq!(Blame::Replan.label(), "replan");
        assert_eq!(Blame::Retry.label(), "retry");
        assert_eq!(Blame::Policy.label(), "policy");
        assert_eq!(format!("{}", Blame::Execution), "execution");
    }

    #[test]
    fn well_formed_span_tiles_exactly() {
        let s = span();
        assert!(s.milestones_ordered());
        assert!(s.tiles_exactly(1e-9));
        assert!((s.total() - 7.0).abs() < 1e-12);
        assert!((s.wait() - 4.5).abs() < 1e-12);
        assert!((s.execution() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn gaps_and_short_tilings_are_rejected() {
        // A hole between segments breaks contiguity.
        let mut s = span();
        s.segments[1].from = 2.5;
        assert!(!s.tiles_exactly(1e-9));
        // Ending before `completed` breaks the endpoint check.
        let mut s = span();
        s.segments.pop();
        assert!(!s.tiles_exactly(1e-9));
        // Unordered milestones are detectable.
        let mut s = span();
        s.started = 3.0;
        assert!(!s.milestones_ordered());
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let s = span();
        let json = serde_json::to_string(&s).unwrap();
        let back: JobSpan = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}
