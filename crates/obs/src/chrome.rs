//! Chrome trace-event (`chrome://tracing` / Perfetto) JSON export.
//!
//! The vendored `serde_json` has no dynamic `Value` API surface for building
//! heterogeneous objects, so [`ChromeTrace`] emits the trace-event JSON by
//! hand — each event is one object in the `traceEvents` array of the JSON
//! Object Format. [`validate`] parses the output back through the real JSON
//! parser (via a hand-written `Deserialize`) and checks the trace-event
//! structure, which is what the export tests pin.

use serde::__private as sp;

/// JSON string escaping for event names and categories.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental builder for a trace-event JSON document.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// Empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names a process lane (metadata event, phase `M`).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    /// Names a thread lane (metadata event, phase `M`).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    /// Records a complete span (phase `X`) of `dur_us` microseconds at `ts_us`.
    pub fn complete(&mut self, name: &str, cat: &str, pid: u64, tid: u64, ts_us: u64, dur_us: u64) {
        self.events.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts_us},\"dur\":{dur_us}}}",
            escape(name),
            escape(cat)
        ));
    }

    /// [`ChromeTrace::complete`] with string-valued `args` shown in the
    /// viewer's detail pane when the span is selected (e.g. blame
    /// attribution). Keys and values are JSON-escaped.
    #[allow(clippy::too_many_arguments)]
    pub fn complete_with_args(
        &mut self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
        args: &[(&str, String)],
    ) {
        if args.is_empty() {
            return self.complete(name, cat, pid, tid, ts_us, dur_us);
        }
        let rendered = args
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
            .collect::<Vec<_>>()
            .join(",");
        self.events.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts_us},\"dur\":{dur_us},\"args\":{{{rendered}}}}}",
            escape(name),
            escape(cat)
        ));
    }

    /// Records a thread-scoped instant event (phase `i`).
    pub fn instant(&mut self, name: &str, cat: &str, pid: u64, tid: u64, ts_us: u64) {
        self.events.push(format!(
            "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts_us},\"s\":\"t\"}}",
            escape(name),
            escape(cat)
        ));
    }

    /// Records a counter sample (phase `C`): one series per `(key, value)`.
    pub fn counter(&mut self, name: &str, pid: u64, ts_us: u64, series: &[(&str, u64)]) {
        let args = series
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
            .collect::<Vec<_>>()
            .join(",");
        self.events.push(format!(
            "{{\"ph\":\"C\",\"name\":\"{}\",\"pid\":{pid},\"tid\":0,\"ts\":{ts_us},\
             \"args\":{{{args}}}}}",
            escape(name)
        ));
    }

    /// Serializes to the trace-event JSON Object Format that
    /// `chrome://tracing` and Perfetto load directly.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(ev);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Structural summary of a parsed trace-event document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDoc {
    /// Number of events in `traceEvents`.
    pub events: usize,
    /// Number of non-metadata (`ph != "M"`) events.
    pub spans_and_instants: usize,
}

impl serde::Deserialize for TraceDoc {
    fn from_value(v: &sp::Value) -> Result<Self, sp::Error> {
        let events = sp::get_field(v, "traceEvents")?
            .as_array()
            .ok_or_else(|| sp::Error::msg("traceEvents must be an array"))?;
        let mut payload = 0usize;
        for (i, ev) in events.iter().enumerate() {
            let ph: String =
                sp::field(ev, "ph").map_err(|e| sp::Error::msg(format!("event {i}: {e}")))?;
            let _name: String =
                sp::field(ev, "name").map_err(|e| sp::Error::msg(format!("event {i}: {e}")))?;
            let _pid: u64 =
                sp::field(ev, "pid").map_err(|e| sp::Error::msg(format!("event {i}: {e}")))?;
            match ph.as_str() {
                "M" => {
                    sp::get_field(ev, "args")
                        .map_err(|e| sp::Error::msg(format!("metadata event {i}: {e}")))?;
                }
                "X" => {
                    let _ts: u64 = sp::field(ev, "ts")
                        .map_err(|e| sp::Error::msg(format!("event {i}: {e}")))?;
                    let _dur: u64 = sp::field(ev, "dur")
                        .map_err(|e| sp::Error::msg(format!("event {i}: {e}")))?;
                    payload += 1;
                }
                "i" | "C" => {
                    let _ts: u64 = sp::field(ev, "ts")
                        .map_err(|e| sp::Error::msg(format!("event {i}: {e}")))?;
                    payload += 1;
                }
                other => {
                    return Err(sp::Error::msg(format!(
                        "event {i}: unsupported phase `{other}`"
                    )));
                }
            }
        }
        Ok(TraceDoc {
            events: events.len(),
            spans_and_instants: payload,
        })
    }
}

/// Parses `text` as trace-event JSON and checks every event's structure.
pub fn validate(text: &str) -> Result<TraceDoc, String> {
    serde_json::from_str::<TraceDoc>(text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_output_validates() {
        let mut t = ChromeTrace::new();
        t.process_name(1, "mrls engine");
        t.thread_name(1, 2, "jobs \"hot\" lane");
        t.complete("job j0", "job", 1, 2, 0, 1_500_000);
        t.instant("capacity drop", "capacity", 1, 0, 750_000);
        t.counter("capacity", 1, 750_000, &[("cpu", 3), ("mem", 7)]);
        t.complete_with_args(
            "job j1",
            "job",
            1,
            2,
            2_000_000,
            500_000,
            &[
                ("blame", "resource[0]".to_string()),
                ("wait", "1.25 \"units\"".to_string()),
            ],
        );
        // Empty args fall back to the plain span shape.
        t.complete_with_args("job j2", "job", 1, 2, 3_000_000, 100_000, &[]);
        assert_eq!(t.len(), 7);
        let text = t.to_json();
        let doc = validate(&text).expect("builder output is valid trace JSON");
        assert_eq!(doc.events, 7);
        assert_eq!(doc.spans_and_instants, 5);
        assert!(text.contains("\"args\":{\"blame\":\"resource[0]\""));
        assert!(!text.contains("\"name\":\"job j2\",\"cat\":\"job\",\"pid\":1,\"tid\":2,\"ts\":3000000,\"dur\":100000,\"args\""));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate("{}").is_err(), "missing traceEvents");
        assert!(validate("{\"traceEvents\":3}").is_err(), "non-array");
        assert!(
            validate("{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\",\"pid\":1}]}").is_err(),
            "X event without ts/dur"
        );
        assert!(
            validate("{\"traceEvents\":[{\"ph\":\"Z\",\"name\":\"a\",\"pid\":1}]}").is_err(),
            "unknown phase"
        );
        assert!(validate("not json").is_err());
        let empty = ChromeTrace::new().to_json();
        assert_eq!(validate(&empty).expect("empty trace is valid").events, 0);
    }
}
