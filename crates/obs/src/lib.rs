//! Deterministic observability registry for the mrls workspace.
//!
//! Modelled on `mrls_core::timing`: collection is **off by default** and every
//! record call is gated on one relaxed atomic load, so instrumented hot paths
//! cost a single branch when disabled — no allocation, no map lookups, no
//! clock reads. When enabled, records accumulate in a **per-thread** store
//! that the owner (e.g. the serve service thread) drains with [`take`] and
//! folds into an owned cumulative [`Registry`].
//!
//! ## Determinism contract
//!
//! Counters, gauges, and histograms hold only **virtual-time or count valued**
//! data: same-seed, same-submission-order runs produce byte-identical
//! [`Snapshot`] JSON. Anything derived from the wall clock lives in the
//! separate `wall` namespace ([`observe_wall_us`]) which is explicitly
//! nondeterministic and excluded by [`Snapshot::deterministic`]. Snapshot JSON
//! is sorted (BTreeMap-backed) so rendering order never depends on insertion
//! order.
//!
//! Histograms use fixed log2 buckets: bucket 0 holds the value 0 and bucket
//! `k >= 1` holds values in `[2^(k-1), 2^k - 1]`, so bucket boundaries are a
//! pure function of the value — no configuration to drift between runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use serde::{Deserialize, Serialize};

pub mod blame;
pub mod chrome;
pub mod prometheus;
pub mod span;

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static STORE: std::cell::RefCell<Store> = std::cell::RefCell::new(Store::default());
}

#[derive(Default)]
struct Store {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, HistogramSnapshot>,
    wall: BTreeMap<&'static str, HistogramSnapshot>,
    /// Wall-clock histograms under runtime-computed names (the per-phase
    /// timing bridge); merged into the same `wall` namespace on [`take`].
    wall_dyn: BTreeMap<String, HistogramSnapshot>,
}

/// Turns collection on or off (process-wide; stores are per-thread).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` iff collection is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `v` to the named counter (saturating). One relaxed load when
/// disabled; the store update is kept out of line so instrumented hot loops
/// only inline the load and branch.
#[inline]
pub fn counter_add(name: &'static str, v: u64) {
    if enabled() {
        counter_add_slow(name, v);
    }
}

#[inline(never)]
fn counter_add_slow(name: &'static str, v: u64) {
    STORE.with(|s| {
        let mut store = s.borrow_mut();
        let slot = store.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(v);
    });
}

/// Sets the named gauge to `v` (last write wins).
#[inline]
pub fn gauge_set(name: &'static str, v: u64) {
    if enabled() {
        gauge_set_slow(name, v);
    }
}

#[inline(never)]
fn gauge_set_slow(name: &'static str, v: u64) {
    STORE.with(|s| {
        s.borrow_mut().gauges.insert(name, v);
    });
}

/// Records `v` into the named deterministic (count/virtual-time) histogram.
#[inline]
pub fn observe(name: &'static str, v: u64) {
    if enabled() {
        observe_slow(name, v);
    }
}

#[inline(never)]
fn observe_slow(name: &'static str, v: u64) {
    STORE.with(|s| {
        s.borrow_mut()
            .histograms
            .entry(name)
            .or_default()
            .observe(v);
    });
}

/// Records a wall-clock microsecond value into the nondeterministic `wall`
/// namespace. Excluded from [`Snapshot::deterministic`].
#[inline]
pub fn observe_wall_us(name: &'static str, us: u64) {
    if enabled() {
        observe_wall_us_slow(name, us);
    }
}

#[inline(never)]
fn observe_wall_us_slow(name: &'static str, us: u64) {
    STORE.with(|s| {
        s.borrow_mut().wall.entry(name).or_default().observe(us);
    });
}

/// [`observe_wall_us`] for names computed at runtime (e.g. per-phase timing
/// series). The allocation only happens on the enabled path; disabled call
/// sites still cost one relaxed load and a branch when the caller passes a
/// pre-built `&str`.
#[inline]
pub fn observe_wall_us_dyn(name: &str, us: u64) {
    if enabled() {
        observe_wall_us_dyn_slow(name, us);
    }
}

#[inline(never)]
fn observe_wall_us_dyn_slow(name: &str, us: u64) {
    STORE.with(|s| {
        let mut store = s.borrow_mut();
        match store.wall_dyn.get_mut(name) {
            Some(h) => h.observe(us),
            None => {
                store
                    .wall_dyn
                    .entry(name.to_string())
                    .or_default()
                    .observe(us);
            }
        }
    });
}

/// Drains this thread's accumulated records into a [`Snapshot`], leaving the
/// store empty. Not gated: residue is drained even after collection stops.
pub fn take() -> Snapshot {
    STORE.with(|s| {
        let mut store = s.borrow_mut();
        Snapshot {
            counters: std::mem::take(&mut store.counters)
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            gauges: std::mem::take(&mut store.gauges)
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            histograms: std::mem::take(&mut store.histograms)
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            wall: {
                let mut wall: BTreeMap<String, HistogramSnapshot> = std::mem::take(&mut store.wall)
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect();
                for (k, h) in std::mem::take(&mut store.wall_dyn) {
                    wall.entry(k).or_default().merge(&h);
                }
                wall
            },
        }
    })
}

/// Log2 bucket index for `v`: 0 for 0, else `64 - v.leading_zeros()`, so
/// bucket `k >= 1` covers `[2^(k-1), 2^k - 1]` and the maximum index is 64.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `idx` (`u64::MAX` for the last bucket).
pub fn bucket_upper_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// Accumulated distribution with fixed log2 buckets. `buckets[i]` counts
/// observations whose [`bucket_index`] is `i`; trailing empty buckets are
/// never materialized, so the vector length is a pure function of the data.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total number of observations (saturating).
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Per-bucket observation counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Records one observation of `v`.
    pub fn observe(&mut self, v: u64) {
        let idx = bucket_index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
    }

    /// Folds `other` into `self` (element-wise saturating add).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, v) in other.buckets.iter().enumerate() {
            self.buckets[i] = self.buckets[i].saturating_add(*v);
        }
    }
}

/// A point-in-time view of all recorded metrics, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Monotone event counts (saturating adds).
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins instantaneous values.
    pub gauges: BTreeMap<String, u64>,
    /// Deterministic (count/virtual-time valued) distributions.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Wall-clock-valued distributions — explicitly nondeterministic.
    pub wall: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// `true` iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.wall.is_empty()
    }

    /// Folds `other` into `self`: counters and histograms add (saturating),
    /// gauges take `other`'s value (last write wins).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            let slot = self.counters.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, h) in &other.wall {
            self.wall.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Copy of this snapshot with the nondeterministic `wall` namespace
    /// cleared — the byte-comparable form pinned by the determinism tests.
    pub fn deterministic(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
            wall: BTreeMap::new(),
        }
    }

    /// Compact sorted JSON rendering (BTreeMap keys give a canonical order).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization is infallible")
    }

    /// Parses a snapshot previously produced by [`Snapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Prometheus text-format rendering; see [`prometheus::render`].
    pub fn render_prometheus(&self) -> String {
        prometheus::render(self)
    }
}

/// Owned cumulative registry: the serve core absorbs per-round thread-local
/// deltas here so `QueryMetrics` sees totals since process start.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    snap: Snapshot,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Folds a drained thread-local delta into the cumulative snapshot.
    pub fn absorb(&mut self, delta: Snapshot) {
        if !delta.is_empty() {
            self.snap.merge(&delta);
        }
    }

    /// Current cumulative snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One gating test (not several) because ENABLED is process-global and the
    // test harness runs tests concurrently; everything else operates on the
    // plain structs.
    #[test]
    fn collection_is_gated_accumulates_and_drains() {
        set_enabled(false);
        let _ = take();
        counter_add("c", 1);
        gauge_set("g", 2);
        observe("h", 3);
        observe_wall_us("w", 4);
        observe_wall_us_dyn("wd", 4);
        assert!(take().is_empty(), "disabled records are dropped");

        set_enabled(true);
        counter_add("c", 1);
        counter_add("c", 2);
        gauge_set("g", 7);
        gauge_set("g", 9);
        observe("h", 5);
        observe_wall_us("w", 11);
        observe_wall_us_dyn("w", 2);
        observe_wall_us_dyn("wd", 6);
        set_enabled(false);
        let snap = take();
        assert_eq!(snap.counters.get("c"), Some(&3));
        assert_eq!(snap.gauges.get("g"), Some(&9));
        assert_eq!(snap.histograms.get("h").map(|h| h.count), Some(1));
        assert_eq!(
            snap.wall.get("w").map(|h| h.sum),
            Some(13),
            "dynamic-name wall records merge into the static wall namespace"
        );
        assert_eq!(snap.wall.get("wd").map(|h| h.sum), Some(6));
        assert!(take().is_empty(), "take leaves the store empty");
    }

    #[test]
    fn bucket_boundaries_are_exact_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for k in 1..64usize {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            assert_eq!(bucket_index(lo), k, "lower edge of bucket {k}");
            assert_eq!(bucket_index(hi), k, "upper edge of bucket {k}");
            assert_eq!(bucket_upper_bound(k), hi);
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_observe_and_merge_saturate() {
        let mut h = HistogramSnapshot::default();
        h.observe(0);
        h.observe(1);
        h.observe(3);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 4);
        assert_eq!(h.buckets, vec![1, 1, 1]);

        let mut big = HistogramSnapshot {
            count: u64::MAX - 1,
            sum: u64::MAX - 1,
            buckets: vec![u64::MAX],
        };
        big.observe(u64::MAX);
        assert_eq!(big.count, u64::MAX);
        assert_eq!(big.sum, u64::MAX);
        assert_eq!(big.buckets[0], u64::MAX, "bucket add saturates");
        assert_eq!(big.buckets[64], 1);

        let mut a = HistogramSnapshot {
            count: u64::MAX,
            sum: 10,
            buckets: vec![u64::MAX],
        };
        a.merge(&big);
        assert_eq!(a.count, u64::MAX);
        assert_eq!(a.buckets[0], u64::MAX);
        assert_eq!(a.buckets.len(), 65, "merge extends buckets");
    }

    #[test]
    fn snapshot_merge_and_deterministic_view() {
        let mut a = Snapshot::default();
        a.counters.insert("c".into(), u64::MAX);
        a.gauges.insert("g".into(), 1);
        let mut b = Snapshot::default();
        b.counters.insert("c".into(), 5);
        b.gauges.insert("g".into(), 2);
        b.wall.entry("w".into()).or_default().observe(9);
        a.merge(&b);
        assert_eq!(a.counters["c"], u64::MAX, "counter merge saturates");
        assert_eq!(a.gauges["g"], 2, "gauge merge is last-write-wins");
        assert_eq!(a.wall["w"].count, 1);
        let det = a.deterministic();
        assert!(det.wall.is_empty());
        assert_eq!(det.counters, a.counters);
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let mut s = Snapshot::default();
        s.counters.insert("b".into(), 2);
        s.counters.insert("a".into(), 1);
        s.histograms.entry("h".into()).or_default().observe(42);
        let text = s.to_json();
        let back = Snapshot::from_json(&text).expect("roundtrip");
        assert_eq!(back, s);
        assert_eq!(back.to_json(), text, "rendering is canonical");
    }
}
