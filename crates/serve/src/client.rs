//! A small blocking client for the serve protocol, used by `mrls client`,
//! the `serve_throughput` bench and the loopback tests.

use crate::flight::RoundRecord;
use crate::metrics::MetricsSnapshot;
use crate::protocol::{
    read_frame, write_message, DrainReport, Request, RequestBody, Response, ResponseBody,
    DEFAULT_MAX_LINE_BYTES,
};
use mrls_model::MoldableJob;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

/// A connected protocol client. One request is in flight at a time; every
/// call blocks until the matching response arrives.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    tenant: String,
    next_id: u64,
}

impl Client {
    /// Connects to a server and names the tenant the work is accounted
    /// under.
    pub fn connect<A: ToSocketAddrs>(addr: A, tenant: &str) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            tenant: tenant.to_string(),
            next_id: 1,
        })
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, body: RequestBody) -> Result<Response, String> {
        self.request_opt(body)?
            .ok_or_else(|| "server closed the connection".to_string())
    }

    /// Like [`Client::request`], but reports a clean EOF instead of a reply
    /// as `Ok(None)` (a stopping server may exit before its goodbye lands).
    fn request_opt(&mut self, body: RequestBody) -> Result<Option<Response>, String> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            tenant: self.tenant.clone(),
            body,
        };
        write_message(&mut self.writer, &request).map_err(|e| format!("send failed: {e}"))?;
        let Some(line) = read_frame(&mut self.reader, DEFAULT_MAX_LINE_BYTES)
            .map_err(|e| format!("receive failed: {e}"))?
        else {
            return Ok(None);
        };
        let response: Response =
            serde_json::from_str(line.trim()).map_err(|e| format!("malformed response: {e}"))?;
        if response.id != id {
            return Err(format!(
                "response id {} does not match request id {id}",
                response.id
            ));
        }
        Ok(Some(response))
    }

    fn accepted(&mut self, body: RequestBody) -> Result<Vec<u64>, String> {
        match self.request(body)?.body {
            ResponseBody::Accepted { jobs } => Ok(jobs),
            ResponseBody::Rejected { reason } => Err(format!("rejected: {reason}")),
            ResponseBody::Error { message } => Err(message),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Submits one job; returns its global id.
    pub fn submit_job(&mut self, job: MoldableJob, deps: Vec<u64>) -> Result<u64, String> {
        let ids = self.accepted(RequestBody::SubmitJob { job, deps })?;
        ids.first()
            .copied()
            .ok_or_else(|| "server accepted the job without an id".to_string())
    }

    /// Submits a DAG; returns the global ids, in order.
    pub fn submit_dag(
        &mut self,
        jobs: Vec<MoldableJob>,
        edges: Vec<(usize, usize)>,
    ) -> Result<Vec<u64>, String> {
        self.accepted(RequestBody::SubmitDag { jobs, edges })
    }

    /// Requests a capacity change.
    pub fn change_capacity(&mut self, resource: usize, capacity: u64) -> Result<(), String> {
        self.accepted(RequestBody::CapacityChange { resource, capacity })
            .map(|_| ())
    }

    /// Fetches the metrics snapshot.
    pub fn status(&mut self) -> Result<MetricsSnapshot, String> {
        match self.request(RequestBody::QueryStatus)?.body {
            ResponseBody::Status { metrics } => Ok(metrics),
            ResponseBody::Error { message } => Err(message),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Fetches the cross-layer observability snapshot (deterministic
    /// counters/gauges/histograms; wall-clock values live in the separate
    /// `wall` namespace).
    pub fn metrics(&mut self) -> Result<mrls_obs::Snapshot, String> {
        match self.request(RequestBody::QueryMetrics)?.body {
            ResponseBody::Metrics { obs } => Ok(obs),
            ResponseBody::Error { message } => Err(message),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Fetches the round flight recorder: the retained per-round summaries
    /// (oldest first) and the count of rounds ever recorded.
    pub fn flight_recorder(&mut self) -> Result<(Vec<RoundRecord>, u64), String> {
        match self.request(RequestBody::QueryFlightRecorder)?.body {
            ResponseBody::FlightRecorder {
                rounds,
                total_rounds,
            } => Ok((rounds, total_rounds)),
            ResponseBody::Error { message } => Err(message),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Fetches the durability status: log position, newest checkpoint
    /// watermark, recovery count.
    pub fn durability(&mut self) -> Result<crate::wal::DurabilityStatus, String> {
        match self.request(RequestBody::QueryDurability)?.body {
            ResponseBody::Durability { status } => Ok(status),
            ResponseBody::Error { message } => Err(message),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Drains the server: everything admitted runs to completion.
    pub fn drain(&mut self) -> Result<DrainReport, String> {
        match self.request(RequestBody::Drain)?.body {
            ResponseBody::Drained { report } => Ok(report),
            ResponseBody::Error { message } => Err(message),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Asks the server to stop. A connection closed right after the request
    /// counts as success — the server may exit before its goodbye lands.
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.request_opt(RequestBody::Shutdown)? {
            None => Ok(()),
            Some(response) => match response.body {
                ResponseBody::Stopping => Ok(()),
                ResponseBody::Error { message } => Err(message),
                other => Err(format!("unexpected response: {other:?}")),
            },
        }
    }
}
