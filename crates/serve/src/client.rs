//! A small blocking client for the serve protocol, used by `mrls client`,
//! the `serve_throughput` bench and the loopback tests.
//!
//! The client is **resilient**: a dropped connection is reported as the
//! typed [`ClientError::Disconnected`] and — for requests that are safe to
//! resend — retried transparently after reconnecting with capped
//! exponential backoff ([`RetryConfig`]). Submissions are made safe to
//! resend by client-assigned **idempotency tokens**: every
//! `SubmitJob`/`SubmitDag` carries a token (auto-generated unless the
//! caller pins one), the exact same frame is resent after a reconnect, and
//! the server's dedup window answers a replayed token with the original
//! ids instead of admitting the work twice. Queries are idempotent by
//! nature and retried without a token; capacity changes, drains and
//! shutdowns are never resent automatically, because the client cannot
//! know whether the lost connection delivered them.

use crate::flight::RoundRecord;
use crate::metrics::MetricsSnapshot;
use crate::protocol::{
    read_frame, write_message, DrainReport, QuarantineEntry, Request, RequestBody, Response,
    ResponseBody, DEFAULT_MAX_LINE_BYTES,
};
use mrls_model::MoldableJob;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Process-wide client instance counter: each connected [`Client`] gets a
/// distinct instance number, so auto-generated idempotency tokens from two
/// clients of the same tenant never collide.
static CLIENT_INSTANCE: AtomicU64 = AtomicU64::new(0);

/// What went wrong with a client call, by recovery strategy: only
/// [`ClientError::Disconnected`] is worth reconnecting for.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The transport failed: send error, receive error, or the server
    /// closed the connection. Retrying after a reconnect may succeed.
    Disconnected(String),
    /// The server answered with something that is not valid protocol: bad
    /// JSON, or a response whose correlation id or variant does not match
    /// the request. The connection is dropped — the stream position is no
    /// longer trustworthy — but reconnect-and-resend will not help.
    Malformed(String),
    /// The server refused the submission (backpressure, overload,
    /// validation). The request itself arrived fine; retrying verbatim is
    /// the caller's call.
    Rejected(String),
    /// The server answered with an in-protocol error message.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Disconnected(msg) => write!(f, "disconnected: {msg}"),
            ClientError::Malformed(msg) => write!(f, "malformed response: {msg}"),
            ClientError::Rejected(reason) => write!(f, "rejected: {reason}"),
            ClientError::Server(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ClientError> for String {
    fn from(e: ClientError) -> String {
        e.to_string()
    }
}

/// Reconnect-and-resend policy for requests that are safe to retry.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryConfig {
    /// Total attempts per request, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on every further retry.
    pub backoff_base: Duration,
    /// Upper bound the exponential backoff is capped at.
    pub backoff_cap: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 4,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

impl RetryConfig {
    /// A policy that never retries: every transport failure surfaces
    /// immediately as [`ClientError::Disconnected`].
    pub fn none() -> Self {
        RetryConfig {
            max_attempts: 1,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }

    /// The capped exponential delay before retry number `retry` (1-based).
    fn delay(&self, retry: u32) -> Duration {
        let factor = 1u32
            .checked_shl(retry.saturating_sub(1))
            .unwrap_or(u32::MAX);
        (self.backoff_base * factor).min(self.backoff_cap)
    }
}

/// One live connection's halves.
#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: SocketAddr) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Conn { reader, writer })
    }
}

/// A connected protocol client. One request is in flight at a time; every
/// call blocks until the matching response arrives (or retries are
/// exhausted).
#[derive(Debug)]
pub struct Client {
    conn: Option<Conn>,
    addr: SocketAddr,
    tenant: String,
    retry: RetryConfig,
    instance: u64,
    next_id: u64,
    next_token: u64,
}

impl Client {
    /// Connects to a server and names the tenant the work is accounted
    /// under.
    pub fn connect<A: ToSocketAddrs>(addr: A, tenant: &str) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let conn = Conn::open(addr)?;
        Ok(Client {
            conn: Some(conn),
            addr,
            tenant: tenant.to_string(),
            retry: RetryConfig::default(),
            instance: CLIENT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            next_id: 1,
            next_token: 0,
        })
    }

    /// Replaces the reconnect/retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryConfig) -> Self {
        self.retry = retry;
        self
    }

    /// The server address the client (re)connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The next auto-generated idempotency token. Tokens are unique per
    /// client instance within a process; a caller that needs tokens stable
    /// across *client restarts* pins them via the `_with_token` variants.
    fn auto_token(&mut self) -> String {
        let n = self.next_token;
        self.next_token += 1;
        format!("{}-{}-{}", self.tenant, self.instance, n)
    }

    /// Drops the current connection (if any) and opens a fresh one.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.conn = None;
        let conn = Conn::open(self.addr)
            .map_err(|e| ClientError::Disconnected(format!("reconnect failed: {e}")))?;
        self.conn = Some(conn);
        Ok(())
    }

    /// One wire round trip of an already-built request. Transport failures
    /// drop the connection, so the next attempt starts from a reconnect.
    fn roundtrip(&mut self, request: &Request) -> Result<Option<Response>, ClientError> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let conn = self.conn.as_mut().expect("reconnect just succeeded");
        if let Err(e) = write_message(&mut conn.writer, request) {
            self.conn = None;
            return Err(ClientError::Disconnected(format!("send failed: {e}")));
        }
        let line = match read_frame(&mut conn.reader, DEFAULT_MAX_LINE_BYTES) {
            Ok(Some(line)) => line,
            Ok(None) => {
                self.conn = None;
                return Ok(None);
            }
            Err(e) => {
                self.conn = None;
                return Err(ClientError::Disconnected(format!("receive failed: {e}")));
            }
        };
        let response: Response = match serde_json::from_str(line.trim()) {
            Ok(response) => response,
            Err(e) => {
                self.conn = None;
                return Err(ClientError::Malformed(e.to_string()));
            }
        };
        if response.id != request.id {
            self.conn = None;
            return Err(ClientError::Malformed(format!(
                "response id {} does not match request id {}",
                response.id, request.id
            )));
        }
        Ok(Some(response))
    }

    /// Sends one request, reconnecting and resending with capped
    /// exponential backoff when the request is safe to resend: it carries
    /// an idempotency token (the server dedups the replay), or it is a
    /// read-only query.
    fn request_token(
        &mut self,
        body: RequestBody,
        token: Option<String>,
    ) -> Result<Response, ClientError> {
        let resendable = token.is_some() || is_read_only(&body);
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            tenant: self.tenant.clone(),
            token,
            body,
        };
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let err = match self.roundtrip(&request) {
                Ok(Some(response)) => return Ok(response),
                Ok(None) => ClientError::Disconnected("server closed the connection".to_string()),
                Err(e) => e,
            };
            let recoverable = matches!(err, ClientError::Disconnected(_));
            if !recoverable || !resendable || attempt >= self.retry.max_attempts {
                return Err(err);
            }
            std::thread::sleep(self.retry.delay(attempt));
        }
    }

    /// Sends one request and waits for its response. No retry beyond what
    /// [`Client::request_token`] allows for token-free bodies (queries).
    pub fn request(&mut self, body: RequestBody) -> Result<Response, ClientError> {
        self.request_token(body, None)
    }

    fn accepted(
        &mut self,
        body: RequestBody,
        token: Option<String>,
    ) -> Result<Vec<u64>, ClientError> {
        match self.request_token(body, token)?.body {
            ResponseBody::Accepted { jobs } => Ok(jobs),
            ResponseBody::Rejected { reason } => Err(ClientError::Rejected(reason)),
            ResponseBody::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Malformed(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Submits one job under an auto-generated idempotency token; returns
    /// its global id.
    pub fn submit_job(&mut self, job: MoldableJob, deps: Vec<u64>) -> Result<u64, ClientError> {
        let token = self.auto_token();
        self.submit_job_with_token(job, deps, &token)
    }

    /// Submits one job under a caller-pinned idempotency token — resending
    /// the same token after a crash or reconnect yields the original id
    /// instead of a second admission.
    pub fn submit_job_with_token(
        &mut self,
        job: MoldableJob,
        deps: Vec<u64>,
        token: &str,
    ) -> Result<u64, ClientError> {
        let ids = self.accepted(
            RequestBody::SubmitJob { job, deps },
            Some(token.to_string()),
        )?;
        ids.first().copied().ok_or_else(|| {
            ClientError::Malformed("server accepted the job without an id".to_string())
        })
    }

    /// Submits a DAG under an auto-generated idempotency token; returns
    /// the global ids, in order.
    pub fn submit_dag(
        &mut self,
        jobs: Vec<MoldableJob>,
        edges: Vec<(usize, usize)>,
    ) -> Result<Vec<u64>, ClientError> {
        let token = self.auto_token();
        self.submit_dag_with_token(jobs, edges, &token)
    }

    /// Submits a DAG under a caller-pinned idempotency token.
    pub fn submit_dag_with_token(
        &mut self,
        jobs: Vec<MoldableJob>,
        edges: Vec<(usize, usize)>,
        token: &str,
    ) -> Result<Vec<u64>, ClientError> {
        self.accepted(
            RequestBody::SubmitDag { jobs, edges },
            Some(token.to_string()),
        )
    }

    /// Requests a capacity change. Never resent automatically: the client
    /// cannot tell whether a lost connection delivered it.
    pub fn change_capacity(&mut self, resource: usize, capacity: u64) -> Result<(), ClientError> {
        self.accepted(RequestBody::CapacityChange { resource, capacity }, None)
            .map(|_| ())
    }

    /// Fetches the metrics snapshot.
    pub fn status(&mut self) -> Result<MetricsSnapshot, ClientError> {
        match self.request(RequestBody::QueryStatus)?.body {
            ResponseBody::Status { metrics } => Ok(metrics),
            ResponseBody::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Malformed(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Fetches the cross-layer observability snapshot (deterministic
    /// counters/gauges/histograms; wall-clock values live in the separate
    /// `wall` namespace).
    pub fn metrics(&mut self) -> Result<mrls_obs::Snapshot, ClientError> {
        match self.request(RequestBody::QueryMetrics)?.body {
            ResponseBody::Metrics { obs } => Ok(obs),
            ResponseBody::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Malformed(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Fetches the round flight recorder: the retained per-round summaries
    /// (oldest first) and the count of rounds ever recorded.
    pub fn flight_recorder(&mut self) -> Result<(Vec<RoundRecord>, u64), ClientError> {
        match self.request(RequestBody::QueryFlightRecorder)?.body {
            ResponseBody::FlightRecorder {
                rounds,
                total_rounds,
            } => Ok((rounds, total_rounds)),
            ResponseBody::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Malformed(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Fetches the durability status: log position, newest checkpoint
    /// watermark, recovery count.
    pub fn durability(&mut self) -> Result<crate::wal::DurabilityStatus, ClientError> {
        match self.request(RequestBody::QueryDurability)?.body {
            ResponseBody::Durability { status } => Ok(status),
            ResponseBody::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Malformed(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Fetches the poison quarantine: jobs whose retry budget is exhausted,
    /// in quarantine order.
    pub fn quarantine(&mut self) -> Result<Vec<QuarantineEntry>, ClientError> {
        match self.request(RequestBody::QueryQuarantine)?.body {
            ResponseBody::Quarantine { entries } => Ok(entries),
            ResponseBody::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Malformed(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Drains the server: everything admitted runs to completion. Never
    /// resent automatically.
    pub fn drain(&mut self) -> Result<DrainReport, ClientError> {
        match self.request(RequestBody::Drain)?.body {
            ResponseBody::Drained { report } => Ok(report),
            ResponseBody::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Malformed(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Asks the server to stop. A connection closed right after the request
    /// counts as success — the server may exit before its goodbye lands.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            tenant: self.tenant.clone(),
            token: None,
            body: RequestBody::Shutdown,
        };
        match self.roundtrip(&request)? {
            None => Ok(()),
            Some(response) => match response.body {
                ResponseBody::Stopping => Ok(()),
                ResponseBody::Error { message } => Err(ClientError::Server(message)),
                other => Err(ClientError::Malformed(format!(
                    "unexpected response: {other:?}"
                ))),
            },
        }
    }
}

/// Whether a request body is a read-only query, safe to resend verbatim
/// without a token.
fn is_read_only(body: &RequestBody) -> bool {
    matches!(
        body,
        RequestBody::QueryStatus
            | RequestBody::QueryMetrics
            | RequestBody::QueryFlightRecorder
            | RequestBody::QueryDurability
            | RequestBody::QueryQuarantine
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential() {
        let retry = RetryConfig {
            max_attempts: 8,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(65),
        };
        assert_eq!(retry.delay(1), Duration::from_millis(10));
        assert_eq!(retry.delay(2), Duration::from_millis(20));
        assert_eq!(retry.delay(3), Duration::from_millis(40));
        assert_eq!(retry.delay(4), Duration::from_millis(65), "capped");
        assert_eq!(retry.delay(30), Duration::from_millis(65), "stays capped");
    }

    #[test]
    fn errors_render_like_the_legacy_strings() {
        let rejected = ClientError::Rejected("backpressure: full".to_string());
        assert_eq!(String::from(rejected), "rejected: backpressure: full");
        let down = ClientError::Disconnected("send failed: broken pipe".to_string());
        assert!(down.to_string().starts_with("disconnected: "));
    }

    #[test]
    fn only_queries_are_resendable_without_a_token() {
        assert!(is_read_only(&RequestBody::QueryStatus));
        assert!(is_read_only(&RequestBody::QueryQuarantine));
        assert!(!is_read_only(&RequestBody::Drain));
        assert!(!is_read_only(&RequestBody::Shutdown));
        assert!(!is_read_only(&RequestBody::CapacityChange {
            resource: 0,
            capacity: 1
        }));
    }
}
