//! The **naive** service core: the original checkpoint→clone→resume round
//! loop, kept as the executable reference specification.
//!
//! [`NaiveService`] rebuilds the world every batching round — it re-creates
//! the full `Instance` (cloning every admitted job), rebuilds the complete
//! plan, and resumes a fresh [`SimRun`] from the previous round's
//! [`SimSnapshot`], whose event log grows without bound. That makes each
//! round O(history) and a long-lived server O(n²) — the exact behaviour the
//! incremental [`ServiceCore`](crate::ServiceCore) replaces.
//!
//! It stays in the tree (not under `#[cfg(test)]`) for two reasons:
//!
//! * the **differential harness** (`tests/differential.rs`) drives it
//!   side-by-side with the incremental core over randomized submission
//!   streams and asserts byte-identical replies, metrics, and traces — the
//!   incremental core is correct *by construction against this reference*;
//! * the `serve_throughput` bench's rounds-vs-latency sweep measures both
//!   paths to demonstrate the O(history) → O(live) change.
//!
//! Behaviour must never be "improved" here; fix the incremental core
//! instead. The only allowed changes are those keeping it byte-identical to
//! its PR 3 semantics.

use crate::flight::{RoundDigest, FLIGHT_RECORDER_CAPACITY};
use crate::ingest::{Batch, DedupWindow, IngestQueue};
use crate::metrics::{MetricsRegistry, MetricsSnapshot, RejectReason};
use crate::protocol::{DrainReport, QuarantineEntry};
use crate::service::{plan_pending, validate_spec, ServeConfig, WorldJob};
use mrls_analysis::{validate_schedule_with, ValidationOptions};
use mrls_core::{Schedule, ScheduledJob};
use mrls_dag::Dag;
use mrls_model::{Instance, MoldableJob, SystemConfig};
use mrls_sim::{
    ChannelSource, FailCause, FailureSampler, Perturber, RealizedTrace, SimRun, SimSnapshot,
    SourceEvent, TraceEvent,
};
use std::time::Instant;

/// The reference service core: same protocol-visible behaviour as
/// [`crate::ServiceCore`], paid for with an O(history) world rebuild every
/// round. See the module docs for why it is kept.
#[derive(Debug)]
pub struct NaiveService {
    config: ServeConfig,
    world: Vec<WorldJob>,
    edges: Vec<(usize, usize)>,
    capacities_now: Vec<u64>,
    capacities_max: Vec<u64>,
    snapshot: Option<SimSnapshot>,
    // The live perturbation stream, carried across rounds so resuming never
    // replays the draw history (it must always match
    // `snapshot.perturber_realizations`).
    perturber: Option<Perturber>,
    // The live failure-draw stream, carried across rounds exactly like the
    // perturber (its position must match the snapshot's recorded attempts).
    failure_sampler: Option<FailureSampler>,
    // The naive mirror of the incremental core's poison quarantine.
    quarantine: Vec<QuarantineEntry>,
    // The naive mirror of the incremental core's idempotency dedup window.
    dedup: DedupWindow,
    ingest: IngestQueue,
    metrics: MetricsRegistry,
    /// The naive mirror of the incremental core's flight recorder, limited
    /// to the deterministic digest fields both cores can produce (no plan
    /// diff here, no wall-clock). Pure record-keeping on the side — it does
    /// not change the reference behaviour.
    flight: std::collections::VecDeque<RoundDigest>,
    rounds: u64,
    virtual_now: f64,
    events_seen: usize,
    fault: Option<String>,
}

impl NaiveService {
    /// Creates an idle service for the configured machine.
    pub fn new(config: ServeConfig) -> Self {
        let ingest = IngestQueue::new(config.batch_window, config.max_pending_jobs);
        let capacities = config.capacities.clone();
        let dedup = DedupWindow::new(config.dedup_window);
        NaiveService {
            config,
            world: Vec::new(),
            edges: Vec::new(),
            capacities_now: capacities.clone(),
            capacities_max: capacities,
            snapshot: None,
            perturber: None,
            failure_sampler: None,
            quarantine: Vec::new(),
            dedup,
            ingest,
            metrics: MetricsRegistry::new(),
            flight: std::collections::VecDeque::new(),
            rounds: 0,
            virtual_now: 0.0,
            events_seen: 0,
            fault: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of resource types `d` of the machine.
    pub fn num_resource_types(&self) -> usize {
        self.config.capacities.len()
    }

    /// When the open batch must be flushed, if one is open.
    pub fn deadline(&self) -> Option<Instant> {
        self.ingest.deadline()
    }

    /// The error that poisoned the service, if any round failed.
    pub fn fault(&self) -> Option<&str> {
        self.fault.as_deref()
    }

    /// Trace events retained by the engine checkpoint (grows with history —
    /// the O(n²) driver the incremental core eliminates).
    pub fn retained_events(&self) -> usize {
        self.snapshot.as_ref().map_or(0, |s| s.events.len())
    }

    /// The retained flight digests, oldest first: the reference the
    /// differential harness compares the incremental core's
    /// [`RoundRecord::digest`](crate::flight::RoundRecord::digest)s against.
    pub fn flight_digests(&self) -> Vec<RoundDigest> {
        self.flight.iter().cloned().collect()
    }

    /// The naive mirror of the incremental core's in-flight backlog: every
    /// admitted job that is neither started nor abandoned, derived from the
    /// snapshot's flags (the core tracks the same set incrementally in its
    /// `pending` frontier).
    fn backlog(&self) -> usize {
        match &self.snapshot {
            Some(s) => {
                let live = s
                    .started
                    .iter()
                    .zip(s.abandoned.iter().chain(std::iter::repeat(&false)))
                    .filter(|&(&started, &abandoned)| !started && !abandoned)
                    .count();
                live + (self.world.len() - s.started.len())
            }
            None => self.world.len(),
        }
    }

    fn check_overload(&self) -> Result<(), String> {
        match self.config.overload_high_water {
            Some(hwm) if self.backlog() >= hwm => Err(format!(
                "overload: {} jobs in flight have reached the high-water mark {hwm} — \
                 load shed, retry after the backlog drains",
                self.backlog()
            )),
            _ => Ok(()),
        }
    }

    /// The poison quarantine, oldest entry first.
    pub fn quarantine(&self) -> Vec<QuarantineEntry> {
        self.quarantine.clone()
    }

    /// Admits one job with dependencies on previously accepted jobs.
    /// Returns the assigned global id.
    pub fn submit_job(
        &mut self,
        tenant: &str,
        job: MoldableJob,
        deps: &[u64],
    ) -> Result<u64, String> {
        self.submit_job_token(tenant, job, deps, None)
    }

    /// [`NaiveService::submit_job`] with an optional client idempotency
    /// token, mirroring
    /// [`ServiceCore::submit_job_token`](crate::ServiceCore::submit_job_token).
    pub fn submit_job_token(
        &mut self,
        tenant: &str,
        job: MoldableJob,
        deps: &[u64],
        token: Option<&str>,
    ) -> Result<u64, String> {
        self.check_fault()?;
        if let Some(ids) = token.and_then(|t| self.dedup.lookup(t)) {
            return Ok(ids[0]);
        }
        if let Err(e) = self.check_overload() {
            self.metrics
                .record_rejected(tenant, 1, RejectReason::Overload);
            return Err(e);
        }
        validate_spec(self.num_resource_types(), &job).inspect_err(|_| {
            self.metrics
                .record_rejected(tenant, 1, RejectReason::Validation);
        })?;
        let admit = self
            .ingest
            .admit(1)
            .map_err(|e| (RejectReason::Backpressure, e))
            .and_then(|()| {
                let next = self.world.len() as u64;
                match deps.iter().find(|&&d| d >= next) {
                    Some(d) => Err((
                        RejectReason::Validation,
                        format!("dependency {d} does not exist yet (next id {next})"),
                    )),
                    None => Ok(()),
                }
            });
        if let Err((reason, e)) = admit {
            self.metrics.record_rejected(tenant, 1, reason);
            return Err(e);
        }
        let id = self.world.len();
        let mut deps: Vec<u64> = deps.to_vec();
        deps.sort_unstable();
        deps.dedup();
        for d in deps {
            self.edges.push((d as usize, id));
        }
        self.world.push(WorldJob {
            tenant: tenant.to_string(),
            job,
        });
        self.ingest.push_jobs(&[id]);
        self.metrics.record_submitted(tenant, 1);
        self.metrics.record_queued(tenant, 1);
        if let Some(token) = token {
            self.dedup.insert(token, vec![id as u64]);
        }
        Ok(id as u64)
    }

    /// Admits a whole DAG atomically; `edges` are `(from, to)` pairs of
    /// indices into `jobs`. Returns the assigned global ids, in order.
    pub fn submit_dag(
        &mut self,
        tenant: &str,
        jobs: Vec<MoldableJob>,
        edges: &[(usize, usize)],
    ) -> Result<Vec<u64>, String> {
        self.submit_dag_token(tenant, jobs, edges, None)
    }

    /// [`NaiveService::submit_dag`] with an optional client idempotency
    /// token, mirroring
    /// [`ServiceCore::submit_dag_token`](crate::ServiceCore::submit_dag_token).
    pub fn submit_dag_token(
        &mut self,
        tenant: &str,
        jobs: Vec<MoldableJob>,
        edges: &[(usize, usize)],
        token: Option<&str>,
    ) -> Result<Vec<u64>, String> {
        self.check_fault()?;
        if let Some(ids) = token.and_then(|t| self.dedup.lookup(t)) {
            return Ok(ids.to_vec());
        }
        let count = jobs.len();
        let d = self.num_resource_types();
        let overload = self.check_overload();
        let admit = (|| {
            overload.map_err(|e| (RejectReason::Overload, e))?;
            if count == 0 {
                return Err((RejectReason::Validation, "empty submission".to_string()));
            }
            self.ingest
                .admit(count)
                .map_err(|e| (RejectReason::Backpressure, e))?;
            for job in &jobs {
                validate_spec(d, job).map_err(|e| (RejectReason::Validation, e))?;
            }
            let mut local: Vec<(usize, usize)> = edges.to_vec();
            local.sort_unstable();
            local.dedup();
            if let Some(&(a, b)) = local.iter().find(|&&(a, b)| a >= count || b >= count) {
                return Err((
                    RejectReason::Validation,
                    format!("edge ({a}, {b}) references a job outside the DAG"),
                ));
            }
            Dag::from_edges(count, &local)
                .map_err(|e| (RejectReason::Validation, format!("invalid DAG: {e}")))?;
            Ok(local)
        })();
        let local = match admit {
            Ok(local) => local,
            Err((reason, e)) => {
                self.metrics
                    .record_rejected(tenant, count.max(1) as u64, reason);
                return Err(e);
            }
        };
        let base = self.world.len();
        let ids: Vec<usize> = (base..base + count).collect();
        for (a, b) in local {
            self.edges.push((base + a, base + b));
        }
        for job in jobs {
            self.world.push(WorldJob {
                tenant: tenant.to_string(),
                job,
            });
        }
        self.ingest.push_jobs(&ids);
        self.metrics.record_submitted(tenant, count as u64);
        self.metrics.record_queued(tenant, count as u64);
        let ids: Vec<u64> = ids.into_iter().map(|id| id as u64).collect();
        if let Some(token) = token {
            self.dedup.insert(token, ids.clone());
        }
        Ok(ids)
    }

    /// Queues a capacity change for the next round.
    pub fn submit_capacity(&mut self, resource: usize, capacity: u64) -> Result<(), String> {
        self.check_fault()?;
        let d = self.num_resource_types();
        if resource >= d {
            return Err(format!(
                "resource {resource} does not exist (the machine has {d} types)"
            ));
        }
        if capacity == 0 {
            return Err("capacities must stay >= 1".to_string());
        }
        self.ingest.push_capacity(resource, capacity);
        Ok(())
    }

    /// The queryable metrics snapshot.
    pub fn status(&self) -> MetricsSnapshot {
        self.metrics
            .snapshot(self.virtual_now, self.ingest.queue_depth())
    }

    /// Flushes the open batch into one scheduling round, if any work is
    /// queued.
    pub fn flush(&mut self) -> Result<(), String> {
        self.check_fault()?;
        if self.ingest.is_empty() {
            return Ok(());
        }
        let batch = self.ingest.take_batch();
        self.metrics.record_batch_taken();
        self.run_round(batch, false).map(|_| ())
    }

    /// Flushes any queued work and runs the engine until every admitted job
    /// completed, returning the drain report.
    pub fn drain(&mut self) -> Result<DrainReport, String> {
        self.check_fault()?;
        let batch = self.ingest.take_batch();
        self.metrics.record_batch_taken();
        let trace = self
            .run_round(batch, true)?
            .expect("completing rounds always produce a trace");
        let submitted = self.world.len() as u64;
        let completed = self.snapshot.as_ref().map_or(0, |s| s.num_completed as u64);
        Ok(DrainReport {
            virtual_makespan: trace.stats.realized_makespan,
            submitted,
            completed,
            feasible: self.validate(&trace),
            metrics: self.status(),
            trace,
        })
    }

    fn check_fault(&self) -> Result<(), String> {
        match &self.fault {
            Some(f) => Err(format!("service faulted: {f}")),
            None => Ok(()),
        }
    }

    /// The virtual time stamped on the next round's events.
    fn next_round_time(&self) -> f64 {
        self.virtual_now.max(self.rounds as f64 * self.config.tick)
    }

    /// Executes one round, rebuilding the whole world.
    fn run_round(&mut self, batch: Batch, complete: bool) -> Result<Option<RealizedTrace>, String> {
        if batch.is_empty() && !complete {
            return Ok(None);
        }
        let t = self.next_round_time();
        if !batch.is_empty() {
            self.rounds += 1;
            self.metrics.record_round();
        }
        // Mirror the capacity changes before building the instance so its
        // system covers every capacity the machine ever had.
        for &(resource, capacity) in &batch.capacity_changes {
            self.capacities_now[resource] = capacity;
            self.capacities_max[resource] = self.capacities_max[resource].max(capacity);
        }
        let mut digest = RoundDigest {
            round: self.rounds,
            drain: complete,
            virtual_time: 0.0,
            admitted_jobs: batch.jobs.len() as u64,
            capacity_changes: batch.capacity_changes.len() as u64,
            started: 0,
            completed: 0,
            failed: 0,
            quarantined: 0,
            events_harvested: 0,
            pending_after: 0,
        };
        let result = self.run_round_inner(&batch, t, complete, &mut digest);
        match result {
            Ok(trace) => {
                if self.flight.len() == FLIGHT_RECORDER_CAPACITY {
                    self.flight.pop_front();
                }
                self.flight.push_back(digest);
                Ok(trace)
            }
            Err(e) => {
                self.fault = Some(e.clone());
                Err(e)
            }
        }
    }

    fn run_round_inner(
        &mut self,
        batch: &Batch,
        t: f64,
        complete: bool,
        digest: &mut RoundDigest,
    ) -> Result<Option<RealizedTrace>, String> {
        let n = self.world.len();
        let system = SystemConfig::new(self.capacities_max.clone()).map_err(|e| e.to_string())?;
        let dag = Dag::from_edges(n, &self.edges).map_err(|e| e.to_string())?;
        let jobs: Vec<MoldableJob> = self.world.iter().map(|w| w.job.clone()).collect();
        let instance = Instance::new(system, dag, jobs).map_err(|e| e.to_string())?;
        let plan = self.build_plan(&instance, t, &batch.jobs)?;

        let (tx, mut source) = ChannelSource::channel();
        for &job in &batch.jobs {
            let _ = tx.send(SourceEvent::Release { time: t, job });
        }
        for &(resource, capacity) in &batch.capacity_changes {
            let _ = tx.send(SourceEvent::Capacity {
                time: t,
                resource,
                capacity,
            });
        }
        drop(tx);

        let mut run = match (&self.snapshot, self.perturber.take()) {
            (None, _) => SimRun::start(
                &instance,
                &plan,
                self.config.seed,
                self.config.perturbation.clone(),
                None,
                vec![false; n],
            ),
            (Some(snapshot), Some(perturber)) => {
                SimRun::resume_with_perturber(&instance, &plan, snapshot, perturber, None)
            }
            (Some(snapshot), None) => SimRun::resume(
                &instance,
                &plan,
                snapshot,
                self.config.perturbation.clone(),
                None,
            ),
        }
        .map_err(|e| e.to_string())?;
        if !self.config.failures.is_failure_free() {
            // The failure stream resumes exactly where the previous round
            // left it, like the perturber; on the first round it starts
            // fresh from the seed.
            match self.failure_sampler.take() {
                Some(sampler) => run
                    .set_failures_with_sampler(self.config.failures.clone(), sampler)
                    .map_err(|e| e.to_string())?,
                None => run.set_failures(self.config.failures.clone()),
            }
        }
        let mut policy = self.config.policy.build();
        if complete {
            run.drive(policy.as_mut(), &mut source)
        } else {
            run.drive_until(policy.as_mut(), &mut source, t)
        }
        .map_err(|e| e.to_string())?;

        let snapshot = run.checkpoint();
        self.virtual_now = snapshot.now;
        digest.events_harvested = (snapshot.events.len() - self.events_seen) as u64;
        self.harvest_events(&snapshot, digest);
        digest.virtual_time = self.virtual_now;
        digest.pending_after = snapshot
            .started
            .iter()
            .zip(snapshot.abandoned.iter().chain(std::iter::repeat(&false)))
            .filter(|&(&started, &abandoned)| !started && !abandoned)
            .count() as u64;
        if !self.config.failures.is_failure_free() {
            self.failure_sampler = Some(run.failure_sampler().clone());
        }
        self.perturber = Some(run.perturber().clone());
        let trace = complete.then(|| run.into_trace(self.config.policy.label()));
        self.snapshot = Some(snapshot);
        Ok(trace)
    }

    /// Builds the job-indexed plan for the current world: realized entries
    /// for jobs that already started, fresh two-phase plans (against the
    /// machine's *current* capacities) for everything pending. Planned
    /// finish times of newly submitted jobs are recorded per tenant.
    fn build_plan(
        &mut self,
        instance: &Instance,
        t: f64,
        new_jobs: &[usize],
    ) -> Result<Schedule, String> {
        let n = instance.num_jobs();
        let started = |j: usize| {
            self.snapshot
                .as_ref()
                .is_some_and(|s| j < s.started.len() && s.started[j])
        };
        let mut entries: Vec<Option<ScheduledJob>> = vec![None; n];
        let mut pending: Vec<usize> = Vec::new();
        for (j, entry) in entries.iter_mut().enumerate() {
            if started(j) {
                let s = self.snapshot.as_ref().expect("started implies snapshot");
                *entry = Some(ScheduledJob {
                    job: j,
                    start: s.start[j],
                    finish: s.finish[j],
                    alloc: s.alloc_used[j].clone(),
                });
            } else {
                pending.push(j);
            }
        }
        let planned = plan_pending(
            instance,
            &self.capacities_now,
            &pending,
            t,
            &self.config.scheduler,
        )?;
        for entry in planned {
            let j = entry.job;
            entries[j] = Some(entry);
        }
        let entries: Vec<ScheduledJob> = entries
            .into_iter()
            .map(|e| e.expect("every job planned or realized"))
            .collect();
        for &j in new_jobs {
            let tenant = self.world[j].tenant.clone();
            self.metrics.record_planned(&tenant, entries[j].finish);
        }
        Ok(Schedule::new(entries))
    }

    /// Feeds the engine events processed since the last harvest into the
    /// metrics registry and the round digest (the snapshot retains the full
    /// log, so the cursor only ever advances). Mirrors the incremental
    /// core's harvest, including retry and quarantine bookkeeping.
    fn harvest_events(&mut self, snapshot: &SimSnapshot, digest: &mut RoundDigest) {
        let retry_max = self.config.failures.retry.max_attempts;
        for ev in &snapshot.events[self.events_seen..] {
            match ev {
                TraceEvent::JobStarted { job, .. } => {
                    let tenant = self.world[*job].tenant.clone();
                    self.metrics.record_scheduled(&tenant);
                    digest.started += 1;
                }
                TraceEvent::JobCompleted { time, job, .. } => {
                    let tenant = self.world[*job].tenant.clone();
                    self.metrics.record_completed(&tenant, *time);
                    digest.completed += 1;
                }
                TraceEvent::JobFailed {
                    time,
                    job,
                    attempt,
                    cause,
                } => {
                    let cascade = *cause == FailCause::Cascade;
                    if !cascade {
                        digest.failed += 1;
                    }
                    if cascade || *attempt >= retry_max {
                        let tenant = self.world[*job].tenant.clone();
                        self.metrics.record_quarantined(&tenant);
                        digest.quarantined += 1;
                        self.quarantine.push(QuarantineEntry {
                            tenant,
                            job: *job as u64,
                            attempts: *attempt,
                            cause: cause.label(),
                            time: *time,
                        });
                    }
                }
                TraceEvent::JobRetried { job, .. } => {
                    let tenant = self.world[*job].tenant.clone();
                    self.metrics.record_retried(&tenant);
                }
                _ => {}
            }
        }
        self.events_seen = snapshot.events.len();
    }

    /// Validates the realized schedule of a drained world
    /// (capacity/precedence feasibility, durations relaxed).
    fn validate(&self, trace: &RealizedTrace) -> bool {
        let n = self.world.len();
        if n == 0 {
            return true;
        }
        let Ok(system) = SystemConfig::new(self.capacities_max.clone()) else {
            return false;
        };
        let Ok(dag) = Dag::from_edges(n, &self.edges) else {
            return false;
        };
        let jobs: Vec<MoldableJob> = self.world.iter().map(|w| w.job.clone()).collect();
        let Ok(instance) = Instance::new(system, dag, jobs) else {
            return false;
        };
        validate_schedule_with(
            &instance,
            &trace.realized,
            ValidationOptions {
                check_durations: false,
            },
        )
        .is_valid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrls_model::ExecTimeSpec;

    #[test]
    fn naive_reference_still_serves() {
        let mut core = NaiveService::new(ServeConfig {
            capacities: vec![4, 4],
            ..ServeConfig::default()
        });
        let a = core
            .submit_job(
                "t",
                MoldableJob::new(0, ExecTimeSpec::Constant { time: 2.0 }),
                &[],
            )
            .unwrap();
        core.flush().unwrap();
        core.submit_job(
            "t",
            MoldableJob::new(0, ExecTimeSpec::Constant { time: 1.0 }),
            &[a],
        )
        .unwrap();
        let report = core.drain().unwrap();
        assert_eq!(report.completed, 2);
        assert!(report.feasible);
        // The naive path retains the whole event log in its checkpoint.
        assert!(core.retained_events() > 0);
    }
}
