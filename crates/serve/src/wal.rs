//! The durability subsystem: a checksummed, length-prefixed append-only
//! **write-ahead log** of every admitted input, plus rotating checkpoint
//! files with log-position watermarks.
//!
//! The service core is deterministic in its submission order — same inputs,
//! byte-identical outputs — so durability only has to persist the *inputs*:
//! each admitted submission, capacity change and round stamp is appended
//! here **before** the reply is sent, and a crashed server replays the log
//! suffix through the unchanged round machinery to rebuild exactly the state
//! it lost. Checkpoints (the service's [`DurableState`] rendered to JSON,
//! written atomically via tmp + rename) bound how much suffix a recovery
//! must replay; their embedded `wal_seq` watermark says which log prefix
//! they already cover.
//!
//! ## On-disk format
//!
//! `wal.log` starts with the 8-byte magic `MRLSWAL1`, followed by records:
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32][payload: compact JSON WalRecord]
//! ```
//!
//! The CRC covers the length prefix *and* the payload, so a bit flip
//! anywhere in a record — header, checksum or body — fails verification.
//! Each [`WalRecord`] carries a sequence number that must increase by one
//! from zero; a reader stops at the first torn, corrupt, oversized or
//! out-of-sequence record and **truncates** the file back to the last valid
//! prefix (the tail of a crashed write is discarded, never propagated, and a
//! duplicated record is cut at its first repeat — replay is idempotent
//! because every surviving record applies exactly once).
//!
//! [`DurableState`]: crate::service::ServiceCore::recover

use mrls_model::MoldableJob;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The 8-byte magic that opens every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"MRLSWAL1";

/// File name of the log inside a durability directory.
pub const WAL_FILE: &str = "wal.log";

/// Hard cap on one record's payload: a bit-flipped length prefix must not
/// make the reader allocate gigabytes (the CRC would catch it anyway, but
/// only after the read).
pub const MAX_RECORD_BYTES: u32 = 16 << 20;

/// How many checkpoint files are retained (newest first; older pruned).
pub const CHECKPOINTS_KEPT: usize = 2;

/// How the log is persisted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// No log, no checkpoints — a crash loses everything (the pre-durability
    /// behaviour).
    #[default]
    Off,
    /// Every record is written straight through to the OS before the reply
    /// is sent: survives a killed *process*, not a killed machine.
    Buffered,
    /// Every append is additionally `fsync`ed: survives power loss, at the
    /// cost of one disk sync per record.
    Fsync,
}

impl DurabilityMode {
    /// Parses `off` / `buffered` / `fsync`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(DurabilityMode::Off),
            "buffered" => Ok(DurabilityMode::Buffered),
            "fsync" => Ok(DurabilityMode::Fsync),
            other => Err(format!(
                "unknown durability mode `{other}` (expected off|buffered|fsync)"
            )),
        }
    }

    /// The canonical name (`off` / `buffered` / `fsync`).
    pub fn label(self) -> &'static str {
        match self {
            DurabilityMode::Off => "off",
            DurabilityMode::Buffered => "buffered",
            DurabilityMode::Fsync => "fsync",
        }
    }
}

/// One logged input. Everything the deterministic core needs to re-derive
/// its state: admissions and capacity changes as submitted (including ones
/// the core will re-reject during replay — rejections mutate metrics, so
/// they must replay too), and a [`WalOp::Round`] marker wherever the
/// wall-clock-driven batching actually closed a window (batch boundaries are
/// the one nondeterministic input, so they are recorded, not re-derived).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalOp {
    /// One `submit_job` call.
    Job {
        /// Tenant the work was accounted under.
        tenant: String,
        /// The submitted job description.
        job: MoldableJob,
        /// Global ids of its predecessors, as submitted.
        deps: Vec<u64>,
    },
    /// One `submit_dag` call.
    Dag {
        /// Tenant the work was accounted under.
        tenant: String,
        /// The submitted jobs.
        jobs: Vec<MoldableJob>,
        /// Local precedence edges, as submitted.
        edges: Vec<(usize, usize)>,
    },
    /// One `submit_job` call that carried a client idempotency token. Kept
    /// separate from [`WalOp::Job`] so pre-token logs replay untouched.
    TokenJob {
        /// Tenant the work was accounted under.
        tenant: String,
        /// The submitted job description.
        job: MoldableJob,
        /// Global ids of its predecessors, as submitted.
        deps: Vec<u64>,
        /// The client-assigned idempotency token.
        token: String,
    },
    /// One `submit_dag` call that carried a client idempotency token.
    TokenDag {
        /// Tenant the work was accounted under.
        tenant: String,
        /// The submitted jobs.
        jobs: Vec<MoldableJob>,
        /// Local precedence edges, as submitted.
        edges: Vec<(usize, usize)>,
        /// The client-assigned idempotency token.
        token: String,
    },
    /// One `submit_capacity` call.
    Capacity {
        /// Affected resource type.
        resource: usize,
        /// The new capacity.
        capacity: u64,
    },
    /// The batching window closed: one scheduling round ran here. `stamp` is
    /// the virtual time the round's events were stamped with — replay
    /// cross-checks it against what the rebuilt core would stamp, so a
    /// half-applied or misordered log is detected instead of silently
    /// diverging.
    Round {
        /// Virtual time of the round.
        stamp: f64,
        /// Whether this was a drain (engine driven to completion) rather
        /// than a paused round.
        drain: bool,
    },
    /// A recovery completed here, having cut `truncated_bytes` of invalid
    /// tail. Purely informational — replay skips it — but it makes crash
    /// history auditable from the log alone.
    Recovered {
        /// Bytes of torn/corrupt tail discarded by the recovery.
        truncated_bytes: u64,
    },
}

/// One sequenced record of the log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Position in the log, starting at zero, increasing by exactly one —
    /// the idempotence guard: a reader stops at the first sequence break, so
    /// a duplicated or reordered record can never apply twice.
    pub seq: u64,
    /// The logged input.
    pub op: WalOp,
}

/// The result of scanning (and repairing) a log file.
#[derive(Debug)]
pub struct WalScan {
    /// Every valid record, in sequence order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (magic included).
    pub valid_len: u64,
    /// Bytes of invalid tail that were cut (zero for a clean log).
    pub truncated_bytes: u64,
}

/// A typed recovery failure. Everything a recovery can reject is one of
/// these — recovery never panics and never leaves a half-applied core
/// behind.
#[derive(Debug)]
pub enum RecoverError {
    /// The durability directory or its files could not be read or written.
    Io(std::io::Error),
    /// A checkpoint file exists but cannot be used (unparsable, or its
    /// watermark points past the valid log) and no older one works either.
    Checkpoint(String),
    /// The log's surviving prefix does not replay to a consistent round
    /// boundary (e.g. a round marker whose stamp the rebuilt core
    /// contradicts).
    Replay {
        /// Sequence number of the record that failed to apply.
        seq: u64,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "recovery I/O error: {e}"),
            RecoverError::Checkpoint(d) => write!(f, "unusable checkpoint: {d}"),
            RecoverError::Replay { seq, detail } => {
                write!(f, "log replay failed at record {seq}: {detail}")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<std::io::Error> for RecoverError {
    fn from(e: std::io::Error) -> Self {
        RecoverError::Io(e)
    }
}

/// What a completed recovery did — surfaced by `mrls recover` and the
/// `QueryDurability` verb.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Round count of the checkpoint the recovery started from (`None` =
    /// rebuilt from genesis).
    pub checkpoint_round: Option<u64>,
    /// Log position (records) the checkpoint already covered.
    pub checkpoint_seq: u64,
    /// Records replayed beyond the checkpoint.
    pub replayed_records: u64,
    /// Rounds re-run during replay.
    pub replayed_rounds: u64,
    /// Bytes of torn/corrupt tail discarded before replay.
    pub truncated_bytes: u64,
}

/// The queryable state of the durability layer ([`QueryDurability`]).
///
/// [`QueryDurability`]: crate::protocol::RequestBody::QueryDurability
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurabilityStatus {
    /// The mode label (`off` / `buffered` / `fsync`).
    pub mode: String,
    /// Records in the log (equivalently: the next sequence number).
    pub wal_records: u64,
    /// Valid byte length of the log (magic included); zero when off.
    pub wal_bytes: u64,
    /// Round count at the newest checkpoint, if one was written.
    pub last_checkpoint_round: Option<u64>,
    /// Log position (records covered) of the newest checkpoint.
    pub last_checkpoint_seq: Option<u64>,
    /// Checkpoints written by this core since it started.
    pub checkpoints_written: u64,
    /// Recoveries this core performed (0 for a fresh start, 1 after one
    /// crash-restart, …).
    pub recoveries: u64,
    /// Total bytes of invalid tail cut by this core's recoveries.
    pub truncated_bytes: u64,
}

impl Default for DurabilityStatus {
    fn default() -> Self {
        DurabilityStatus {
            mode: DurabilityMode::Off.label().to_string(),
            wal_records: 0,
            wal_bytes: 0,
            last_checkpoint_round: None,
            last_checkpoint_seq: None,
            checkpoints_written: 0,
            recoveries: 0,
            truncated_bytes: 0,
        }
    }
}

/// Frames `record` into `frame` (cleared first). Taking the buffer from the
/// caller lets [`WalWriter::append`] reuse one allocation across appends —
/// the frame is on the per-round hot path of every durable service.
fn encode_record_into(frame: &mut Vec<u8>, record: &WalRecord) {
    use mrls_core::hash::{crc32_finish, crc32_init, crc32_update};
    let payload = serde_json::to_string(record).expect("WAL records are always serialisable");
    let payload = payload.as_bytes();
    let len = payload.len() as u32;
    frame.clear();
    frame.reserve(8 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    // The CRC covers the length prefix and the payload: a flip anywhere in
    // the frame fails verification. Incremental, so the append path copies
    // nothing extra.
    let crc = crc32_update(crc32_update(crc32_init(), &len.to_le_bytes()), payload);
    frame.extend_from_slice(&crc32_finish(crc).to_le_bytes());
    frame.extend_from_slice(payload);
}

#[cfg(test)]
fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut frame = Vec::new();
    encode_record_into(&mut frame, record);
    frame
}

/// Scans the log at `path`, returning every valid record and the byte
/// length of the valid prefix. A missing file scans as empty. The file is
/// **not** modified — callers decide whether to truncate (recovery does,
/// via [`WalWriter::resume`]).
pub fn scan_wal(path: &Path) -> std::io::Result<WalScan> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let total = bytes.len() as u64;
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        // No valid prefix at all (empty, garbage, or a flipped magic): the
        // whole file is discardable tail.
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            truncated_bytes: total,
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut expected_seq = 0u64;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break; // clean end
        }
        if rest.len() < 8 {
            break; // torn header
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_RECORD_BYTES {
            break; // corrupt length prefix
        }
        let len = len as usize;
        if rest.len() < 8 + len {
            break; // torn payload
        }
        let payload = &rest[8..8 + len];
        let actual = {
            use mrls_core::hash::{crc32_finish, crc32_init, crc32_update};
            crc32_finish(crc32_update(
                crc32_update(crc32_init(), &rest[..4]),
                payload,
            ))
        };
        if actual != crc {
            break; // bit flip somewhere in the frame
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let record: WalRecord = match serde_json::from_str(text) {
            Ok(r) => r,
            Err(_) => break, // checksum-valid but unparsable: foreign writer
        };
        if record.seq != expected_seq {
            break; // duplicate or reordered record: cut at the break
        }
        expected_seq += 1;
        records.push(record);
        pos += 8 + len;
    }
    Ok(WalScan {
        records,
        valid_len: pos as u64,
        truncated_bytes: total - pos as u64,
    })
}

/// The append handle. Owns the open log file; every append writes one framed
/// record through to the OS (and syncs it in [`DurabilityMode::Fsync`])
/// before returning — the caller replies to the client only after.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    mode: DurabilityMode,
    next_seq: u64,
    bytes: u64,
    /// Reusable frame buffer: appends after the first allocate nothing.
    frame: Vec<u8>,
}

impl WalWriter {
    /// Creates a fresh log at `path` (truncating whatever was there).
    pub fn create(path: &Path, mode: DurabilityMode) -> std::io::Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(WAL_MAGIC)?;
        if mode == DurabilityMode::Fsync {
            file.sync_data()?;
        }
        Ok(WalWriter {
            file,
            mode,
            next_seq: 0,
            bytes: WAL_MAGIC.len() as u64,
            frame: Vec::new(),
        })
    }

    /// Re-opens the log at `path` for appending after a scan: truncates the
    /// file to the scan's `valid_len` (cutting any invalid tail on disk) and
    /// positions the writer after the last valid record.
    pub fn resume(path: &Path, mode: DurabilityMode, scan: &WalScan) -> std::io::Result<Self> {
        if scan.valid_len == 0 {
            return WalWriter::create(path, mode);
        }
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(scan.valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            mode,
            next_seq: scan.records.len() as u64,
            bytes: scan.valid_len,
            frame: Vec::new(),
        })
    }

    /// Appends one op as the next record and makes it durable per the mode.
    pub fn append(&mut self, op: WalOp) -> std::io::Result<u64> {
        let seq = self.next_seq;
        encode_record_into(&mut self.frame, &WalRecord { seq, op });
        self.file.write_all(&self.frame)?;
        let frame_len = self.frame.len() as u64;
        if self.mode == DurabilityMode::Fsync {
            self.file.sync_data()?;
            mrls_obs::counter_add("serve.wal.fsyncs", 1);
        }
        self.next_seq += 1;
        self.bytes += frame_len;
        mrls_obs::counter_add("serve.wal.records", 1);
        mrls_obs::counter_add("serve.wal.appended_bytes", frame_len);
        Ok(seq)
    }

    /// The next sequence number (= records in the log).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current byte length of the log.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Path of the log file inside a durability directory.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

/// Path of the checkpoint covering the first `seq` log records.
pub fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:012}.json"))
}

/// Writes a checkpoint atomically (tmp + rename) and prunes all but the
/// newest [`CHECKPOINTS_KEPT`] checkpoint files.
pub fn write_checkpoint(dir: &Path, seq: u64, json: &str) -> std::io::Result<()> {
    let tmp = dir.join(format!("checkpoint-{seq:012}.json.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, checkpoint_path(dir, seq))?;
    for (_, path) in list_checkpoints(dir)?.into_iter().skip(CHECKPOINTS_KEPT) {
        let _ = std::fs::remove_file(path);
    }
    mrls_obs::counter_add("serve.wal.checkpoints", 1);
    Ok(())
}

/// Lists the checkpoint files of `dir`, newest (highest covered sequence)
/// first.
pub fn list_checkpoints(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("checkpoint-") else {
            continue;
        };
        let Some(digits) = rest.strip_suffix(".json") else {
            continue;
        };
        let Ok(seq) = digits.parse::<u64>() else {
            continue;
        };
        found.push((seq, entry.path()));
    }
    found.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrls_model::ExecTimeSpec;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mrls-wal-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ops() -> Vec<WalOp> {
        vec![
            WalOp::Job {
                tenant: "alice".into(),
                job: MoldableJob::new(0, ExecTimeSpec::Constant { time: 2.0 }),
                deps: vec![],
            },
            WalOp::Capacity {
                resource: 0,
                capacity: 3,
            },
            WalOp::Round {
                stamp: 0.0,
                drain: false,
            },
            WalOp::Dag {
                tenant: "bob".into(),
                jobs: vec![MoldableJob::new(0, ExecTimeSpec::Constant { time: 1.0 })],
                edges: vec![],
            },
            WalOp::Round {
                stamp: 1.0,
                drain: true,
            },
        ]
    }

    #[test]
    fn log_roundtrips_and_resumes() {
        let dir = temp_dir();
        let path = wal_path(&dir);
        let mut w = WalWriter::create(&path, DurabilityMode::Buffered).unwrap();
        for op in ops() {
            w.append(op).unwrap();
        }
        assert_eq!(w.next_seq(), 5);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.truncated_bytes, 0);
        let expected: Vec<WalOp> = ops();
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.op, expected[i]);
        }
        // Resume appends after the last record.
        let mut w = WalWriter::resume(&path, DurabilityMode::Fsync, &scan).unwrap();
        w.append(WalOp::Recovered { truncated_bytes: 0 }).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 6);
        assert_eq!(scan.records[5].seq, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_byte_truncation_of_the_tail_recovers_the_prefix() {
        let dir = temp_dir();
        let path = wal_path(&dir);
        let mut w = WalWriter::create(&path, DurabilityMode::Buffered).unwrap();
        for op in ops() {
            w.append(op).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let scan = scan_wal(&path).unwrap();
        let tail_start = {
            // Byte offset where the last record's frame begins.
            let mut pos = WAL_MAGIC.len();
            for _ in 0..scan.records.len() - 1 {
                let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 8 + len;
            }
            pos
        };
        for cut in tail_start..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_wal(&path).unwrap();
            assert_eq!(
                scan.records.len(),
                4,
                "cut at {cut}: the first 4 records must survive"
            );
            assert_eq!(scan.valid_len as usize, tail_start, "cut at {cut}");
            assert_eq!(
                scan.truncated_bytes as usize,
                cut - tail_start,
                "cut at {cut}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_anywhere_in_the_tail_record_are_detected() {
        let dir = temp_dir();
        let path = wal_path(&dir);
        let mut w = WalWriter::create(&path, DurabilityMode::Buffered).unwrap();
        for op in ops() {
            w.append(op).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let scan = scan_wal(&path).unwrap();
        let mut pos = WAL_MAGIC.len();
        for _ in 0..scan.records.len() - 1 {
            let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 8 + len;
        }
        // Flip one bit per byte across the whole tail frame: header (length
        // and CRC words) and payload alike. The scan must never surface a
        // fifth record.
        for byte in pos..full.len() {
            let mut flipped = full.clone();
            flipped[byte] ^= 1 << (byte % 8);
            std::fs::write(&path, &flipped).unwrap();
            let scan = scan_wal(&path).unwrap();
            assert!(
                scan.records.len() <= 4,
                "flip at byte {byte} let a corrupt record through"
            );
            assert_eq!(scan.records.len(), 4, "flip at {byte} cut valid records");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_breaks_cut_the_log_at_the_break() {
        let dir = temp_dir();
        let path = wal_path(&dir);
        let mut w = WalWriter::create(&path, DurabilityMode::Buffered).unwrap();
        for op in ops().into_iter().take(2) {
            w.append(op).unwrap();
        }
        // Append a byte-level duplicate of record 1 (seq repeats).
        let dup = encode_record(&WalRecord {
            seq: 1,
            op: WalOp::Capacity {
                resource: 0,
                capacity: 3,
            },
        });
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&dup);
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 2, "the duplicate must not re-apply");
        assert_eq!(scan.truncated_bytes as usize, dup.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_and_empty_files_scan_as_empty() {
        let dir = temp_dir();
        let path = wal_path(&dir);
        std::fs::write(&path, b"").unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(
            (scan.records.len(), scan.valid_len, scan.truncated_bytes),
            (0, 0, 0)
        );
        std::fs::write(&path, b"complete garbage, not a WAL").unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.truncated_bytes, 27);
        // A missing file is an empty log too.
        std::fs::remove_file(&path).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!((scan.records.len(), scan.truncated_bytes), (0, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_rotate_and_list_newest_first() {
        let dir = temp_dir();
        for seq in [3u64, 9, 27] {
            write_checkpoint(&dir, seq, &format!("{{\"seq\":{seq}}}")).unwrap();
        }
        let listed = list_checkpoints(&dir).unwrap();
        let seqs: Vec<u64> = listed.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![27, 9], "newest first, third pruned");
        assert!(!checkpoint_path(&dir, 3).exists());
        assert_eq!(
            std::fs::read_to_string(&listed[0].1).unwrap(),
            "{\"seq\":27}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
