//! The round **flight recorder**: a bounded ring of per-round summaries kept
//! by the service core, queryable over the protocol
//! ([`RequestBody::QueryFlightRecorder`]) and dumped to stderr when a round
//! blows its wall-clock tick budget — the black box you read *after* a round
//! went sideways, without having had verbose logging on.
//!
//! Every field except `wall_us`/`over_tick` is a count or a virtual time:
//! deterministic in the submission order, so the differential harness can
//! compare the recorder's [`RoundDigest`] projection between the incremental
//! core and the naive reference byte for byte. The two wall-clock fields are
//! measurement, excluded from the digest and from every byte-identity
//! guarantee — which is also why flight data is *not* part of
//! [`ServiceCore::status`] snapshots.
//!
//! [`RequestBody::QueryFlightRecorder`]: crate::protocol::RequestBody::QueryFlightRecorder
//! [`ServiceCore::status`]: crate::ServiceCore::status

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How many rounds the flight recorder retains (oldest evicted first).
pub const FLIGHT_RECORDER_CAPACITY: usize = 64;

/// One round's summary, written by the service core as the round ends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (1-based; the drain that completes a world reuses the
    /// last round's index with `drain` set).
    pub round: u64,
    /// Whether this execution drove the engine to completion (a drain)
    /// rather than pausing at the round's stamp.
    pub drain: bool,
    /// Virtual time of the engine when the round paused or completed.
    pub virtual_time: f64,
    /// Jobs admitted into this round's batch.
    pub admitted_jobs: u64,
    /// Capacity changes applied by this round.
    pub capacity_changes: u64,
    /// Pending jobs (re-)planned this round.
    pub plan_planned: u64,
    /// Plan entries whose placement changed and was re-applied.
    pub plan_updates: u64,
    /// Plan entries kept bit-identical by the diff.
    pub plan_kept: u64,
    /// Jobs that started during this round's drive.
    pub started: u64,
    /// Jobs that completed during this round's drive.
    pub completed: u64,
    /// Failed attempts (injected faults) during this round's drive.
    pub failed: u64,
    /// Jobs quarantined (retry budget exhausted or cascade-abandoned)
    /// during this round's drive.
    pub quarantined: u64,
    /// Engine events harvested into the ledger after the drive.
    pub events_harvested: u64,
    /// Jobs still pending (admitted, not started) when the round ended.
    pub pending_after: u64,
    /// Wall-clock duration of the round. **Nondeterministic** — excluded
    /// from the digest and every byte-identity comparison.
    pub wall_us: u64,
    /// Whether `wall_us` exceeded the configured tick interpreted as a
    /// wall-clock budget (`tick` seconds). **Nondeterministic.**
    pub over_tick: bool,
}

impl RoundRecord {
    /// A zeroed record for the given round, filled in as the round runs.
    pub fn new(round: u64, drain: bool) -> Self {
        RoundRecord {
            round,
            drain,
            virtual_time: 0.0,
            admitted_jobs: 0,
            capacity_changes: 0,
            plan_planned: 0,
            plan_updates: 0,
            plan_kept: 0,
            started: 0,
            completed: 0,
            failed: 0,
            quarantined: 0,
            events_harvested: 0,
            pending_after: 0,
            wall_us: 0,
            over_tick: false,
        }
    }

    /// The deterministic projection of this record: every field that is a
    /// count or a virtual time, none that is a wall-clock reading. The
    /// differential harness compares digests between the incremental core
    /// and the naive reference.
    pub fn digest(&self) -> RoundDigest {
        RoundDigest {
            round: self.round,
            drain: self.drain,
            virtual_time: self.virtual_time,
            admitted_jobs: self.admitted_jobs,
            capacity_changes: self.capacity_changes,
            started: self.started,
            completed: self.completed,
            failed: self.failed,
            quarantined: self.quarantined,
            events_harvested: self.events_harvested,
            pending_after: self.pending_after,
        }
    }
}

/// The deterministic subset of a [`RoundRecord`] that both service cores can
/// produce independently. Plan-diff counters are deliberately absent: the
/// naive reference rebuilds the full plan every round and has no diff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundDigest {
    /// Round index.
    pub round: u64,
    /// Whether the round drove the engine to completion.
    pub drain: bool,
    /// Virtual time when the round ended.
    pub virtual_time: f64,
    /// Jobs admitted into the round's batch.
    pub admitted_jobs: u64,
    /// Capacity changes applied by the round.
    pub capacity_changes: u64,
    /// Jobs started during the round.
    pub started: u64,
    /// Jobs completed during the round.
    pub completed: u64,
    /// Failed attempts during the round.
    pub failed: u64,
    /// Jobs quarantined during the round.
    pub quarantined: u64,
    /// Engine events processed by the round.
    pub events_harvested: u64,
    /// Jobs still pending when the round ended.
    pub pending_after: u64,
}

/// A bounded ring of the most recent [`RoundRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: VecDeque<RoundRecord>,
    capacity: usize,
    total: u64,
}

impl FlightRecorder {
    /// An empty recorder retaining at most `capacity` rounds.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity.min(FLIGHT_RECORDER_CAPACITY)),
            capacity: capacity.max(1),
            total: 0,
        }
    }

    /// Rebuilds a default-capacity recorder from checkpointed state (the
    /// durability layer's recovery path): the retained ring in order, and the
    /// lifetime total including rounds the ring had already evicted.
    pub fn restore(records: Vec<RoundRecord>, total: u64) -> Self {
        let mut fr = FlightRecorder::default();
        for r in records {
            fr.push(r);
        }
        fr.total = total;
        fr
    }

    /// Appends one record, evicting the oldest when full.
    pub fn push(&mut self, record: RoundRecord) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(record);
        self.total += 1;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<RoundRecord> {
        self.ring.iter().cloned().collect()
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records ever pushed (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FLIGHT_RECORDER_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: u64) -> RoundRecord {
        let mut r = RoundRecord::new(round, false);
        r.virtual_time = round as f64;
        r.admitted_jobs = 1;
        r.wall_us = 17; // never part of the digest
        r
    }

    #[test]
    fn ring_evicts_oldest_and_counts_everything() {
        let mut fr = FlightRecorder::new(3);
        assert!(fr.is_empty());
        for round in 1..=5 {
            fr.push(record(round));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.total_recorded(), 5);
        let rounds: Vec<u64> = fr.records().iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![3, 4, 5], "oldest first, oldest evicted");
    }

    #[test]
    fn digest_drops_the_wall_clock_fields() {
        let mut a = record(7);
        let mut b = record(7);
        a.wall_us = 1;
        a.over_tick = true;
        b.wall_us = 999_999;
        b.over_tick = false;
        assert_eq!(a.digest(), b.digest(), "digests ignore wall-clock noise");
    }

    #[test]
    fn records_roundtrip_through_json() {
        let r = record(2);
        let json = serde_json::to_string(&r).unwrap();
        let back: RoundRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        let d: RoundDigest =
            serde_json::from_str(&serde_json::to_string(&r.digest()).unwrap()).unwrap();
        assert_eq!(d, r.digest());
    }
}
