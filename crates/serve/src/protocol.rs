//! The wire protocol: line-delimited JSON over TCP.
//!
//! Every request and every response is one JSON document on one line
//! (newline-terminated, at most [`ServeConfig::max_line_bytes`] bytes —
//! oversized lines are rejected and the connection closed). Requests carry a
//! client-chosen `id` that the matching response echoes, and a `tenant` name
//! under which the metrics layer accounts the work.
//!
//! [`ServeConfig::max_line_bytes`]: crate::ServeConfig::max_line_bytes
//!
//! ```text
//! -> {"id":1,"tenant":"alice","body":{"SubmitJob":{"job":{...},"deps":[]}}}
//! <- {"id":1,"body":{"Accepted":{"jobs":[0]}}}
//! ```

use crate::flight::RoundRecord;
use crate::metrics::MetricsSnapshot;
use mrls_model::MoldableJob;
use mrls_sim::RealizedTrace;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Read, Write};

/// Default cap on the byte length of one protocol line (1 MiB).
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Tenant the work is accounted under.
    pub tenant: String,
    /// Client-assigned idempotency token for submit verbs: a resend carrying
    /// a token the server already accepted is answered with the original ids
    /// instead of being admitted twice (the retried-submission guarantee of
    /// the resilient client). `None` (the wire default) opts out.
    pub token: Option<String>,
    /// What is being asked.
    pub body: RequestBody,
}

// Hand-written so the `token` field stays optional on the wire: requests
// serialised without it (every pre-token client) still parse, and `None` is
// omitted instead of encoded as `null` (the vendored serde_derive has no
// `#[serde(default)]` / `skip_serializing_if`).
impl Serialize for Request {
    fn to_value(&self) -> serde::__private::Value {
        use serde::__private::Value;
        let mut pairs = vec![
            ("id".to_string(), self.id.to_value()),
            ("tenant".to_string(), self.tenant.to_value()),
        ];
        if let Some(token) = &self.token {
            pairs.push(("token".to_string(), token.to_value()));
        }
        pairs.push(("body".to_string(), self.body.to_value()));
        Value::Object(pairs)
    }
}

impl Deserialize for Request {
    fn from_value(
        v: &serde::__private::Value,
    ) -> std::result::Result<Self, serde::__private::Error> {
        use serde::__private::{field, opt_field};
        Ok(Request {
            id: field(v, "id")?,
            tenant: field(v, "tenant")?,
            token: opt_field(v, "token")?,
            body: field(v, "body")?,
        })
    }
}

/// The request payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// Submit one moldable job. `deps` are global ids of previously accepted
    /// jobs (of any tenant) that must complete first.
    SubmitJob {
        /// The job description.
        job: MoldableJob,
        /// Global ids of its predecessors.
        deps: Vec<u64>,
    },
    /// Submit a whole DAG atomically. `edges` are `(from, to)` pairs of
    /// indices into `jobs`.
    SubmitDag {
        /// The jobs of the DAG, assigned consecutive global ids.
        jobs: Vec<MoldableJob>,
        /// Precedence edges among the submitted jobs.
        edges: Vec<(usize, usize)>,
    },
    /// Change one resource type's capacity (absolute new value, `>= 1`),
    /// effective at the next batching round.
    CapacityChange {
        /// Affected resource type.
        resource: usize,
        /// The new capacity.
        capacity: u64,
    },
    /// Ask for the current metrics snapshot.
    QueryStatus,
    /// Ask for the cross-layer observability snapshot (deterministic
    /// counters/gauges/histograms plus the namespaced wall-clock values).
    QueryMetrics,
    /// Ask for the round flight recorder: the bounded ring of per-round
    /// summaries (counts and virtual times, plus the nondeterministic
    /// wall-clock latency of each round).
    QueryFlightRecorder,
    /// Ask for the durability layer's state: log position and byte length,
    /// newest checkpoint watermark, recovery count, truncated-tail bytes.
    QueryDurability,
    /// Ask for the poison quarantine: every job that exhausted its retry
    /// budget (or was cascade-abandoned with a failed ancestor), in the
    /// order the jobs were quarantined.
    QueryQuarantine,
    /// Flush the current batch and run the virtual-time engine until every
    /// admitted job completed; reply with a [`DrainReport`].
    Drain,
    /// Stop the server (queued-but-unflushed submissions are dropped; drain
    /// first to complete them).
    Shutdown,
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The id of the request being answered (0 when it could not be parsed).
    pub id: u64,
    /// The response payload.
    pub body: ResponseBody,
}

/// The response payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponseBody {
    /// The submission was admitted; these are the assigned global job ids.
    Accepted {
        /// Global ids, in submission order.
        jobs: Vec<u64>,
    },
    /// The submission was refused (backpressure, validation failure, …).
    Rejected {
        /// Why.
        reason: String,
    },
    /// Answer to [`RequestBody::QueryStatus`].
    Status {
        /// The metrics snapshot.
        metrics: MetricsSnapshot,
    },
    /// Answer to [`RequestBody::QueryMetrics`].
    Metrics {
        /// The observability snapshot (counters, gauges, histograms; the
        /// `wall` namespace is the only nondeterministic part).
        obs: mrls_obs::Snapshot,
    },
    /// Answer to [`RequestBody::QueryFlightRecorder`].
    FlightRecorder {
        /// The retained per-round summaries, oldest first (at most
        /// [`crate::flight::FLIGHT_RECORDER_CAPACITY`]).
        rounds: Vec<RoundRecord>,
        /// Rounds ever recorded, including those the ring evicted.
        total_rounds: u64,
    },
    /// Answer to [`RequestBody::QueryDurability`].
    Durability {
        /// The durability status (mode, log position, checkpoints,
        /// recoveries).
        status: crate::wal::DurabilityStatus,
    },
    /// Answer to [`RequestBody::QueryQuarantine`].
    Quarantine {
        /// The quarantined jobs, oldest first.
        entries: Vec<QuarantineEntry>,
    },
    /// Answer to [`RequestBody::Drain`].
    Drained {
        /// The drain report.
        report: DrainReport,
    },
    /// Answer to [`RequestBody::Shutdown`]; the server stops afterwards.
    Stopping,
    /// The request could not be understood or served.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// One poisoned job: it failed until its retry budget was exhausted (or an
/// ancestor did, abandoning it by cascade) and was pulled out of the
/// scheduler instead of being retried forever.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// Tenant the job belonged to.
    pub tenant: String,
    /// The job's global id.
    pub job: u64,
    /// Failed attempts when the job was given up on (0 for cascade-abandoned
    /// descendants that never ran).
    pub attempts: u32,
    /// Stable label of the final failure cause (`fault`, `straggler`,
    /// `outage[i]`, `cascade`).
    pub cause: String,
    /// Virtual time of the final failure.
    pub time: f64,
}

/// Everything a drained server knows about the work it executed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainReport {
    /// Virtual time at which the last job completed.
    pub virtual_makespan: f64,
    /// Jobs admitted since the server started.
    pub submitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Whether the realized schedule passed capacity/precedence validation
    /// (durations relaxed, as for every realized trace).
    pub feasible: bool,
    /// The metrics snapshot at drain time.
    pub metrics: MetricsSnapshot,
    /// The full realized trace (typed event log + realized schedule).
    pub trace: RealizedTrace,
}

/// Serialises one protocol message as a newline-terminated compact JSON line.
pub fn encode_line<T: Serialize>(msg: &T) -> String {
    let mut line = serde_json::to_string(msg).expect("protocol messages are always serialisable");
    line.push('\n');
    line
}

/// Writes one protocol message and flushes.
pub fn write_message<T: Serialize, W: Write>(writer: &mut W, msg: &T) -> std::io::Result<()> {
    writer.write_all(encode_line(msg).as_bytes())?;
    writer.flush()
}

/// Reads one line of at most `max_len` bytes. Returns `Ok(None)` on a clean
/// EOF, and an `InvalidData` error when the line exceeds the cap (the caller
/// should drop the connection — there is no way to resynchronise).
pub fn read_frame<R: BufRead>(reader: &mut R, max_len: usize) -> std::io::Result<Option<String>> {
    let mut buf = Vec::new();
    let mut limited = reader.take(max_len as u64 + 1);
    let n = limited.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    } else if n > max_len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("line exceeds the {max_len}-byte limit"),
        ));
    }
    String::from_utf8(buf).map(Some).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "line is not valid UTF-8")
    })
}

/// Parses a request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    serde_json::from_str(line.trim()).map_err(|e| format!("malformed request: {e}"))
}

/// Best-effort extraction of the `id` of an unparsable request, so the error
/// response can still be correlated.
pub fn probe_request_id(line: &str) -> u64 {
    #[derive(Deserialize)]
    struct IdProbe {
        id: u64,
    }
    serde_json::from_str::<IdProbe>(line.trim())
        .map(|p| p.id)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrls_model::ExecTimeSpec;
    use std::io::BufReader;

    fn job() -> MoldableJob {
        MoldableJob::new(0, ExecTimeSpec::Constant { time: 2.0 })
    }

    #[test]
    fn requests_roundtrip_through_json_lines() {
        let requests = vec![
            Request {
                id: 1,
                tenant: "alice".into(),
                token: None,
                body: RequestBody::SubmitJob {
                    job: job(),
                    deps: vec![0, 3],
                },
            },
            Request {
                id: 2,
                tenant: "bob".into(),
                token: Some("bob-7-0".into()),
                body: RequestBody::SubmitDag {
                    jobs: vec![job(), job()],
                    edges: vec![(0, 1)],
                },
            },
            Request {
                id: 3,
                tenant: "ops".into(),
                token: None,
                body: RequestBody::CapacityChange {
                    resource: 1,
                    capacity: 4,
                },
            },
            Request {
                id: 4,
                tenant: "ops".into(),
                token: None,
                body: RequestBody::QueryStatus,
            },
            Request {
                id: 7,
                tenant: "ops".into(),
                token: None,
                body: RequestBody::QueryMetrics,
            },
            Request {
                id: 8,
                tenant: "ops".into(),
                token: None,
                body: RequestBody::QueryFlightRecorder,
            },
            Request {
                id: 9,
                tenant: "ops".into(),
                token: None,
                body: RequestBody::QueryDurability,
            },
            Request {
                id: 10,
                tenant: "ops".into(),
                token: None,
                body: RequestBody::QueryQuarantine,
            },
            Request {
                id: 5,
                tenant: "ops".into(),
                token: None,
                body: RequestBody::Drain,
            },
            Request {
                id: 6,
                tenant: "ops".into(),
                token: None,
                body: RequestBody::Shutdown,
            },
        ];
        for req in requests {
            let line = encode_line(&req);
            assert!(line.ends_with('\n') && !line[..line.len() - 1].contains('\n'));
            let back = parse_request(&line).unwrap();
            assert_eq!(req, back);
        }
    }

    #[test]
    fn token_field_is_optional_on_the_wire() {
        // Pre-token requests (no `token` key) still parse.
        let legacy = r#"{"id":3,"tenant":"t","body":"QueryStatus"}"#;
        let req = parse_request(legacy).unwrap();
        assert_eq!(req.token, None);
        // A token-free request serialises without the key at all.
        let line = encode_line(&req);
        assert!(!line.contains("token"));
        // A tokened request keeps its token through a roundtrip.
        let tokened = Request {
            id: 4,
            tenant: "t".into(),
            token: Some("t-1-9".into()),
            body: RequestBody::QueryStatus,
        };
        let back = parse_request(&encode_line(&tokened)).unwrap();
        assert_eq!(back, tokened);
    }

    #[test]
    fn quarantine_responses_roundtrip() {
        let response = Response {
            id: 11,
            body: ResponseBody::Quarantine {
                entries: vec![QuarantineEntry {
                    tenant: "alice".into(),
                    job: 5,
                    attempts: 3,
                    cause: "fault".into(),
                    time: 12.5,
                }],
            },
        };
        let line = encode_line(&response);
        let back: Response = serde_json::from_str(line.trim()).unwrap();
        assert_eq!(response, back);
    }

    #[test]
    fn flight_recorder_responses_roundtrip() {
        let mut record = RoundRecord::new(3, false);
        record.admitted_jobs = 2;
        record.virtual_time = 3.0;
        record.wall_us = 1234;
        let response = Response {
            id: 8,
            body: ResponseBody::FlightRecorder {
                rounds: vec![record],
                total_rounds: 7,
            },
        };
        let line = encode_line(&response);
        let back: Response = serde_json::from_str(line.trim()).unwrap();
        assert_eq!(response, back);
    }

    #[test]
    fn read_frame_handles_eof_and_oversize() {
        let mut reader = BufReader::new("one\ntwo".as_bytes());
        assert_eq!(read_frame(&mut reader, 64).unwrap(), Some("one".into()));
        // Final frame without trailing newline is still delivered.
        assert_eq!(read_frame(&mut reader, 64).unwrap(), Some("two".into()));
        assert_eq!(read_frame(&mut reader, 64).unwrap(), None);

        let long = "x".repeat(100);
        let mut reader = BufReader::new(long.as_bytes());
        let err = read_frame(&mut reader, 64).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn unparsable_requests_still_yield_an_id() {
        assert_eq!(probe_request_id(r#"{"id": 7, "nope": true}"#), 7);
        assert_eq!(probe_request_id("not json at all"), 0);
        assert!(parse_request(r#"{"id":7,"tenant":"t","body":"Flarb"}"#).is_err());
    }
}
