//! The ingest/batching layer: admitted work waits here until the batching
//! window closes, then the whole batch becomes one scheduling round.
//!
//! Coalescing submissions amortises the two-phase planning cost: with a zero
//! window every submission is its own round (lowest time-to-first-placement,
//! most plannings); a longer window trades placement latency for fewer,
//! larger rounds. The queue also enforces the admission limit — when more
//! jobs are waiting than `max_pending_jobs`, further submissions are refused
//! with a backpressure reply instead of growing the queue without bound.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One flushed batch: job releases and capacity changes, each in admission
/// order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Batch {
    /// Global ids of the jobs released in this round.
    pub jobs: Vec<usize>,
    /// `(resource, new_capacity)` changes applied in this round.
    pub capacity_changes: Vec<(usize, u64)>,
}

impl Batch {
    /// `true` iff the batch carries no events.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty() && self.capacity_changes.is_empty()
    }
}

/// The arrival queue: admitted-but-not-yet-scheduled work, plus the batching
/// window bookkeeping.
#[derive(Debug, Clone)]
pub struct IngestQueue {
    window: Duration,
    max_pending_jobs: usize,
    pending: Batch,
    window_started: Option<Instant>,
}

impl IngestQueue {
    /// Creates a queue with the given batching window and admission limit.
    pub fn new(window: Duration, max_pending_jobs: usize) -> Self {
        IngestQueue {
            window,
            max_pending_jobs: max_pending_jobs.max(1),
            pending: Batch::default(),
            window_started: None,
        }
    }

    /// Number of queued events (jobs + capacity changes).
    pub fn queue_depth(&self) -> usize {
        self.pending.jobs.len() + self.pending.capacity_changes.len()
    }

    /// `true` iff nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Checks the admission limit for a submission of `count` jobs without
    /// enqueueing anything.
    pub fn admit(&self, count: usize) -> Result<(), String> {
        let pending = self.pending.jobs.len();
        if pending + count > self.max_pending_jobs {
            Err(format!(
                "backpressure: {pending} jobs already queued, submitting {count} more would \
                 exceed the limit of {} — retry after the next round",
                self.max_pending_jobs
            ))
        } else {
            Ok(())
        }
    }

    /// Enqueues admitted jobs, opening the batching window if it was closed.
    pub fn push_jobs(&mut self, ids: &[usize]) {
        self.pending.jobs.extend_from_slice(ids);
        self.window_started.get_or_insert_with(Instant::now);
    }

    /// Enqueues a capacity change, opening the batching window if it was
    /// closed.
    pub fn push_capacity(&mut self, resource: usize, capacity: u64) {
        self.pending.capacity_changes.push((resource, capacity));
        self.window_started.get_or_insert_with(Instant::now);
    }

    /// When the current batch must be flushed, if one is open.
    pub fn deadline(&self) -> Option<Instant> {
        self.window_started.map(|t| t + self.window)
    }

    /// Takes the batch and closes the window.
    pub fn take_batch(&mut self) -> Batch {
        self.window_started = None;
        std::mem::take(&mut self.pending)
    }
}

/// The idempotency dedup window: the last `window` *accepted* submit tokens,
/// each mapped to the global job ids the original submission was assigned.
///
/// A retried `SubmitJob`/`SubmitDag` carrying a token already present here is
/// answered with the original ids without being journaled or admitted again —
/// the server-side half of the resilient client's exactly-once-admission
/// guarantee. Only *accepted* outcomes are cached: a rejected submission
/// (backpressure, overload, validation) must stay retryable under the same
/// token. Insertion order is the eviction order, and the whole structure is
/// serialisable so checkpoints restore it byte-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DedupWindow {
    window: usize,
    entries: Vec<(String, Vec<u64>)>,
}

impl DedupWindow {
    /// An empty window retaining at most `window` tokens (0 disables dedup).
    pub fn new(window: usize) -> Self {
        DedupWindow {
            window,
            entries: Vec::new(),
        }
    }

    /// The job ids the token's original submission was assigned, if the
    /// token is still inside the window.
    pub fn lookup(&self, token: &str) -> Option<&[u64]> {
        self.entries
            .iter()
            .find(|(t, _)| t == token)
            .map(|(_, ids)| ids.as_slice())
    }

    /// Caches an accepted submission's ids under its token, evicting the
    /// oldest entries beyond the window. A no-op when dedup is disabled.
    pub fn insert(&mut self, token: &str, ids: Vec<u64>) {
        if self.window == 0 {
            return;
        }
        self.entries.push((token.to_string(), ids));
        while self.entries.len() > self.window {
            self.entries.remove(0);
        }
    }

    /// Tokens currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no token is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_window_replays_accepted_ids_and_evicts_oldest() {
        let mut w = DedupWindow::new(2);
        assert!(w.is_empty());
        assert_eq!(w.lookup("a"), None);
        w.insert("a", vec![0]);
        w.insert("b", vec![1, 2]);
        assert_eq!(w.lookup("a"), Some(&[0][..]));
        assert_eq!(w.lookup("b"), Some(&[1, 2][..]));
        w.insert("c", vec![3]);
        assert_eq!(w.lookup("a"), None, "oldest token evicted");
        assert_eq!(w.lookup("c"), Some(&[3][..]));
        assert_eq!(w.len(), 2);
        // Serialises and restores byte-identically.
        let json = serde_json::to_string(&w).unwrap();
        let back: DedupWindow = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);

        let mut off = DedupWindow::new(0);
        off.insert("a", vec![0]);
        assert!(off.is_empty(), "a zero window disables dedup");
    }

    #[test]
    fn batches_accumulate_until_taken() {
        let mut q = IngestQueue::new(Duration::from_millis(10), 4);
        assert!(q.is_empty());
        assert!(q.deadline().is_none());
        q.push_jobs(&[0, 1]);
        q.push_capacity(0, 3);
        q.push_jobs(&[2]);
        assert_eq!(q.queue_depth(), 4);
        assert!(q.deadline().is_some());
        let batch = q.take_batch();
        assert_eq!(batch.jobs, vec![0, 1, 2]);
        assert_eq!(batch.capacity_changes, vec![(0, 3)]);
        assert!(q.is_empty());
        assert!(q.deadline().is_none());
    }

    #[test]
    fn admission_limit_applies_backpressure() {
        let mut q = IngestQueue::new(Duration::ZERO, 3);
        assert!(q.admit(3).is_ok());
        q.push_jobs(&[0, 1]);
        assert!(q.admit(1).is_ok());
        let err = q.admit(2).unwrap_err();
        assert!(err.contains("backpressure"), "{err}");
        // Capacity changes are not jobs and never count against the limit.
        q.push_capacity(0, 2);
        assert!(q.admit(1).is_ok());
        q.take_batch();
        assert!(q.admit(3).is_ok());
    }
}
