//! The ingest/batching layer: admitted work waits here until the batching
//! window closes, then the whole batch becomes one scheduling round.
//!
//! Coalescing submissions amortises the two-phase planning cost: with a zero
//! window every submission is its own round (lowest time-to-first-placement,
//! most plannings); a longer window trades placement latency for fewer,
//! larger rounds. The queue also enforces the admission limit — when more
//! jobs are waiting than `max_pending_jobs`, further submissions are refused
//! with a backpressure reply instead of growing the queue without bound.

use std::time::{Duration, Instant};

/// One flushed batch: job releases and capacity changes, each in admission
/// order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Batch {
    /// Global ids of the jobs released in this round.
    pub jobs: Vec<usize>,
    /// `(resource, new_capacity)` changes applied in this round.
    pub capacity_changes: Vec<(usize, u64)>,
}

impl Batch {
    /// `true` iff the batch carries no events.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty() && self.capacity_changes.is_empty()
    }
}

/// The arrival queue: admitted-but-not-yet-scheduled work, plus the batching
/// window bookkeeping.
#[derive(Debug, Clone)]
pub struct IngestQueue {
    window: Duration,
    max_pending_jobs: usize,
    pending: Batch,
    window_started: Option<Instant>,
}

impl IngestQueue {
    /// Creates a queue with the given batching window and admission limit.
    pub fn new(window: Duration, max_pending_jobs: usize) -> Self {
        IngestQueue {
            window,
            max_pending_jobs: max_pending_jobs.max(1),
            pending: Batch::default(),
            window_started: None,
        }
    }

    /// Number of queued events (jobs + capacity changes).
    pub fn queue_depth(&self) -> usize {
        self.pending.jobs.len() + self.pending.capacity_changes.len()
    }

    /// `true` iff nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Checks the admission limit for a submission of `count` jobs without
    /// enqueueing anything.
    pub fn admit(&self, count: usize) -> Result<(), String> {
        let pending = self.pending.jobs.len();
        if pending + count > self.max_pending_jobs {
            Err(format!(
                "backpressure: {pending} jobs already queued, submitting {count} more would \
                 exceed the limit of {} — retry after the next round",
                self.max_pending_jobs
            ))
        } else {
            Ok(())
        }
    }

    /// Enqueues admitted jobs, opening the batching window if it was closed.
    pub fn push_jobs(&mut self, ids: &[usize]) {
        self.pending.jobs.extend_from_slice(ids);
        self.window_started.get_or_insert_with(Instant::now);
    }

    /// Enqueues a capacity change, opening the batching window if it was
    /// closed.
    pub fn push_capacity(&mut self, resource: usize, capacity: u64) {
        self.pending.capacity_changes.push((resource, capacity));
        self.window_started.get_or_insert_with(Instant::now);
    }

    /// When the current batch must be flushed, if one is open.
    pub fn deadline(&self) -> Option<Instant> {
        self.window_started.map(|t| t + self.window)
    }

    /// Takes the batch and closes the window.
    pub fn take_batch(&mut self) -> Batch {
        self.window_started = None;
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_accumulate_until_taken() {
        let mut q = IngestQueue::new(Duration::from_millis(10), 4);
        assert!(q.is_empty());
        assert!(q.deadline().is_none());
        q.push_jobs(&[0, 1]);
        q.push_capacity(0, 3);
        q.push_jobs(&[2]);
        assert_eq!(q.queue_depth(), 4);
        assert!(q.deadline().is_some());
        let batch = q.take_batch();
        assert_eq!(batch.jobs, vec![0, 1, 2]);
        assert_eq!(batch.capacity_changes, vec![(0, 3)]);
        assert!(q.is_empty());
        assert!(q.deadline().is_none());
    }

    #[test]
    fn admission_limit_applies_backpressure() {
        let mut q = IngestQueue::new(Duration::ZERO, 3);
        assert!(q.admit(3).is_ok());
        q.push_jobs(&[0, 1]);
        assert!(q.admit(1).is_ok());
        let err = q.admit(2).unwrap_err();
        assert!(err.contains("backpressure"), "{err}");
        // Capacity changes are not jobs and never count against the limit.
        q.push_capacity(0, 2);
        assert!(q.admit(1).is_ok());
        q.take_batch();
        assert!(q.admit(3).is_ok());
    }
}
