//! Per-tenant counters, the queryable metrics snapshot, and the
//! harvested-event ledger.
//!
//! The registry is fed from the service core (admissions as they happen,
//! engine trace events as each round is harvested) and is deliberately free
//! of wall-clock readings: two runs that see the same submission order
//! produce byte-identical snapshots, which the loopback determinism test
//! relies on.
//!
//! The [`EventLedger`] is the metrics layer's archive of engine history:
//! after every round the service harvests the engine's processed events out
//! of the retained trace and absorbs them here, so the engine (and any
//! checkpoint of it) carries only live state while drain reports can still
//! assemble the complete, byte-identical event log.

use mrls_sim::TraceEvent;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The ingest queue was full (the client should retry later).
    Backpressure,
    /// The submission itself was malformed (retrying it verbatim cannot
    /// succeed).
    Validation,
    /// The scheduler's in-flight backlog crossed the configured high-water
    /// mark; load was shed before the job entered the ingest queue.
    Overload,
}

/// Counters for one tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantMetrics {
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs refused (backpressure or validation).
    pub rejected: u64,
    /// Jobs refused because the ingest queue was full.
    pub rejected_backpressure: u64,
    /// Jobs refused because the submission was invalid.
    pub rejected_validation: u64,
    /// Jobs refused because the in-flight backlog crossed the overload
    /// high-water mark.
    pub rejected_overload: u64,
    /// Jobs placed on the machine (started). With failure injection a job
    /// counts once per started attempt.
    pub scheduled: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Retries granted: failed attempts that re-entered the ready set after
    /// their backoff instead of being given up on.
    pub retried: u64,
    /// Jobs quarantined: retry budget exhausted, or cascade-abandoned behind
    /// a poisoned ancestor.
    pub quarantined: u64,
    /// High-water mark of this tenant's queued-but-unflushed submissions.
    pub queue_depth_hwm: u64,
    /// Latest planned finish time among this tenant's jobs (virtual time).
    pub planned_finish: f64,
    /// Latest realized finish time among this tenant's jobs (virtual time).
    pub realized_finish: f64,
    /// Realized over planned finish — how much later than promised the
    /// tenant's work completed (1.0 until something completes).
    pub stretch: f64,
}

impl Default for TenantMetrics {
    fn default() -> Self {
        TenantMetrics {
            submitted: 0,
            rejected: 0,
            rejected_backpressure: 0,
            rejected_validation: 0,
            rejected_overload: 0,
            scheduled: 0,
            completed: 0,
            retried: 0,
            quarantined: 0,
            queue_depth_hwm: 0,
            planned_finish: 0.0,
            realized_finish: 0.0,
            stretch: 1.0,
        }
    }
}

/// The queryable state of the service, dumped as JSON over the protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Current virtual time of the engine.
    pub virtual_now: f64,
    /// Batching rounds executed so far.
    pub rounds: u64,
    /// Submissions admitted but not yet flushed into a round.
    pub queue_depth: usize,
    /// Jobs admitted, across tenants.
    pub jobs_submitted: u64,
    /// Jobs refused, across tenants.
    pub jobs_rejected: u64,
    /// Jobs placed, across tenants.
    pub jobs_scheduled: u64,
    /// Jobs completed, across tenants.
    pub jobs_completed: u64,
    /// Per-phase latency attribution of the rounds since the last status
    /// query (empty unless the service was configured with timing on — the
    /// wall-clock readings would break snapshot determinism otherwise).
    pub timings: Vec<mrls_core::timing::PhaseTiming>,
    /// Per-tenant counters, keyed by tenant name (sorted).
    pub tenants: BTreeMap<String, TenantMetrics>,
}

/// The mutable registry the service core feeds. Serialisable so the
/// durability layer can checkpoint it verbatim — a recovered registry must
/// resume byte-identical to the uninterrupted one, including the live
/// queue-depth mirrors.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    tenants: BTreeMap<String, TenantMetrics>,
    queued_now: BTreeMap<String, u64>,
    rounds: u64,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn tenant(&mut self, name: &str) -> &mut TenantMetrics {
        self.tenants.entry(name.to_string()).or_default()
    }

    /// Records `count` admitted jobs for `tenant`.
    pub fn record_submitted(&mut self, tenant: &str, count: u64) {
        self.tenant(tenant).submitted += count;
    }

    /// Records one refused submission of `count` jobs for `tenant`.
    pub fn record_rejected(&mut self, tenant: &str, count: u64, reason: RejectReason) {
        let t = self.tenant(tenant);
        t.rejected += count;
        match reason {
            RejectReason::Backpressure => t.rejected_backpressure += count,
            RejectReason::Validation => t.rejected_validation += count,
            RejectReason::Overload => t.rejected_overload += count,
        }
    }

    /// Records `count` freshly queued (admitted but unflushed) jobs for
    /// `tenant` and pushes the per-tenant queue-depth high-water mark.
    pub fn record_queued(&mut self, tenant: &str, count: u64) {
        let depth = self.queued_now.entry(tenant.to_string()).or_insert(0);
        *depth += count;
        let depth = *depth;
        let t = self.tenant(tenant);
        t.queue_depth_hwm = t.queue_depth_hwm.max(depth);
    }

    /// Records that the ingest queue was flushed into a round (every
    /// tenant's live queue depth drops back to zero).
    pub fn record_batch_taken(&mut self) {
        self.queued_now.clear();
    }

    /// Records the planned finish time of a freshly planned job of `tenant`.
    pub fn record_planned(&mut self, tenant: &str, finish: f64) {
        let t = self.tenant(tenant);
        t.planned_finish = t.planned_finish.max(finish);
    }

    /// Records a job start for `tenant`.
    pub fn record_scheduled(&mut self, tenant: &str) {
        self.tenant(tenant).scheduled += 1;
    }

    /// Records a job completion of `tenant` at virtual time `finish`.
    pub fn record_completed(&mut self, tenant: &str, finish: f64) {
        let t = self.tenant(tenant);
        t.completed += 1;
        t.realized_finish = t.realized_finish.max(finish);
        if t.planned_finish > 0.0 {
            t.stretch = t.realized_finish / t.planned_finish;
        }
    }

    /// Records a retry grant for `tenant`: a failed attempt that re-entered
    /// the ready set after its backoff.
    pub fn record_retried(&mut self, tenant: &str) {
        self.tenant(tenant).retried += 1;
    }

    /// Records a quarantined (poisoned) job of `tenant`.
    pub fn record_quarantined(&mut self, tenant: &str) {
        self.tenant(tenant).quarantined += 1;
    }

    /// Records one executed batching round.
    pub fn record_round(&mut self) {
        self.rounds += 1;
    }

    /// Builds the queryable snapshot.
    pub fn snapshot(&self, virtual_now: f64, queue_depth: usize) -> MetricsSnapshot {
        let sum = |f: fn(&TenantMetrics) -> u64| self.tenants.values().map(f).sum();
        MetricsSnapshot {
            virtual_now,
            rounds: self.rounds,
            queue_depth,
            jobs_submitted: sum(|t| t.submitted),
            jobs_rejected: sum(|t| t.rejected),
            jobs_scheduled: sum(|t| t.scheduled),
            jobs_completed: sum(|t| t.completed),
            timings: Vec::new(),
            tenants: self.tenants.clone(),
        }
    }
}

/// Archive of events harvested out of the engine's retained trace: the
/// immutable prefix of the run's history, plus the virtual-time watermark up
/// to which it is complete. Appending is the only mutation — harvested
/// events are frozen history.
#[derive(Debug, Clone, Default)]
pub struct EventLedger {
    archived: Vec<TraceEvent>,
    watermark: f64,
}

impl EventLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        EventLedger::default()
    }

    /// Rebuilds a ledger from checkpointed state (the durability layer's
    /// recovery path).
    pub fn restore(archived: Vec<TraceEvent>, watermark: f64) -> Self {
        EventLedger {
            archived,
            watermark,
        }
    }

    /// Absorbs one round's harvested events and advances the watermark
    /// (watermarks never move backwards; an empty harvest still records
    /// that history is complete up to `watermark`).
    pub fn absorb(&mut self, events: Vec<TraceEvent>, watermark: f64) {
        self.archived.extend(events);
        self.watermark = self.watermark.max(watermark);
    }

    /// The archived events, in engine processing order.
    pub fn archived(&self) -> &[TraceEvent] {
        &self.archived
    }

    /// Virtual time up to which the archive is complete.
    pub fn watermark(&self) -> f64 {
        self.watermark
    }

    /// Number of archived events.
    pub fn len(&self) -> usize {
        self.archived.len()
    }

    /// `true` iff nothing was archived yet.
    pub fn is_empty(&self) -> bool {
        self.archived.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_archives_in_order_and_watermark_is_monotone() {
        let mut ledger = EventLedger::new();
        assert!(ledger.is_empty());
        ledger.absorb(vec![TraceEvent::JobReleased { time: 1.0, job: 0 }], 1.0);
        ledger.absorb(vec![], 3.0);
        ledger.absorb(
            vec![TraceEvent::JobCompleted {
                time: 2.0,
                job: 0,
                nominal: 1.0,
                realized: 1.0,
            }],
            2.0,
        );
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.watermark(), 3.0, "watermarks never regress");
        assert!(matches!(
            ledger.archived()[0],
            TraceEvent::JobReleased { job: 0, .. }
        ));
    }

    #[test]
    fn counters_aggregate_across_tenants() {
        let mut reg = MetricsRegistry::new();
        reg.record_submitted("a", 3);
        reg.record_queued("a", 3);
        reg.record_submitted("b", 2);
        reg.record_queued("b", 2);
        reg.record_rejected("b", 1, RejectReason::Validation);
        reg.record_rejected("b", 2, RejectReason::Backpressure);
        reg.record_rejected("b", 1, RejectReason::Overload);
        reg.record_planned("a", 10.0);
        reg.record_scheduled("a");
        reg.record_completed("a", 12.0);
        reg.record_retried("a");
        reg.record_quarantined("b");
        reg.record_round();
        reg.record_batch_taken();
        reg.record_queued("a", 1);
        let snap = reg.snapshot(12.0, 4);
        assert_eq!(snap.jobs_submitted, 5);
        assert_eq!(snap.jobs_rejected, 4);
        let b = &snap.tenants["b"];
        assert_eq!(b.rejected_backpressure, 2);
        assert_eq!(b.rejected_validation, 1);
        assert_eq!(b.rejected_overload, 1);
        assert_eq!(b.quarantined, 1);
        assert_eq!(b.queue_depth_hwm, 2);
        assert_eq!(
            snap.tenants["a"].queue_depth_hwm, 3,
            "high-water mark survives the flush; the post-flush depth of 1 does not beat it"
        );
        assert_eq!(snap.jobs_scheduled, 1);
        assert_eq!(snap.jobs_completed, 1);
        assert_eq!(snap.tenants["a"].retried, 1);
        assert_eq!(snap.rounds, 1);
        assert_eq!(snap.queue_depth, 4);
        let a = &snap.tenants["a"];
        assert!((a.stretch - 1.2).abs() < 1e-12);
        // Snapshots serialise deterministically (sorted tenant order).
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}
