//! # mrls-serve — the online scheduling service
//!
//! The paper plans moldable DAG schedules offline; `mrls-sim` executes plans
//! under perturbations; this crate turns the pair into a **long-running,
//! multi-client service**: jobs and DAGs stream in over TCP, are coalesced
//! into batching rounds, planned with the two-phase scheduler and executed
//! by the virtual-time engine — std-only (no async runtime), built from
//! `std::net::TcpListener`, `std::thread` and `std::sync::mpsc`.
//!
//! Five layers:
//!
//! * [`protocol`] — line-delimited JSON requests/responses with correlation
//!   ids ([`Request`], [`Response`], [`DrainReport`]).
//! * [`ingest`] — the arrival queue: admissions coalesce within a batching
//!   window into one scheduling round, with an admission limit answered by
//!   backpressure replies ([`IngestQueue`]).
//! * [`service`] — the core: owns the growing world and **one persistent**
//!   `mrls-sim` [`PersistentRun`](mrls_sim::PersistentRun) carried across
//!   rounds; pending jobs are re-planned each round and the planner output
//!   is diffed against the in-flight plan, while processed engine events are
//!   harvested into the ledger so per-round cost stays flat in the round
//!   index ([`ServiceCore`]). The original checkpoint→clone→resume path is
//!   preserved as [`naive::NaiveService`], the reference the differential
//!   tests compare against.
//! * [`metrics`] — per-tenant counters queryable over the protocol and
//!   dumpable as JSON ([`MetricsSnapshot`]), plus the harvested-event
//!   archive ([`EventLedger`]).
//! * [`wal`] — the durability subsystem: a checksummed append-only
//!   write-ahead log of every admitted input plus rotating checkpoints, so
//!   [`ServiceCore::recover`] rebuilds a crashed server byte-identical to
//!   one that never crashed (torn or corrupt log tails are truncated to the
//!   last valid record, never propagated).
//!
//! Virtual time is decoupled from wall time: each round's events are stamped
//! deterministically from the submission order alone, so two servers fed the
//! same stream in the same order produce **byte-identical** metrics and
//! traces — the loopback tests verify this end to end.
//!
//! ## Quick start
//!
//! ```
//! use mrls_model::{ExecTimeSpec, MoldableJob};
//! use mrls_serve::{ServeConfig, ServiceCore};
//!
//! let mut core = ServiceCore::new(ServeConfig {
//!     capacities: vec![4, 4],
//!     ..ServeConfig::default()
//! });
//! let job = MoldableJob::new(0, ExecTimeSpec::Constant { time: 2.0 });
//! let id = core.submit_job("alice", job, &[]).unwrap();
//! let report = core.drain().unwrap();
//! assert_eq!(report.completed, 1);
//! assert!(report.feasible);
//! # let _ = id;
//! ```
//!
//! The TCP front end ([`Server::spawn`]) wraps the same core; `mrls serve` /
//! `mrls client` expose it on the command line.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod flight;
pub mod ingest;
pub mod metrics;
pub mod naive;
pub mod protocol;
pub mod service;
pub mod wal;

pub use client::{Client, ClientError, RetryConfig};
pub use flight::{FlightRecorder, RoundDigest, RoundRecord, FLIGHT_RECORDER_CAPACITY};
pub use ingest::{Batch, DedupWindow, IngestQueue};
pub use metrics::{EventLedger, MetricsRegistry, MetricsSnapshot, RejectReason, TenantMetrics};
pub use naive::NaiveService;
pub use protocol::{
    encode_line, parse_request, probe_request_id, read_frame, write_message, DrainReport,
    QuarantineEntry, Request, RequestBody, Response, ResponseBody, DEFAULT_MAX_LINE_BYTES,
};
pub use service::{RoundStateStats, ServeConfig, ServiceCore};
pub use wal::{
    DurabilityMode, DurabilityStatus, RecoverError, RecoveryReport, WalOp, WalRecord, WalWriter,
};

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One parsed request in flight from a connection thread to the service
/// thread, with the channel its response goes back on.
struct ClientMsg {
    request: Request,
    reply: Sender<Response>,
}

/// The TCP front end: an acceptor thread, one thread per connection, and a
/// single service thread that owns the [`ServiceCore`].
pub struct Server;

/// Handle to a spawned server: its bound address and the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    service: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server listens on (useful with an ephemeral port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits until the server stopped (a client sent `Shutdown`).
    pub fn join(mut self) {
        if let Some(h) = self.service.take() {
            let _ = h.join();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and spawns
    /// the acceptor and service threads. The server runs until a client
    /// sends [`RequestBody::Shutdown`].
    pub fn spawn(config: ServeConfig, addr: &str) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (tx, rx) = std::sync::mpsc::channel::<ClientMsg>();
        let stopping = Arc::new(AtomicBool::new(false));
        let max_line = config.max_line_bytes;

        let acceptor = {
            let stopping = Arc::clone(&stopping);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let tx = tx.clone();
                    std::thread::spawn(move || connection_loop(stream, tx, max_line));
                }
            })
        };
        let service = {
            let stopping = Arc::clone(&stopping);
            std::thread::spawn(move || service_loop(config, rx, stopping, local))
        };
        Ok(ServerHandle {
            addr: local,
            acceptor: Some(acceptor),
            service: Some(service),
        })
    }
}

/// Reads frames off one connection, forwards parsed requests to the service
/// thread and writes the responses back. Parse failures are answered
/// in-place; an oversized line is answered and the connection dropped.
fn connection_loop(stream: TcpStream, tx: Sender<ClientMsg>, max_line: usize) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let line = match read_frame(&mut reader, max_line) {
            Ok(None) => break,
            Ok(Some(line)) => line,
            Err(e) => {
                let _ = write_message(
                    &mut writer,
                    &Response {
                        id: 0,
                        body: ResponseBody::Error {
                            message: e.to_string(),
                        },
                    },
                );
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse_request(&line) {
            Ok(request) => request,
            Err(message) => {
                let ok = write_message(
                    &mut writer,
                    &Response {
                        id: probe_request_id(&line),
                        body: ResponseBody::Error { message },
                    },
                )
                .is_ok();
                if ok {
                    continue;
                }
                break;
            }
        };
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        if tx
            .send(ClientMsg {
                request,
                reply: reply_tx,
            })
            .is_err()
        {
            let _ = write_message(
                &mut writer,
                &Response {
                    id: 0,
                    body: ResponseBody::Error {
                        message: "server is shutting down".to_string(),
                    },
                },
            );
            break;
        }
        let Ok(response) = reply_rx.recv() else { break };
        let is_stopping = matches!(response.body, ResponseBody::Stopping);
        if write_message(&mut writer, &response).is_err() || is_stopping {
            break;
        }
    }
}

/// The single-threaded service loop: admits requests immediately, flushes
/// the ingest queue whenever the batching window closes, and stops on
/// `Shutdown`.
fn service_loop(
    config: ServeConfig,
    rx: Receiver<ClientMsg>,
    stopping: Arc<AtomicBool>,
    addr: SocketAddr,
) {
    let mut core = match ServiceCore::open(config) {
        Ok((core, report)) => {
            if let Some(r) = report {
                eprintln!(
                    "mrls-serve: recovered: {} records replayed ({} rounds) from \
                     checkpoint seq {}, {} torn bytes truncated",
                    r.replayed_records, r.replayed_rounds, r.checkpoint_seq, r.truncated_bytes
                );
            }
            core
        }
        Err(e) => {
            eprintln!("mrls-serve: recovery failed, refusing to serve: {e}");
            stopping.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(addr);
            return;
        }
    };
    loop {
        // Flush before waiting for more work, so a zero window makes every
        // submission its own round regardless of how fast clients pipeline.
        if let Some(deadline) = core.deadline() {
            let now = Instant::now();
            if now >= deadline {
                if let Err(e) = core.flush() {
                    eprintln!("mrls-serve: round failed: {e}");
                }
                continue;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(msg) => {
                    if handle(&mut core, msg) == Flow::Stop {
                        break;
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match rx.recv() {
                Ok(msg) => {
                    if handle(&mut core, msg) == Flow::Stop {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }
    stopping.store(true, Ordering::SeqCst);
    // Unblock the acceptor's blocking `accept` so it can observe the flag.
    let _ = TcpStream::connect(addr);
}

#[derive(PartialEq)]
enum Flow {
    Continue,
    Stop,
}

/// Serves one request against the core. The admission work of submit
/// requests is attributed to an `ingest` timing phase and the response send
/// to a `reply` phase: together with the round phases inside the core this
/// makes the `QueryStatus` phase totals account for (nearly) all of the
/// service thread's busy time, where previously only the in-round phases
/// were counted. Both run on the single service thread, so `status()` drains
/// every phase from one registry.
fn handle(core: &mut ServiceCore, msg: ClientMsg) -> Flow {
    let Request {
        id,
        tenant,
        token,
        body,
    } = msg.request;
    let token = token.as_deref();
    let (body, flow) = match body {
        RequestBody::SubmitJob { job, deps } => (
            match mrls_core::time_phase!(
                "ingest",
                core.submit_job_token(&tenant, job, &deps, token)
            ) {
                Ok(id) => ResponseBody::Accepted { jobs: vec![id] },
                Err(reason) => ResponseBody::Rejected { reason },
            },
            Flow::Continue,
        ),
        RequestBody::SubmitDag { jobs, edges } => (
            match mrls_core::time_phase!(
                "ingest",
                core.submit_dag_token(&tenant, jobs, &edges, token)
            ) {
                Ok(jobs) => ResponseBody::Accepted { jobs },
                Err(reason) => ResponseBody::Rejected { reason },
            },
            Flow::Continue,
        ),
        RequestBody::CapacityChange { resource, capacity } => (
            match mrls_core::time_phase!("ingest", core.submit_capacity(resource, capacity)) {
                Ok(()) => ResponseBody::Accepted { jobs: vec![] },
                Err(reason) => ResponseBody::Rejected { reason },
            },
            Flow::Continue,
        ),
        RequestBody::QueryStatus => (
            ResponseBody::Status {
                metrics: core.status(),
            },
            Flow::Continue,
        ),
        RequestBody::QueryMetrics => (
            ResponseBody::Metrics {
                obs: core.obs_snapshot(),
            },
            Flow::Continue,
        ),
        RequestBody::QueryFlightRecorder => (
            ResponseBody::FlightRecorder {
                rounds: core.flight_records(),
                total_rounds: core.flight_total_rounds(),
            },
            Flow::Continue,
        ),
        RequestBody::QueryDurability => (
            ResponseBody::Durability {
                status: core.durability_status(),
            },
            Flow::Continue,
        ),
        RequestBody::QueryQuarantine => (
            ResponseBody::Quarantine {
                entries: core.quarantine(),
            },
            Flow::Continue,
        ),
        RequestBody::Drain => (
            match core.drain() {
                Ok(report) => ResponseBody::Drained { report },
                Err(message) => ResponseBody::Error { message },
            },
            Flow::Continue,
        ),
        RequestBody::Shutdown => (ResponseBody::Stopping, Flow::Stop),
    };
    mrls_core::time_phase!("reply", {
        let _ = msg.reply.send(Response { id, body });
    });
    flow
}
