//! The service core: a growing world of submitted jobs executed by the
//! `mrls-sim` virtual-time engine, one batching round at a time.
//!
//! Each flushed batch becomes one **round**: the new jobs and capacity
//! changes are stamped with a single virtual time (`max(engine now, round ×
//! tick)` — deterministic in the submission order, never wall clock), pushed
//! into a channel-fed [`ChannelSource`], and the engine is resumed from the
//! previous round's [`SimSnapshot`] against the grown instance. Pending jobs
//! are (re-)planned with the paper's two-phase scheduler against the
//! machine's *current* capacities; the configured [`PolicyKind`] reacts to
//! events inside the round. [`ServiceCore::drain`] runs the engine to
//! completion and reports the realized trace, validated for
//! capacity/precedence feasibility.

use crate::ingest::{Batch, IngestQueue};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::protocol::{DrainReport, DEFAULT_MAX_LINE_BYTES};
use mrls_analysis::{validate_schedule_with, ValidationOptions};
use mrls_core::{MrlsConfig, MrlsScheduler, Schedule, ScheduledJob};
use mrls_dag::Dag;
use mrls_model::{Allocation, Instance, MoldableJob, SystemConfig};
use mrls_sim::{
    ChannelSource, PerturbationModel, Perturber, PolicyKind, RealizedTrace, SimRun, SimSnapshot,
    SourceEvent,
};
use std::time::{Duration, Instant};

/// Configuration of the scheduling service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Initial per-type capacities of the machine.
    pub capacities: Vec<u64>,
    /// Reaction policy driven inside each round.
    pub policy: PolicyKind,
    /// Batching window: how long admitted work may wait before its round
    /// starts (zero = every submission is its own round).
    pub batch_window: Duration,
    /// Virtual time that passes per batching round (spaces out the arrival
    /// stamps of successive rounds so rounds overlap with running work).
    pub tick: f64,
    /// Admission limit: maximum jobs queued for the next round before
    /// submissions are refused with a backpressure reply.
    pub max_pending_jobs: usize,
    /// Maximum byte length of one protocol line.
    pub max_line_bytes: usize,
    /// Seed of the perturbation stream.
    pub seed: u64,
    /// Stochastic execution-time model applied to job starts.
    pub perturbation: PerturbationModel,
    /// Configuration of the two-phase scheduler used to plan pending jobs.
    pub scheduler: MrlsConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            capacities: vec![16, 16, 16],
            policy: PolicyKind::FullReschedule,
            batch_window: Duration::from_millis(20),
            tick: 1.0,
            max_pending_jobs: 4096,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            seed: 0,
            perturbation: PerturbationModel::None,
            scheduler: MrlsConfig::default(),
        }
    }
}

/// One admitted job and the tenant it belongs to.
#[derive(Debug, Clone)]
struct WorldJob {
    tenant: String,
    job: MoldableJob,
}

/// The service core. Owns the world (every admitted job and edge), the
/// engine checkpoint between rounds, the ingest queue and the metrics
/// registry. Free of I/O — the TCP layer in [`crate::Server`] drives it, and
/// tests can call it directly.
#[derive(Debug)]
pub struct ServiceCore {
    config: ServeConfig,
    world: Vec<WorldJob>,
    edges: Vec<(usize, usize)>,
    capacities_now: Vec<u64>,
    capacities_max: Vec<u64>,
    snapshot: Option<SimSnapshot>,
    // The live perturbation stream, carried across rounds so resuming never
    // replays the draw history (it must always match
    // `snapshot.perturber_realizations`).
    perturber: Option<Perturber>,
    ingest: IngestQueue,
    metrics: MetricsRegistry,
    rounds: u64,
    virtual_now: f64,
    events_seen: usize,
    fault: Option<String>,
}

impl ServiceCore {
    /// Creates an idle service for the configured machine.
    pub fn new(config: ServeConfig) -> Self {
        let ingest = IngestQueue::new(config.batch_window, config.max_pending_jobs);
        let capacities = config.capacities.clone();
        ServiceCore {
            config,
            world: Vec::new(),
            edges: Vec::new(),
            capacities_now: capacities.clone(),
            capacities_max: capacities,
            snapshot: None,
            perturber: None,
            ingest,
            metrics: MetricsRegistry::new(),
            rounds: 0,
            virtual_now: 0.0,
            events_seen: 0,
            fault: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of resource types `d` of the machine.
    pub fn num_resource_types(&self) -> usize {
        self.config.capacities.len()
    }

    /// When the open batch must be flushed, if one is open.
    pub fn deadline(&self) -> Option<Instant> {
        self.ingest.deadline()
    }

    /// The error that poisoned the service, if any round failed.
    pub fn fault(&self) -> Option<&str> {
        self.fault.as_deref()
    }

    /// Admits one job with dependencies on previously accepted jobs.
    /// Returns the assigned global id.
    pub fn submit_job(
        &mut self,
        tenant: &str,
        job: MoldableJob,
        deps: &[u64],
    ) -> Result<u64, String> {
        self.check_fault()?;
        self.validate_spec(&job).inspect_err(|_| {
            self.metrics.record_rejected(tenant, 1);
        })?;
        let admit = self.ingest.admit(1).and_then(|()| {
            let next = self.world.len() as u64;
            match deps.iter().find(|&&d| d >= next) {
                Some(d) => Err(format!(
                    "dependency {d} does not exist yet (next id {next})"
                )),
                None => Ok(()),
            }
        });
        if let Err(e) = admit {
            self.metrics.record_rejected(tenant, 1);
            return Err(e);
        }
        let id = self.world.len();
        let mut deps: Vec<u64> = deps.to_vec();
        deps.sort_unstable();
        deps.dedup();
        for d in deps {
            self.edges.push((d as usize, id));
        }
        self.world.push(WorldJob {
            tenant: tenant.to_string(),
            job,
        });
        self.ingest.push_jobs(&[id]);
        self.metrics.record_submitted(tenant, 1);
        Ok(id as u64)
    }

    /// Admits a whole DAG atomically; `edges` are `(from, to)` pairs of
    /// indices into `jobs`. Returns the assigned global ids, in order.
    pub fn submit_dag(
        &mut self,
        tenant: &str,
        jobs: Vec<MoldableJob>,
        edges: &[(usize, usize)],
    ) -> Result<Vec<u64>, String> {
        self.check_fault()?;
        let count = jobs.len();
        let admit = (|| {
            if count == 0 {
                return Err("empty submission".to_string());
            }
            self.ingest.admit(count)?;
            for job in &jobs {
                self.validate_spec(job)?;
            }
            let mut local: Vec<(usize, usize)> = edges.to_vec();
            local.sort_unstable();
            local.dedup();
            if let Some(&(a, b)) = local.iter().find(|&&(a, b)| a >= count || b >= count) {
                return Err(format!("edge ({a}, {b}) references a job outside the DAG"));
            }
            Dag::from_edges(count, &local).map_err(|e| format!("invalid DAG: {e}"))?;
            Ok(local)
        })();
        let local = match admit {
            Ok(local) => local,
            Err(e) => {
                self.metrics.record_rejected(tenant, count.max(1) as u64);
                return Err(e);
            }
        };
        let base = self.world.len();
        let ids: Vec<usize> = (base..base + count).collect();
        for (a, b) in local {
            self.edges.push((base + a, base + b));
        }
        for job in jobs {
            self.world.push(WorldJob {
                tenant: tenant.to_string(),
                job,
            });
        }
        self.ingest.push_jobs(&ids);
        self.metrics.record_submitted(tenant, count as u64);
        Ok(ids.into_iter().map(|id| id as u64).collect())
    }

    /// Queues a capacity change for the next round.
    pub fn submit_capacity(&mut self, resource: usize, capacity: u64) -> Result<(), String> {
        self.check_fault()?;
        let d = self.num_resource_types();
        if resource >= d {
            return Err(format!(
                "resource {resource} does not exist (the machine has {d} types)"
            ));
        }
        if capacity == 0 {
            return Err("capacities must stay >= 1".to_string());
        }
        self.ingest.push_capacity(resource, capacity);
        Ok(())
    }

    /// The queryable metrics snapshot.
    pub fn status(&self) -> MetricsSnapshot {
        self.metrics
            .snapshot(self.virtual_now, self.ingest.queue_depth())
    }

    /// Flushes the open batch into one scheduling round, if any work is
    /// queued. The round places what it can and pauses; completions beyond
    /// the round's stamp are processed by later rounds or by a drain.
    pub fn flush(&mut self) -> Result<(), String> {
        self.check_fault()?;
        if self.ingest.is_empty() {
            return Ok(());
        }
        let batch = self.ingest.take_batch();
        self.run_round(batch, false).map(|_| ())
    }

    /// Flushes any queued work and runs the engine until every admitted job
    /// completed, returning the drain report.
    pub fn drain(&mut self) -> Result<DrainReport, String> {
        self.check_fault()?;
        let batch = self.ingest.take_batch();
        let trace = self
            .run_round(batch, true)?
            .expect("completing rounds always produce a trace");
        let submitted = self.world.len() as u64;
        let completed = self.snapshot.as_ref().map_or(0, |s| s.num_completed as u64);
        Ok(DrainReport {
            virtual_makespan: trace.stats.realized_makespan,
            submitted,
            completed,
            feasible: self.validate(&trace),
            metrics: self.status(),
            trace,
        })
    }

    fn check_fault(&self) -> Result<(), String> {
        match &self.fault {
            Some(f) => Err(format!("service faulted: {f}")),
            None => Ok(()),
        }
    }

    /// Cheap submission-time validation of a job description.
    fn validate_spec(&self, job: &MoldableJob) -> Result<(), String> {
        let d = self.num_resource_types();
        if let Some(dim) = job.spec.dimension() {
            if dim != d {
                return Err(format!(
                    "job `{}` is specified for {dim} resource types but the machine has {d}",
                    job.name
                ));
            }
        }
        let probe = Allocation::new(vec![1; d]);
        let t = job.spec.time(&probe);
        if !t.is_finite() || t <= 0.0 {
            return Err(format!(
                "job `{}` has invalid execution time {t} under the unit allocation",
                job.name
            ));
        }
        Ok(())
    }

    /// The virtual time stamped on the next round's events.
    fn next_round_time(&self) -> f64 {
        self.virtual_now.max(self.rounds as f64 * self.config.tick)
    }

    /// Executes one round. `complete` drives the engine until every job
    /// finished (a drain) and returns the realized trace; otherwise the
    /// round pauses at its stamp time.
    fn run_round(&mut self, batch: Batch, complete: bool) -> Result<Option<RealizedTrace>, String> {
        if batch.is_empty() && !complete {
            return Ok(None);
        }
        let t = self.next_round_time();
        if !batch.is_empty() {
            self.rounds += 1;
            self.metrics.record_round();
        }
        // Mirror the capacity changes before building the instance so its
        // system covers every capacity the machine ever had.
        for &(resource, capacity) in &batch.capacity_changes {
            self.capacities_now[resource] = capacity;
            self.capacities_max[resource] = self.capacities_max[resource].max(capacity);
        }
        let result = self.run_round_inner(&batch, t, complete);
        match result {
            Ok(trace) => Ok(trace),
            Err(e) => {
                self.fault = Some(e.clone());
                Err(e)
            }
        }
    }

    fn run_round_inner(
        &mut self,
        batch: &Batch,
        t: f64,
        complete: bool,
    ) -> Result<Option<RealizedTrace>, String> {
        let n = self.world.len();
        let system = SystemConfig::new(self.capacities_max.clone()).map_err(|e| e.to_string())?;
        let dag = Dag::from_edges(n, &self.edges).map_err(|e| e.to_string())?;
        let jobs: Vec<MoldableJob> = self.world.iter().map(|w| w.job.clone()).collect();
        let instance = Instance::new(system, dag, jobs).map_err(|e| e.to_string())?;
        let plan = self.build_plan(&instance, t, &batch.jobs)?;

        let (tx, mut source) = ChannelSource::channel();
        for &job in &batch.jobs {
            let _ = tx.send(SourceEvent::Release { time: t, job });
        }
        for &(resource, capacity) in &batch.capacity_changes {
            let _ = tx.send(SourceEvent::Capacity {
                time: t,
                resource,
                capacity,
            });
        }
        drop(tx);

        let mut run = match (&self.snapshot, self.perturber.take()) {
            (None, _) => SimRun::start(
                &instance,
                &plan,
                self.config.seed,
                self.config.perturbation.clone(),
                None,
                vec![false; n],
            ),
            (Some(snapshot), Some(perturber)) => {
                SimRun::resume_with_perturber(&instance, &plan, snapshot, perturber, None)
            }
            (Some(snapshot), None) => SimRun::resume(
                &instance,
                &plan,
                snapshot,
                self.config.perturbation.clone(),
                None,
            ),
        }
        .map_err(|e| e.to_string())?;
        let mut policy = self.config.policy.build();
        if complete {
            run.drive(policy.as_mut(), &mut source)
        } else {
            run.drive_until(policy.as_mut(), &mut source, t)
        }
        .map_err(|e| e.to_string())?;

        let snapshot = run.checkpoint();
        self.virtual_now = snapshot.now;
        self.harvest_events(&snapshot);
        self.perturber = Some(run.perturber().clone());
        let trace = complete.then(|| run.into_trace(self.config.policy.label()));
        self.snapshot = Some(snapshot);
        Ok(trace)
    }

    /// Builds the job-indexed plan for the current world: realized entries
    /// for jobs that already started, fresh two-phase plans (against the
    /// machine's *current* capacities) for everything pending. Planned
    /// finish times of newly submitted jobs are recorded per tenant.
    fn build_plan(
        &mut self,
        instance: &Instance,
        t: f64,
        new_jobs: &[usize],
    ) -> Result<Schedule, String> {
        let n = instance.num_jobs();
        let started = |j: usize| {
            self.snapshot
                .as_ref()
                .is_some_and(|s| j < s.started.len() && s.started[j])
        };
        let mut entries: Vec<Option<ScheduledJob>> = vec![None; n];
        let mut pending: Vec<usize> = Vec::new();
        for (j, entry) in entries.iter_mut().enumerate() {
            if started(j) {
                let s = self.snapshot.as_ref().expect("started implies snapshot");
                *entry = Some(ScheduledJob {
                    job: j,
                    start: s.start[j],
                    finish: s.finish[j],
                    alloc: s.alloc_used[j].clone(),
                });
            } else {
                pending.push(j);
            }
        }
        if !pending.is_empty() {
            let (sub_dag, mapping) = instance.dag.induced_subgraph(&pending);
            let sub_jobs: Vec<MoldableJob> = mapping
                .iter()
                .map(|&old| instance.jobs[old].clone())
                .collect();
            let system =
                SystemConfig::new(self.capacities_now.clone()).map_err(|e| e.to_string())?;
            let sub_instance =
                Instance::new(system, sub_dag, sub_jobs).map_err(|e| e.to_string())?;
            match MrlsScheduler::new(self.config.scheduler.clone()).schedule(&sub_instance) {
                Ok(result) => {
                    for sj in &result.schedule.jobs {
                        let old = mapping[sj.job];
                        entries[old] = Some(ScheduledJob {
                            job: old,
                            start: t + sj.start,
                            finish: t + sj.finish,
                            alloc: sj.alloc.clone(),
                        });
                    }
                }
                Err(_) => {
                    // Fallback: serialise the pending jobs on unit
                    // allocations (always feasible — capacities stay >= 1).
                    let d = self.num_resource_types();
                    let mut clock = t;
                    for &old in &pending {
                        let alloc = Allocation::new(vec![1; d]);
                        let dur = instance.jobs[old].spec.time(&alloc).max(1e-9);
                        entries[old] = Some(ScheduledJob {
                            job: old,
                            start: clock,
                            finish: clock + dur,
                            alloc,
                        });
                        clock += dur;
                    }
                }
            }
        }
        let entries: Vec<ScheduledJob> = entries
            .into_iter()
            .map(|e| e.expect("every job planned or realized"))
            .collect();
        for &j in new_jobs {
            let tenant = self.world[j].tenant.clone();
            self.metrics.record_planned(&tenant, entries[j].finish);
        }
        Ok(Schedule::new(entries))
    }

    /// Feeds the engine events processed since the last harvest into the
    /// metrics registry.
    fn harvest_events(&mut self, snapshot: &SimSnapshot) {
        use mrls_sim::TraceEvent;
        for ev in &snapshot.events[self.events_seen..] {
            match ev {
                TraceEvent::JobStarted { job, .. } => {
                    let tenant = self.world[*job].tenant.clone();
                    self.metrics.record_scheduled(&tenant);
                }
                TraceEvent::JobCompleted { time, job, .. } => {
                    let tenant = self.world[*job].tenant.clone();
                    self.metrics.record_completed(&tenant, *time);
                }
                _ => {}
            }
        }
        self.events_seen = snapshot.events.len();
    }

    /// Validates the realized schedule of a drained world
    /// (capacity/precedence feasibility, durations relaxed).
    fn validate(&self, trace: &RealizedTrace) -> bool {
        let n = self.world.len();
        if n == 0 {
            return true;
        }
        let Ok(system) = SystemConfig::new(self.capacities_max.clone()) else {
            return false;
        };
        let Ok(dag) = Dag::from_edges(n, &self.edges) else {
            return false;
        };
        let jobs: Vec<MoldableJob> = self.world.iter().map(|w| w.job.clone()).collect();
        let Ok(instance) = Instance::new(system, dag, jobs) else {
            return false;
        };
        validate_schedule_with(
            &instance,
            &trace.realized,
            ValidationOptions {
                check_durations: false,
            },
        )
        .is_valid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrls_model::ExecTimeSpec;

    fn config() -> ServeConfig {
        ServeConfig {
            capacities: vec![4, 4],
            tick: 1.0,
            ..ServeConfig::default()
        }
    }

    fn job(time: f64) -> MoldableJob {
        MoldableJob::new(0, ExecTimeSpec::Constant { time })
    }

    #[test]
    fn submit_flush_drain_completes_everything() {
        let mut core = ServiceCore::new(config());
        let a = core.submit_job("alice", job(2.0), &[]).unwrap();
        let b = core.submit_job("alice", job(1.0), &[a]).unwrap();
        assert_eq!((a, b), (0, 1));
        core.flush().unwrap();
        let ids = core
            .submit_dag("bob", vec![job(1.0), job(1.0)], &[(0, 1)])
            .unwrap();
        assert_eq!(ids, vec![2, 3]);
        let report = core.drain().unwrap();
        assert_eq!(report.submitted, 4);
        assert_eq!(report.completed, 4);
        assert!(report.feasible);
        assert!(report.virtual_makespan >= 3.0 - 1e-9);
        let alice = &report.metrics.tenants["alice"];
        assert_eq!((alice.submitted, alice.completed), (2, 2));
        // Draining again is idempotent.
        let again = core.drain().unwrap();
        assert_eq!(again.completed, 4);
    }

    #[test]
    fn rounds_overlap_in_virtual_time() {
        let mut core = ServiceCore::new(config());
        core.submit_job("a", job(10.0), &[]).unwrap();
        core.flush().unwrap();
        // The first job is still running at the second round's stamp.
        core.submit_job("a", job(1.0), &[]).unwrap();
        core.flush().unwrap();
        let report = core.drain().unwrap();
        let starts: Vec<f64> = report.trace.realized.jobs.iter().map(|j| j.start).collect();
        assert_eq!(starts, vec![0.0, 1.0], "second round stamped at tick");
        assert!((report.virtual_makespan - 10.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_changes_land_in_their_round() {
        let mut core = ServiceCore::new(config());
        core.submit_job("a", job(5.0), &[]).unwrap();
        core.flush().unwrap();
        core.submit_capacity(0, 2).unwrap();
        core.flush().unwrap();
        let report = core.drain().unwrap();
        assert!(report.feasible);
        assert!(report
            .trace
            .events
            .iter()
            .any(|e| matches!(e, mrls_sim::TraceEvent::CapacityChanged { capacity: 2, .. })));
        // A recovery above the initial capacity is also honoured.
        core.submit_capacity(0, 6).unwrap();
        core.submit_job("a", job(1.0), &[]).unwrap();
        let report = core.drain().unwrap();
        assert!(report.feasible);
        assert_eq!(report.completed, 2);
    }

    #[test]
    fn invalid_submissions_are_rejected() {
        let mut core = ServiceCore::new(config());
        // Unknown dependency.
        assert!(core.submit_job("a", job(1.0), &[5]).is_err());
        // Wrong dimensionality.
        let bad = MoldableJob::new(
            0,
            ExecTimeSpec::Amdahl {
                seq: 1.0,
                work: vec![1.0, 1.0, 1.0],
            },
        );
        assert!(core.submit_job("a", bad, &[]).is_err());
        // Non-positive execution time.
        assert!(core.submit_job("a", job(0.0), &[]).is_err());
        // Cyclic DAG.
        assert!(core
            .submit_dag("a", vec![job(1.0), job(1.0)], &[(0, 1), (1, 0)])
            .is_err());
        // Empty DAG.
        assert!(core.submit_dag("a", vec![], &[]).is_err());
        // Bad capacity change.
        assert!(core.submit_capacity(7, 2).is_err());
        assert!(core.submit_capacity(0, 0).is_err());
        // Rejections count jobs: 1 + 1 + 1 + 2 (cyclic DAG) + 1 (empty DAG).
        assert_eq!(core.status().jobs_rejected, 6);
        // Nothing was admitted, so draining completes trivially.
        let report = core.drain().unwrap();
        assert_eq!(report.submitted, 0);
        assert!(report.feasible);
    }

    #[test]
    fn backpressure_rejects_over_the_limit() {
        let mut core = ServiceCore::new(ServeConfig {
            capacities: vec![4, 4],
            max_pending_jobs: 2,
            ..ServeConfig::default()
        });
        core.submit_job("a", job(1.0), &[]).unwrap();
        core.submit_job("a", job(1.0), &[]).unwrap();
        let err = core.submit_job("a", job(1.0), &[]).unwrap_err();
        assert!(err.contains("backpressure"), "{err}");
        core.flush().unwrap();
        // The queue emptied: admissions resume.
        core.submit_job("a", job(1.0), &[]).unwrap();
        let report = core.drain().unwrap();
        assert_eq!(report.submitted, 3);
        assert_eq!(report.completed, 3);
    }

    #[test]
    fn same_submission_order_is_byte_identical() {
        let run = || {
            let mut core = ServiceCore::new(config());
            core.submit_dag("a", vec![job(2.0), job(1.0)], &[(0, 1)])
                .unwrap();
            core.flush().unwrap();
            core.submit_job("b", job(3.0), &[]).unwrap();
            core.flush().unwrap();
            core.submit_capacity(1, 2).unwrap();
            core.flush().unwrap();
            let report = core.drain().unwrap();
            (
                serde_json::to_string(&report.metrics).unwrap(),
                report.trace.to_json(),
            )
        };
        assert_eq!(run(), run());
    }
}
