//! The service core: a growing world of submitted jobs executed by the
//! `mrls-sim` virtual-time engine, one batching round at a time.
//!
//! Each flushed batch becomes one **round**: the new jobs and capacity
//! changes are stamped with a single virtual time (`max(engine now, round ×
//! tick)` — deterministic in the submission order, never wall clock), fed
//! through a long-lived [`ChannelFeeder`], and a **persistent**
//! [`PersistentRun`] is driven forward. Pending jobs are (re-)planned with
//! the paper's two-phase scheduler against the machine's *current*
//! capacities; the planner output is diffed against the in-flight plan
//! (`mrls_core::diff_plan_entries`) so unchanged placements are not
//! re-applied. After every round the engine's processed events are
//! **harvested** into the metrics layer's [`EventLedger`], so the retained
//! engine state — and any checkpoint of it — stays O(live) instead of
//! O(history): per-round cost is flat in the round index where the old
//! clone-and-replay path (kept as [`crate::naive::NaiveService`], the
//! executable reference the differential tests compare against) degraded
//! linearly.
//!
//! [`ServiceCore::drain`] runs the engine to completion and reports the
//! realized trace — ledger archive plus retained suffix, byte-identical to
//! the naive path's — validated for capacity/precedence feasibility.

use crate::flight::{FlightRecorder, RoundRecord};
use crate::ingest::DedupWindow;
use crate::ingest::{Batch, IngestQueue};
use crate::metrics::{EventLedger, MetricsRegistry, MetricsSnapshot, RejectReason};
use crate::protocol::QuarantineEntry;
use crate::protocol::{DrainReport, DEFAULT_MAX_LINE_BYTES};
use crate::wal::{
    list_checkpoints, scan_wal, wal_path, DurabilityMode, DurabilityStatus, RecoverError,
    RecoveryReport, WalOp, WalRecord, WalWriter,
};
use mrls_analysis::{validate_schedule_with, ValidationOptions};
use mrls_core::{diff_plan_entries, MrlsConfig, MrlsScheduler, Schedule, ScheduledJob};
use mrls_dag::Dag;
use mrls_model::{Allocation, Instance, MoldableJob, SystemConfig};
use mrls_sim::{
    ChannelFeeder, ChannelSource, FailCause, FailurePlan, PersistentRun, PerturbationModel, Policy,
    PolicyKind, RealizedTrace, SimSnapshot, TraceEvent,
};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Configuration of the scheduling service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Initial per-type capacities of the machine.
    pub capacities: Vec<u64>,
    /// Reaction policy driven inside each round.
    pub policy: PolicyKind,
    /// Batching window: how long admitted work may wait before its round
    /// starts (zero = every submission is its own round).
    pub batch_window: Duration,
    /// Virtual time that passes per batching round (spaces out the arrival
    /// stamps of successive rounds so rounds overlap with running work).
    pub tick: f64,
    /// Admission limit: maximum jobs queued for the next round before
    /// submissions are refused with a backpressure reply.
    pub max_pending_jobs: usize,
    /// Maximum byte length of one protocol line.
    pub max_line_bytes: usize,
    /// Seed of the perturbation stream.
    pub seed: u64,
    /// Stochastic execution-time model applied to job starts.
    pub perturbation: PerturbationModel,
    /// Configuration of the two-phase scheduler used to plan pending jobs.
    pub scheduler: MrlsConfig,
    /// Collect per-phase wall-clock timings of each round and expose them in
    /// status snapshots. Off by default: timings are non-deterministic, and
    /// the differential byte-identity guarantee only covers snapshots with
    /// the (empty) default.
    pub timing: bool,
    /// How the write-ahead log is persisted (off by default — no log, no
    /// recovery, the pre-durability behaviour). Takes effect only when
    /// [`ServeConfig::dir`] names a durability directory.
    pub durability: DurabilityMode,
    /// The durability directory: holds `wal.log` plus rotating checkpoint
    /// files. `None` (the default) disables durability regardless of the
    /// mode.
    pub dir: Option<PathBuf>,
    /// Checkpoint cadence: a checkpoint is written after every this-many
    /// rounds (and after every drain). Zero = checkpoint only at drains.
    pub checkpoint_every_rounds: u64,
    /// Deterministic failure injection: the seeded fault model, resource
    /// outages and the bounded-retry policy installed into the engine.
    /// [`FailurePlan::none`] (the default) keeps every pre-failure behaviour
    /// byte-identical. Requires a reactive `policy` when failures are
    /// enabled — a static cursor policy deadlocks on a job in backoff.
    pub failures: FailurePlan,
    /// Overload guard: when `Some(n)` and the scheduler's in-flight backlog
    /// (admitted, not started, not abandoned) has reached `n` jobs, further
    /// submissions are shed with a typed overload rejection instead of being
    /// queued. `None` (the default) never sheds.
    pub overload_high_water: Option<usize>,
    /// Idempotency dedup window: how many recently *accepted* submit tokens
    /// the core remembers for exactly-once admission of client retries.
    /// Zero disables dedup.
    pub dedup_window: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            capacities: vec![16, 16, 16],
            policy: PolicyKind::FullReschedule,
            batch_window: Duration::from_millis(20),
            tick: 1.0,
            max_pending_jobs: 4096,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            seed: 0,
            perturbation: PerturbationModel::None,
            scheduler: MrlsConfig::default(),
            timing: false,
            durability: DurabilityMode::Off,
            dir: None,
            checkpoint_every_rounds: 32,
            failures: FailurePlan::none(),
            overload_high_water: None,
            dedup_window: 64,
        }
    }
}

/// One admitted job and the tenant it belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct WorldJob {
    pub(crate) tenant: String,
    pub(crate) job: MoldableJob,
}

/// Cheap submission-time validation of a job description against a
/// `d`-resource machine. Shared by the incremental core and the naive
/// reference so rejection replies stay byte-identical.
pub(crate) fn validate_spec(d: usize, job: &MoldableJob) -> Result<(), String> {
    if let Some(dim) = job.spec.dimension() {
        if dim != d {
            return Err(format!(
                "job `{}` is specified for {dim} resource types but the machine has {d}",
                job.name
            ));
        }
    }
    let probe = Allocation::new(vec![1; d]);
    let t = job.spec.time(&probe);
    if !t.is_finite() || t <= 0.0 {
        return Err(format!(
            "job `{}` has invalid execution time {t} under the unit allocation",
            job.name
        ));
    }
    Ok(())
}

/// Plans fresh placements for the given pending (unstarted) jobs of
/// `instance` against the machine's *current* capacities, stamped at round
/// time `t`. Entry `i` of the result describes global job `pending[i]`. On
/// scheduler failure, falls back to serialising the pending jobs on unit
/// allocations (always feasible — capacities stay >= 1).
///
/// Shared by the incremental core and the naive reference: both must feed
/// the engine bit-identical placements for the differential guarantee.
pub(crate) fn plan_pending(
    instance: &Instance,
    capacities_now: &[u64],
    pending: &[usize],
    t: f64,
    config: &MrlsConfig,
) -> Result<Vec<ScheduledJob>, String> {
    if pending.is_empty() {
        return Ok(Vec::new());
    }
    let (sub_dag, mapping) = instance.dag.induced_subgraph_sorted(pending);
    let sub_jobs: Vec<MoldableJob> = mapping
        .iter()
        .map(|&old| instance.jobs[old].clone())
        .collect();
    let system = SystemConfig::new(capacities_now.to_vec()).map_err(|e| e.to_string())?;
    let sub_instance = Instance::new(system, sub_dag, sub_jobs).map_err(|e| e.to_string())?;
    match MrlsScheduler::new(config.clone()).schedule(&sub_instance) {
        Ok(result) => {
            let mut entries: Vec<Option<ScheduledJob>> = vec![None; pending.len()];
            for sj in &result.schedule.jobs {
                entries[sj.job] = Some(ScheduledJob {
                    job: mapping[sj.job],
                    start: t + sj.start,
                    finish: t + sj.finish,
                    alloc: sj.alloc.clone(),
                });
            }
            Ok(entries
                .into_iter()
                .map(|e| e.expect("the scheduler covers every pending job"))
                .collect())
        }
        Err(_) => {
            let d = instance.num_resource_types();
            let mut clock = t;
            Ok(pending
                .iter()
                .map(|&old| {
                    let alloc = Allocation::new(vec![1; d]);
                    let dur = instance.jobs[old].spec.time(&alloc).max(1e-9);
                    let entry = ScheduledJob {
                        job: old,
                        start: clock,
                        finish: clock + dur,
                        alloc,
                    };
                    clock += dur;
                    entry
                })
                .collect())
        }
    }
}

/// A NaN-stamped placeholder entry for a job appended to the running world
/// before its first planning; bit-compare-never-equal, so the next plan diff
/// always installs the real placement.
fn placeholder_entry(job: usize, d: usize) -> ScheduledJob {
    ScheduledJob {
        job,
        start: f64::NAN,
        finish: f64::NAN,
        alloc: Allocation::new(vec![1; d]),
    }
}

/// The checkpoint artefact of the durability layer: everything a fresh
/// process needs to rebuild a [`ServiceCore`] byte-identical to the one that
/// wrote it, without replaying the covered log prefix. `wal_seq` is the
/// log-position watermark — the first `wal_seq` records of `wal.log` are
/// already folded into this state, replay starts after them.
///
/// Checkpoints are written right after a round, when the ingest queue is
/// provably empty (the round took the batch and the core is single-threaded),
/// so no in-flight admissions need serialising. The pending/needs-sync
/// frontiers are recomputed from the snapshot's started flags at restore, the
/// same way the in-memory checkpoint/restore path
/// ([`ServiceCore::restore_engine_json`]) does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DurableState {
    /// Log position (records) this state already covers.
    wal_seq: u64,
    /// Fingerprint of the determinism-relevant configuration the state was
    /// produced under (capacities, policy, tick, admission limit, seed,
    /// perturbation, scheduler). A recovery under a different configuration
    /// would silently diverge, so it is refused instead.
    config_digest: u64,
    /// Every admitted job, with its tenant.
    world: Vec<WorldJob>,
    /// Every admitted precedence edge.
    edges: Vec<(usize, usize)>,
    /// Current per-type capacities.
    capacities_now: Vec<u64>,
    /// High-water capacities (the engine system's bounds).
    capacities_max: Vec<u64>,
    /// The engine's truncated checkpoint.
    snapshot: SimSnapshot,
    /// FNV fingerprint of `snapshot` — cross-checked at restore so a
    /// corrupted-but-parsable checkpoint is refused rather than resumed.
    engine_digest: u64,
    /// The harvested-event archive.
    ledger_events: Vec<TraceEvent>,
    /// The ledger's harvest watermark.
    ledger_watermark: f64,
    /// The per-tenant metrics registry, verbatim.
    metrics: MetricsRegistry,
    /// The flight recorder's retained ring.
    flight_records: Vec<RoundRecord>,
    /// Rounds ever recorded by the flight recorder.
    flight_total: u64,
    /// Rounds executed.
    rounds: u64,
    /// Virtual time of the service.
    virtual_now: f64,
    /// Plan-diff counter: entries re-applied.
    plan_updates_applied: u64,
    /// Plan-diff counter: entries kept.
    plan_entries_unchanged: u64,
    /// World jobs the engine was grown to.
    grown: usize,
    /// World edges the engine's DAG was grown to.
    edge_cursor: usize,
    /// Recoveries performed before this state was written.
    recoveries: u64,
    /// Invalid-tail bytes cut by those recoveries.
    truncated_bytes: u64,
    /// The poison quarantine, oldest entry first.
    quarantine: Vec<QuarantineEntry>,
    /// The idempotency dedup window, verbatim.
    dedup: DedupWindow,
}

impl DurableState {
    fn to_json(&self) -> String {
        serde_json::to_string(self).expect("durable state is always serialisable")
    }

    fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

/// Fingerprint of the configuration fields that determine the core's
/// deterministic outputs. Wall-clock knobs (batch window, line cap, timing)
/// are excluded: they shape *when* rounds happen, which the log records
/// explicitly, not what a round produces.
fn config_digest(config: &ServeConfig) -> u64 {
    let key = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        config.capacities,
        config.policy,
        config.tick,
        config.max_pending_jobs,
        config.seed,
        config.perturbation,
        config.scheduler,
        config.failures,
        config.overload_high_water,
        config.dedup_window,
    );
    mrls_core::hash::fnv1a64(key.as_bytes())
}

/// The obs counter a rejection of the given kind increments.
fn reject_counter(reason: RejectReason) -> &'static str {
    match reason {
        RejectReason::Backpressure => "serve.rejected.backpressure",
        RejectReason::Validation => "serve.rejected.validation",
        RejectReason::Overload => "serve.rejected.overload",
    }
}

/// Introspection counters of the incremental round state (for soak tests and
/// benches; not part of the protocol-visible metrics, which stay
/// byte-identical with the naive reference).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStateStats {
    /// Trace events currently retained inside the engine (post-harvest this
    /// is zero between rounds — the bounded-live-state invariant).
    pub retained_events: usize,
    /// Events archived in the ledger over the service's lifetime.
    pub archived_events: usize,
    /// Virtual-time watermark up to which events were harvested.
    pub harvested_until: f64,
    /// Plan entries re-applied after diffing (placements that changed).
    pub plan_updates_applied: u64,
    /// Plan entries skipped as bit-identical to the in-flight plan.
    pub plan_entries_unchanged: u64,
}

/// The service core. Owns the world (every admitted job and edge), one
/// **persistent** engine run carried across rounds, the harvested-event
/// ledger, the ingest queue and the metrics registry. Free of I/O — the TCP
/// layer in [`crate::Server`] drives it, and tests can call it directly.
#[derive(Debug)]
pub struct ServiceCore {
    config: ServeConfig,
    world: Vec<WorldJob>,
    edges: Vec<(usize, usize)>,
    capacities_now: Vec<u64>,
    capacities_max: Vec<u64>,
    /// The live engine world, created at the first round and kept across
    /// rounds (never cloned, never replayed).
    run: Option<PersistentRun>,
    /// The **persistent policy instance** driven inside every round: built
    /// once, refreshed between rounds with the incremental
    /// [`Policy::on_plan_update`] hook over the pending frontier — O(live)
    /// per round where building and `on_start`-ing a fresh instance was
    /// O(world).
    policy: Box<dyn Policy>,
    /// The long-lived event channel feeding the run.
    feed: Option<(ChannelFeeder, ChannelSource)>,
    /// Archive of events harvested out of the engine.
    ledger: EventLedger,
    /// Unstarted job ids, sorted ascending (the re-planning frontier).
    pending: Vec<usize>,
    /// Jobs started in earlier rounds whose realized placements are not yet
    /// frozen into the plan (synced at the start of the next round, so the
    /// plan stays fixed during a drive — exactly what the naive rebuild
    /// would install).
    needs_sync: Vec<usize>,
    /// How many world jobs the run has been grown to.
    grown: usize,
    /// How many world edges the run's DAG has been grown to.
    edge_cursor: usize,
    ingest: IngestQueue,
    metrics: MetricsRegistry,
    /// Cumulative observability registry: the per-thread `mrls_obs` deltas
    /// produced while this core runs are drained into it after every round
    /// (and on query), so the snapshot is owned by the core and deterministic
    /// in the submission order.
    obs: mrls_obs::Registry,
    /// Bounded ring of per-round summaries (the black box). Not part of
    /// `status()` — records carry wall-clock fields, and the differential
    /// byte-identity guarantee only covers their deterministic digest.
    flight: FlightRecorder,
    rounds: u64,
    virtual_now: f64,
    plan_updates_applied: u64,
    plan_entries_unchanged: u64,
    /// The poison quarantine: jobs that exhausted their retry budget (or
    /// were cascade-abandoned), in quarantine order. Append-only.
    quarantine: Vec<QuarantineEntry>,
    /// The idempotency dedup window for client submit retries.
    dedup: DedupWindow,
    fault: Option<String>,
    /// The write-ahead log append handle. `Some` iff durability is on and
    /// recovery (if any) completed — during replay it stays `None`, so the
    /// replayed operations do not re-log themselves.
    wal: Option<WalWriter>,
    /// Round count at the newest checkpoint written by this core or restored
    /// from (cadence anchor).
    last_checkpoint_round: Option<u64>,
    /// Log position covered by the newest checkpoint.
    last_checkpoint_seq: Option<u64>,
    checkpoints_written: u64,
    /// Lifetime recoveries of this durability directory (carried through
    /// checkpoints and `Recovered` log records).
    recoveries: u64,
    /// Lifetime invalid-tail bytes those recoveries cut.
    truncated_bytes: u64,
}

impl ServiceCore {
    /// Creates an idle service for the configured machine.
    pub fn new(config: ServeConfig) -> Self {
        let ingest = IngestQueue::new(config.batch_window, config.max_pending_jobs);
        let capacities = config.capacities.clone();
        let policy = config.policy.build();
        if config.timing {
            // Never disabled here: the flag is process-wide and another core
            // in the same process may still be collecting.
            mrls_core::timing::set_enabled(true);
        }
        // Metric collection is always on for a service (and, like timing,
        // never switched off — the flag is process-wide). Discard whatever a
        // previous core on this thread left in the per-thread store so this
        // core's registry starts from zero.
        mrls_obs::set_enabled(true);
        let _ = mrls_obs::take();
        let dedup = DedupWindow::new(config.dedup_window);
        ServiceCore {
            config,
            world: Vec::new(),
            edges: Vec::new(),
            capacities_now: capacities.clone(),
            capacities_max: capacities,
            run: None,
            policy,
            feed: None,
            ledger: EventLedger::new(),
            pending: Vec::new(),
            needs_sync: Vec::new(),
            grown: 0,
            edge_cursor: 0,
            ingest,
            metrics: MetricsRegistry::new(),
            obs: mrls_obs::Registry::new(),
            flight: FlightRecorder::default(),
            rounds: 0,
            virtual_now: 0.0,
            plan_updates_applied: 0,
            plan_entries_unchanged: 0,
            quarantine: Vec::new(),
            dedup,
            fault: None,
            wal: None,
            last_checkpoint_round: None,
            last_checkpoint_seq: None,
            checkpoints_written: 0,
            recoveries: 0,
            truncated_bytes: 0,
        }
    }

    /// Creates or recovers the service for the configured durability
    /// directory: without one (or with durability off) this is
    /// [`ServiceCore::new`]; with a fresh directory it creates the log and
    /// starts clean; with an existing log it recovers — newest valid
    /// checkpoint plus log-suffix replay — and resumes serving. The report is
    /// `Some` iff a recovery ran.
    pub fn open(config: ServeConfig) -> Result<(Self, Option<RecoveryReport>), RecoverError> {
        let durable = config.dir.is_some() && config.durability != DurabilityMode::Off;
        if !durable {
            return Ok((ServiceCore::new(config), None));
        }
        let dir = config.dir.clone().expect("checked above");
        std::fs::create_dir_all(&dir)?;
        let path = wal_path(&dir);
        if path.exists() {
            let (core, report) = Self::recover(config)?;
            return Ok((core, Some(report)));
        }
        let mut core = ServiceCore::new(config.clone());
        std::fs::write(dir.join("CONFIG"), format!("{}\n", config_digest(&config)))?;
        core.wal = Some(WalWriter::create(&path, config.durability)?);
        Ok((core, None))
    }

    /// Recovers a service from its durability directory: truncates any torn
    /// or corrupt log tail back to the last valid record, loads the newest
    /// usable checkpoint (falling back to older ones, then to a full replay
    /// from genesis), replays the log suffix through the unchanged round
    /// machinery, and re-attaches the log for appending. The recovered core
    /// is byte-identical to one that processed the logged inputs without
    /// interruption.
    pub fn recover(config: ServeConfig) -> Result<(Self, RecoveryReport), RecoverError> {
        Self::recover_inner(config, true)
    }

    /// Like [`ServiceCore::recover`], but ignores every checkpoint and
    /// replays the whole log from genesis — the independent recovery path
    /// the crash smoke compares checkpoint-based recovery against, and an
    /// escape hatch when checkpoints are suspect.
    pub fn recover_from_genesis(
        config: ServeConfig,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        Self::recover_inner(config, false)
    }

    fn recover_inner(
        config: ServeConfig,
        use_checkpoints: bool,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        if config.durability == DurabilityMode::Off {
            return Err(RecoverError::Checkpoint(
                "durability is off — nothing to recover".to_string(),
            ));
        }
        let dir = config.dir.clone().ok_or_else(|| {
            RecoverError::Checkpoint("no durability directory configured".to_string())
        })?;
        let digest = config_digest(&config);
        let config_file = dir.join("CONFIG");
        if let Ok(text) = std::fs::read_to_string(&config_file) {
            let recorded = text.trim().parse::<u64>().ok();
            if recorded != Some(digest) {
                return Err(RecoverError::Checkpoint(format!(
                    "the directory was written under a different configuration \
                     (recorded digest {}, current {digest}) — recovering under it \
                     would silently diverge",
                    text.trim()
                )));
            }
        }
        let path = wal_path(&dir);
        let scan = scan_wal(&path)?;
        let mut core = None;
        let mut checkpoint_round = None;
        let mut checkpoint_seq = 0u64;
        if use_checkpoints {
            for (seq, p) in list_checkpoints(&dir)? {
                // A checkpoint whose watermark points past the valid log
                // covers records that no longer exist: unusable.
                if seq as usize > scan.records.len() {
                    continue;
                }
                let Ok(text) = std::fs::read_to_string(&p) else {
                    continue;
                };
                let rebuilt = DurableState::from_json(&text)
                    .and_then(|state| Self::from_durable(config.clone(), state, digest));
                if let Ok(c) = rebuilt {
                    checkpoint_round = Some(c.rounds);
                    checkpoint_seq = seq;
                    core = Some(c);
                    break;
                }
            }
        }
        let mut core = core.unwrap_or_else(|| ServiceCore::new(config.clone()));
        let suffix = &scan.records[checkpoint_seq as usize..];
        let replayed_rounds = core.replay(suffix)?;
        let mut writer = WalWriter::resume(&path, config.durability, &scan)?;
        core.recoveries += 1;
        core.truncated_bytes += scan.truncated_bytes;
        writer.append(WalOp::Recovered {
            truncated_bytes: scan.truncated_bytes,
        })?;
        core.wal = Some(writer);
        if !config_file.exists() {
            let _ = std::fs::write(&config_file, format!("{digest}\n"));
        }
        mrls_obs::counter_add("serve.wal.recoveries", 1);
        mrls_obs::counter_add("serve.wal.truncated_bytes", scan.truncated_bytes);
        let report = RecoveryReport {
            checkpoint_round,
            checkpoint_seq,
            replayed_records: suffix.len() as u64,
            replayed_rounds,
            truncated_bytes: scan.truncated_bytes,
        };
        Ok((core, report))
    }

    /// Rebuilds a core from a checkpointed [`DurableState`], mirroring
    /// [`ServiceCore::restore_engine_json`]: realized placements for started
    /// jobs, placeholders for pending ones, frontiers recomputed from the
    /// snapshot's flags.
    fn from_durable(config: ServeConfig, state: DurableState, digest: u64) -> Result<Self, String> {
        if state.config_digest != digest {
            return Err(format!(
                "checkpoint was written under configuration digest {} but the \
                 service runs under {digest}",
                state.config_digest
            ));
        }
        if state.snapshot.digest() != state.engine_digest {
            return Err("checkpoint engine digest mismatch (corrupt checkpoint)".to_string());
        }
        if state.snapshot.num_jobs() != state.grown
            || state.grown > state.world.len()
            || state.edge_cursor > state.edges.len()
        {
            return Err("checkpoint world bounds are inconsistent".to_string());
        }
        if state.snapshot.harvested_events + state.snapshot.events.len()
            != state.ledger_events.len()
        {
            return Err("checkpoint ledger does not match its engine snapshot".to_string());
        }
        let mut core = ServiceCore::new(config);
        let d = core.num_resource_types();
        let system = SystemConfig::new(state.capacities_max.clone()).map_err(|e| e.to_string())?;
        let dag = Dag::from_edges(state.grown, &state.edges[..state.edge_cursor])
            .map_err(|e| e.to_string())?;
        let jobs: Vec<MoldableJob> = state.world[..state.grown]
            .iter()
            .map(|w| w.job.clone())
            .collect();
        let instance = Instance::new(system, dag, jobs).map_err(|e| e.to_string())?;
        let plan = Schedule::new(
            (0..state.grown)
                .map(|j| {
                    if state.snapshot.started[j] {
                        ScheduledJob {
                            job: j,
                            start: state.snapshot.start[j],
                            finish: state.snapshot.finish[j],
                            alloc: state.snapshot.alloc_used[j].clone(),
                        }
                    } else {
                        placeholder_entry(j, d)
                    }
                })
                .collect(),
        );
        let mut run = PersistentRun::resume(
            instance,
            plan,
            &state.snapshot,
            core.config.perturbation.clone(),
            None,
        )
        .map_err(|e| e.to_string())?;
        if !core.config.failures.is_failure_free() {
            // The sampler resumes at the snapshot's recorded attempt count,
            // so the post-recovery failure stream continues byte-identically.
            run.set_failures(core.config.failures.clone());
        }
        let abandoned = |j: usize| state.snapshot.abandoned.get(j).copied().unwrap_or(false);
        core.pending = (0..state.grown)
            .filter(|&j| !state.snapshot.started[j] && !abandoned(j))
            .chain(state.grown..state.world.len())
            .collect();
        core.needs_sync.clear();
        core.run = Some(run);
        core.feed = Some(ChannelSource::feeder());
        core.world = state.world;
        core.edges = state.edges;
        core.capacities_now = state.capacities_now;
        core.capacities_max = state.capacities_max;
        core.ledger = EventLedger::restore(state.ledger_events, state.ledger_watermark);
        core.metrics = state.metrics;
        core.flight = FlightRecorder::restore(state.flight_records, state.flight_total);
        core.rounds = state.rounds;
        core.virtual_now = state.virtual_now;
        core.plan_updates_applied = state.plan_updates_applied;
        core.plan_entries_unchanged = state.plan_entries_unchanged;
        core.grown = state.grown;
        core.edge_cursor = state.edge_cursor;
        core.recoveries = state.recoveries;
        core.truncated_bytes = state.truncated_bytes;
        core.quarantine = state.quarantine;
        core.dedup = state.dedup;
        core.last_checkpoint_round = Some(state.rounds);
        core.last_checkpoint_seq = Some(state.wal_seq);
        Ok(core)
    }

    /// Replays a log suffix through the normal round machinery. Submissions
    /// re-run their full admission path (including rejections — those mutate
    /// metrics and must reproduce); round markers cross-check their recorded
    /// stamp against what the rebuilt core would stamp, then re-run the
    /// flush or drain. A fault the original run hit is reproduced, not
    /// propagated — it is part of the recovered state. Returns the number of
    /// rounds re-run.
    fn replay(&mut self, records: &[WalRecord]) -> Result<u64, RecoverError> {
        debug_assert!(self.wal.is_none(), "replay must not re-log itself");
        let mut rounds = 0u64;
        for record in records {
            match &record.op {
                WalOp::Job { tenant, job, deps } => {
                    let _ = self.submit_job(tenant, job.clone(), deps);
                }
                WalOp::TokenJob {
                    tenant,
                    job,
                    deps,
                    token,
                } => {
                    let _ = self.submit_job_token(tenant, job.clone(), deps, Some(token));
                }
                WalOp::Dag {
                    tenant,
                    jobs,
                    edges,
                } => {
                    let _ = self.submit_dag(tenant, jobs.clone(), edges);
                }
                WalOp::TokenDag {
                    tenant,
                    jobs,
                    edges,
                    token,
                } => {
                    let _ = self.submit_dag_token(tenant, jobs.clone(), edges, Some(token));
                }
                WalOp::Capacity { resource, capacity } => {
                    let _ = self.submit_capacity(*resource, *capacity);
                }
                WalOp::Round { stamp, drain } => {
                    if self.fault.is_none() {
                        let expect = self.next_round_time();
                        if expect.to_bits() != stamp.to_bits() {
                            return Err(RecoverError::Replay {
                                seq: record.seq,
                                detail: format!(
                                    "round marker stamped {stamp} but the rebuilt core \
                                     stamps {expect} — the log does not continue this state"
                                ),
                            });
                        }
                        if !drain && self.ingest.is_empty() {
                            return Err(RecoverError::Replay {
                                seq: record.seq,
                                detail: "round marker with no queued inputs".to_string(),
                            });
                        }
                    }
                    let result = if *drain {
                        self.drain().map(|_| ())
                    } else {
                        self.flush()
                    };
                    match result {
                        Ok(()) => {}
                        // A reproduced fault is consistent recovered state;
                        // anything else means the log does not replay.
                        Err(_) if self.fault.is_some() => {}
                        Err(e) => {
                            return Err(RecoverError::Replay {
                                seq: record.seq,
                                detail: e,
                            });
                        }
                    }
                    rounds += 1;
                }
                WalOp::Recovered { truncated_bytes } => {
                    self.recoveries += 1;
                    self.truncated_bytes += truncated_bytes;
                }
            }
        }
        Ok(rounds)
    }

    /// Appends one op to the write-ahead log, if one is attached. Called
    /// **before** the op is applied (and so before any reply is sent): a
    /// logged-but-unapplied op replays to the applied state, while an
    /// applied-but-unlogged op would be lost — so the log always leads.
    fn log_op(&mut self, op: impl FnOnce() -> WalOp) -> Result<(), String> {
        match self.wal.as_mut() {
            None => Ok(()),
            Some(w) => w
                .append(op())
                .map(|_| ())
                .map_err(|e| format!("durability: log append failed: {e}")),
        }
    }

    /// Writes a checkpoint if one is due (cadence reached, or `force` — the
    /// drain path). Runs right after a round, when the ingest queue is
    /// empty, so the durable state plus the covered log prefix is the whole
    /// service. A failed write degrades durability (longer replay) but never
    /// the service: it is reported, not propagated.
    fn maybe_checkpoint(&mut self, force: bool) {
        let Some(wal_seq) = self.wal.as_ref().map(|w| w.next_seq()) else {
            return;
        };
        let Some(dir) = self.config.dir.clone() else {
            return;
        };
        if self.run.is_none() {
            return;
        }
        let every = self.config.checkpoint_every_rounds;
        let since = self.rounds - self.last_checkpoint_round.unwrap_or(0);
        if !(force || (every > 0 && since >= every)) {
            return;
        }
        debug_assert!(self.ingest.is_empty(), "checkpoints cover the whole log");
        let snapshot = self.run.as_ref().expect("checked above").checkpoint();
        let engine_digest = snapshot.digest();
        let state = DurableState {
            wal_seq,
            config_digest: config_digest(&self.config),
            world: self.world.clone(),
            edges: self.edges.clone(),
            capacities_now: self.capacities_now.clone(),
            capacities_max: self.capacities_max.clone(),
            snapshot,
            engine_digest,
            ledger_events: self.ledger.archived().to_vec(),
            ledger_watermark: self.ledger.watermark(),
            metrics: self.metrics.clone(),
            flight_records: self.flight.records(),
            flight_total: self.flight.total_recorded(),
            rounds: self.rounds,
            virtual_now: self.virtual_now,
            plan_updates_applied: self.plan_updates_applied,
            plan_entries_unchanged: self.plan_entries_unchanged,
            grown: self.grown,
            edge_cursor: self.edge_cursor,
            recoveries: self.recoveries,
            truncated_bytes: self.truncated_bytes,
            quarantine: self.quarantine.clone(),
            dedup: self.dedup.clone(),
        };
        match crate::wal::write_checkpoint(&dir, wal_seq, &state.to_json()) {
            Ok(()) => {
                self.last_checkpoint_round = Some(self.rounds);
                self.last_checkpoint_seq = Some(wal_seq);
                self.checkpoints_written += 1;
            }
            Err(e) => eprintln!("mrls-serve: checkpoint write failed (durability degraded): {e}"),
        }
    }

    /// The queryable state of the durability layer. **Not** part of the
    /// recovery byte-identity oracle: a recovered server has a higher
    /// recovery count than one that never crashed — that asymmetry lives
    /// here, and only here.
    pub fn durability_status(&self) -> DurabilityStatus {
        DurabilityStatus {
            mode: if self.wal.is_some() {
                self.config.durability.label().to_string()
            } else {
                DurabilityMode::Off.label().to_string()
            },
            wal_records: self.wal.as_ref().map_or(0, |w| w.next_seq()),
            wal_bytes: self.wal.as_ref().map_or(0, |w| w.bytes()),
            last_checkpoint_round: self.last_checkpoint_round,
            last_checkpoint_seq: self.last_checkpoint_seq,
            checkpoints_written: self.checkpoints_written,
            recoveries: self.recoveries,
            truncated_bytes: self.truncated_bytes,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of resource types `d` of the machine.
    pub fn num_resource_types(&self) -> usize {
        self.config.capacities.len()
    }

    /// When the open batch must be flushed, if one is open.
    pub fn deadline(&self) -> Option<Instant> {
        self.ingest.deadline()
    }

    /// The error that poisoned the service, if any round failed.
    pub fn fault(&self) -> Option<&str> {
        self.fault.as_deref()
    }

    /// Incremental-state introspection counters.
    pub fn round_state_stats(&self) -> RoundStateStats {
        RoundStateStats {
            retained_events: self.run.as_ref().map_or(0, |r| r.events().len()),
            archived_events: self.ledger.len(),
            harvested_until: self.ledger.watermark(),
            plan_updates_applied: self.plan_updates_applied,
            plan_entries_unchanged: self.plan_entries_unchanged,
        }
    }

    /// Admits one job with dependencies on previously accepted jobs.
    /// Returns the assigned global id.
    pub fn submit_job(
        &mut self,
        tenant: &str,
        job: MoldableJob,
        deps: &[u64],
    ) -> Result<u64, String> {
        self.submit_job_token(tenant, job, deps, None)
    }

    /// [`ServiceCore::submit_job`] with an optional client idempotency
    /// token. A token the dedup window already holds short-circuits to the
    /// original ids — nothing is journaled or admitted again, so a client
    /// retrying a submission it never saw the reply for cannot double-admit.
    pub fn submit_job_token(
        &mut self,
        tenant: &str,
        job: MoldableJob,
        deps: &[u64],
        token: Option<&str>,
    ) -> Result<u64, String> {
        self.check_fault()?;
        if let Some(ids) = token.and_then(|t| self.dedup.lookup(t)) {
            let id = ids[0];
            mrls_obs::counter_add("serve.dedup.hits", 1);
            return Ok(id);
        }
        // Log before validating: rejections mutate metrics, so replay must
        // re-reject the same submissions to reproduce the same counters.
        self.log_op(|| match token {
            Some(token) => WalOp::TokenJob {
                tenant: tenant.to_string(),
                job: job.clone(),
                deps: deps.to_vec(),
                token: token.to_string(),
            },
            None => WalOp::Job {
                tenant: tenant.to_string(),
                job: job.clone(),
                deps: deps.to_vec(),
            },
        })?;
        if let Err(e) = self.check_overload() {
            self.metrics
                .record_rejected(tenant, 1, RejectReason::Overload);
            mrls_obs::counter_add("serve.rejected.overload", 1);
            return Err(e);
        }
        validate_spec(self.num_resource_types(), &job).inspect_err(|_| {
            self.metrics
                .record_rejected(tenant, 1, RejectReason::Validation);
            mrls_obs::counter_add("serve.rejected.validation", 1);
        })?;
        let admit = self
            .ingest
            .admit(1)
            .map_err(|e| (RejectReason::Backpressure, e))
            .and_then(|()| {
                let next = self.world.len() as u64;
                match deps.iter().find(|&&d| d >= next) {
                    Some(d) => Err((
                        RejectReason::Validation,
                        format!("dependency {d} does not exist yet (next id {next})"),
                    )),
                    None => Ok(()),
                }
            });
        if let Err((reason, e)) = admit {
            self.metrics.record_rejected(tenant, 1, reason);
            mrls_obs::counter_add(reject_counter(reason), 1);
            return Err(e);
        }
        let id = self.world.len();
        let mut deps: Vec<u64> = deps.to_vec();
        deps.sort_unstable();
        deps.dedup();
        for d in deps {
            self.edges.push((d as usize, id));
        }
        self.world.push(WorldJob {
            tenant: tenant.to_string(),
            job,
        });
        self.pending.push(id);
        self.ingest.push_jobs(&[id]);
        self.metrics.record_submitted(tenant, 1);
        self.metrics.record_queued(tenant, 1);
        mrls_obs::counter_add("serve.admitted_jobs", 1);
        if let Some(token) = token {
            self.dedup.insert(token, vec![id as u64]);
        }
        Ok(id as u64)
    }

    /// Admits a whole DAG atomically; `edges` are `(from, to)` pairs of
    /// indices into `jobs`. Returns the assigned global ids, in order.
    pub fn submit_dag(
        &mut self,
        tenant: &str,
        jobs: Vec<MoldableJob>,
        edges: &[(usize, usize)],
    ) -> Result<Vec<u64>, String> {
        self.submit_dag_token(tenant, jobs, edges, None)
    }

    /// [`ServiceCore::submit_dag`] with an optional client idempotency
    /// token (see [`ServiceCore::submit_job_token`]).
    pub fn submit_dag_token(
        &mut self,
        tenant: &str,
        jobs: Vec<MoldableJob>,
        edges: &[(usize, usize)],
        token: Option<&str>,
    ) -> Result<Vec<u64>, String> {
        self.check_fault()?;
        if let Some(ids) = token.and_then(|t| self.dedup.lookup(t)) {
            let ids = ids.to_vec();
            mrls_obs::counter_add("serve.dedup.hits", 1);
            return Ok(ids);
        }
        self.log_op(|| match token {
            Some(token) => WalOp::TokenDag {
                tenant: tenant.to_string(),
                jobs: jobs.clone(),
                edges: edges.to_vec(),
                token: token.to_string(),
            },
            None => WalOp::Dag {
                tenant: tenant.to_string(),
                jobs: jobs.clone(),
                edges: edges.to_vec(),
            },
        })?;
        let count = jobs.len();
        let d = self.num_resource_types();
        let overload = self.check_overload();
        let admit = (|| {
            overload.map_err(|e| (RejectReason::Overload, e))?;
            if count == 0 {
                return Err((RejectReason::Validation, "empty submission".to_string()));
            }
            self.ingest
                .admit(count)
                .map_err(|e| (RejectReason::Backpressure, e))?;
            for job in &jobs {
                validate_spec(d, job).map_err(|e| (RejectReason::Validation, e))?;
            }
            let mut local: Vec<(usize, usize)> = edges.to_vec();
            local.sort_unstable();
            local.dedup();
            if let Some(&(a, b)) = local.iter().find(|&&(a, b)| a >= count || b >= count) {
                return Err((
                    RejectReason::Validation,
                    format!("edge ({a}, {b}) references a job outside the DAG"),
                ));
            }
            Dag::from_edges(count, &local)
                .map_err(|e| (RejectReason::Validation, format!("invalid DAG: {e}")))?;
            Ok(local)
        })();
        let local = match admit {
            Ok(local) => local,
            Err((reason, e)) => {
                self.metrics
                    .record_rejected(tenant, count.max(1) as u64, reason);
                mrls_obs::counter_add(reject_counter(reason), count.max(1) as u64);
                return Err(e);
            }
        };
        let base = self.world.len();
        let ids: Vec<usize> = (base..base + count).collect();
        for (a, b) in local {
            self.edges.push((base + a, base + b));
        }
        for job in jobs {
            self.world.push(WorldJob {
                tenant: tenant.to_string(),
                job,
            });
        }
        self.pending.extend(&ids);
        self.ingest.push_jobs(&ids);
        self.metrics.record_submitted(tenant, count as u64);
        self.metrics.record_queued(tenant, count as u64);
        mrls_obs::counter_add("serve.admitted_jobs", count as u64);
        let ids: Vec<u64> = ids.into_iter().map(|id| id as u64).collect();
        if let Some(token) = token {
            self.dedup.insert(token, ids.clone());
        }
        Ok(ids)
    }

    /// The overload guard: refuses the submission outright when the
    /// in-flight backlog (admitted, not started, not abandoned) has reached
    /// the configured high-water mark. Checked before any other admission
    /// work — shedding is supposed to be cheap.
    fn check_overload(&self) -> Result<(), String> {
        match self.config.overload_high_water {
            Some(hwm) if self.pending.len() >= hwm => Err(format!(
                "overload: {} jobs in flight have reached the high-water mark {hwm} — \
                 load shed, retry after the backlog drains",
                self.pending.len()
            )),
            _ => Ok(()),
        }
    }

    /// The poison quarantine, oldest entry first.
    pub fn quarantine(&self) -> Vec<QuarantineEntry> {
        self.quarantine.clone()
    }

    /// Queues a capacity change for the next round.
    pub fn submit_capacity(&mut self, resource: usize, capacity: u64) -> Result<(), String> {
        self.check_fault()?;
        self.log_op(|| WalOp::Capacity { resource, capacity })?;
        let d = self.num_resource_types();
        if resource >= d {
            return Err(format!(
                "resource {resource} does not exist (the machine has {d} types)"
            ));
        }
        if capacity == 0 {
            return Err("capacities must stay >= 1".to_string());
        }
        self.ingest.push_capacity(resource, capacity);
        Ok(())
    }

    /// The queryable metrics snapshot. With [`ServeConfig::timing`] on it
    /// carries the per-phase latency of the rounds since the last query
    /// (draining the thread-local registry).
    pub fn status(&self) -> MetricsSnapshot {
        let mut snap = self
            .metrics
            .snapshot(self.virtual_now, self.ingest.queue_depth());
        if self.config.timing {
            snap.timings = mrls_core::timing::drain();
        }
        snap
    }

    /// The cumulative observability snapshot: every `mrls_obs` counter,
    /// gauge and histogram recorded by this core's layers (ready queue, slot
    /// set, placement, engine, serve rounds) since it was created. The
    /// counter/gauge/histogram namespaces are virtual-time/count valued and
    /// deterministic in the submission order; only the `wall` namespace
    /// carries wall-clock readings (excluded by
    /// [`mrls_obs::Snapshot::deterministic`]).
    pub fn obs_snapshot(&mut self) -> mrls_obs::Snapshot {
        self.obs.absorb(mrls_obs::take());
        self.obs.snapshot().clone()
    }

    /// The retained flight-recorder rounds, oldest first. Every field is a
    /// count or a virtual time except `wall_us`/`over_tick`, which are
    /// wall-clock measurements — the reason flight data is queried through
    /// its own protocol verb instead of riding along in `status()` snapshots
    /// (those must stay byte-identical across same-stream runs).
    pub fn flight_records(&self) -> Vec<RoundRecord> {
        self.flight.records()
    }

    /// Rounds ever recorded by the flight recorder, including those the
    /// ring has evicted.
    pub fn flight_total_rounds(&self) -> u64 {
        self.flight.total_recorded()
    }

    /// Flushes the open batch into one scheduling round, if any work is
    /// queued. The round places what it can and pauses; completions beyond
    /// the round's stamp are processed by later rounds or by a drain.
    pub fn flush(&mut self) -> Result<(), String> {
        self.check_fault()?;
        if self.ingest.is_empty() {
            return Ok(());
        }
        // Batch boundaries are wall-clock-driven — the one nondeterministic
        // input — so each is recorded where it actually happened, stamped
        // with the round time replay will cross-check.
        let stamp = self.next_round_time();
        self.log_op(|| WalOp::Round {
            stamp,
            drain: false,
        })?;
        let batch = self.ingest.take_batch();
        self.metrics.record_batch_taken();
        let result = self.run_round(batch, false).map(|_| ());
        if result.is_ok() {
            self.maybe_checkpoint(false);
        }
        result
    }

    /// Flushes any queued work and runs the engine until every admitted job
    /// completed, returning the drain report.
    pub fn drain(&mut self) -> Result<DrainReport, String> {
        self.check_fault()?;
        let stamp = self.next_round_time();
        self.log_op(|| WalOp::Round { stamp, drain: true })?;
        let batch = self.ingest.take_batch();
        self.metrics.record_batch_taken();
        let trace = self
            .run_round(batch, true)?
            .expect("completing rounds always produce a trace");
        self.maybe_checkpoint(true);
        let submitted = self.world.len() as u64;
        let completed = self.run.as_ref().map_or(0, |r| r.num_completed() as u64);
        Ok(DrainReport {
            virtual_makespan: trace.stats.realized_makespan,
            submitted,
            completed,
            feasible: self.validate(&trace),
            metrics: self.status(),
            trace,
        })
    }

    /// Serialises the engine's truncated checkpoint (live state plus the
    /// harvest watermark — no event history; that lives in the ledger), if a
    /// round ever ran. Together with the service's own durable record (the
    /// submitted world, metrics, ledger) this is the crash-recovery artefact.
    pub fn checkpoint_engine_json(&self) -> Option<String> {
        self.run.as_ref().map(|r| r.checkpoint().to_json())
    }

    /// Drops the live engine and rebuilds it from a checkpoint previously
    /// produced by [`ServiceCore::checkpoint_engine_json`] against the
    /// service's own world record. Service output after a restore is
    /// byte-identical to never having restored (the differential property
    /// test exercises exactly this mid-stream).
    ///
    /// The checkpoint must match the service's *current* durable state: a
    /// stale one (taken before rounds whose events the ledger already
    /// archived) would rewind the engine past harvested history and replay
    /// completions into the metrics and trace, so it is refused.
    pub fn restore_engine_json(&mut self, json: &str) -> Result<(), String> {
        self.check_fault()?;
        let snapshot = SimSnapshot::from_json(json).map_err(|e| e.to_string())?;
        if self.run.is_none() {
            return Err("no live engine to restore (no round has run yet)".to_string());
        }
        if snapshot.num_jobs() != self.grown {
            return Err(format!(
                "checkpoint covers {} jobs but the engine world has {}",
                snapshot.num_jobs(),
                self.grown
            ));
        }
        if snapshot.harvested_events + snapshot.events.len() != self.ledger.len() {
            return Err(format!(
                "stale checkpoint: it accounts for {} events but the ledger archives {}",
                snapshot.harvested_events + snapshot.events.len(),
                self.ledger.len()
            ));
        }
        if snapshot.now.to_bits() != self.virtual_now.to_bits() {
            return Err(format!(
                "stale checkpoint: taken at virtual time {} but the service is at {}",
                snapshot.now, self.virtual_now
            ));
        }
        let d = self.num_resource_types();
        let system = SystemConfig::new(self.capacities_max.clone()).map_err(|e| e.to_string())?;
        let dag = Dag::from_edges(self.grown, &self.edges[..self.edge_cursor])
            .map_err(|e| e.to_string())?;
        let jobs: Vec<MoldableJob> = self.world[..self.grown]
            .iter()
            .map(|w| w.job.clone())
            .collect();
        let instance = Instance::new(system, dag, jobs).map_err(|e| e.to_string())?;
        // Realized placements for started jobs, placeholders for pending
        // ones — the next round's plan diff installs fresh placements for
        // every pending job (placeholders never bit-match).
        let plan = Schedule::new(
            (0..self.grown)
                .map(|j| {
                    if snapshot.started[j] {
                        ScheduledJob {
                            job: j,
                            start: snapshot.start[j],
                            finish: snapshot.finish[j],
                            alloc: snapshot.alloc_used[j].clone(),
                        }
                    } else {
                        placeholder_entry(j, d)
                    }
                })
                .collect(),
        );
        let mut run = PersistentRun::resume(
            instance,
            plan,
            &snapshot,
            self.config.perturbation.clone(),
            None,
        )
        .map_err(|e| e.to_string())?;
        if !self.config.failures.is_failure_free() {
            run.set_failures(self.config.failures.clone());
        }
        // Re-derive the service-side frontier from the restored flags.
        let abandoned = |j: usize| snapshot.abandoned.get(j).copied().unwrap_or(false);
        self.pending = (0..self.grown)
            .filter(|&j| !snapshot.started[j] && !abandoned(j))
            .chain(self.grown..self.world.len())
            .collect();
        self.needs_sync.clear();
        self.run = Some(run);
        self.feed = Some(ChannelSource::feeder());
        Ok(())
    }

    fn check_fault(&self) -> Result<(), String> {
        match &self.fault {
            Some(f) => Err(format!("service faulted: {f}")),
            None => Ok(()),
        }
    }

    /// The virtual time stamped on the next round's events.
    fn next_round_time(&self) -> f64 {
        self.virtual_now.max(self.rounds as f64 * self.config.tick)
    }

    /// Executes one round. `complete` drives the engine until every job
    /// finished (a drain) and returns the realized trace; otherwise the
    /// round pauses at its stamp time.
    fn run_round(&mut self, batch: Batch, complete: bool) -> Result<Option<RealizedTrace>, String> {
        if batch.is_empty() && !complete {
            return Ok(None);
        }
        let wall_start = Instant::now();
        let t = self.next_round_time();
        if !batch.is_empty() {
            self.rounds += 1;
            self.metrics.record_round();
            mrls_obs::counter_add("serve.rounds", 1);
        }
        // Mirror the capacity changes before growing the run so its system
        // covers every capacity the machine ever had.
        for &(resource, capacity) in &batch.capacity_changes {
            self.capacities_now[resource] = capacity;
            self.capacities_max[resource] = self.capacities_max[resource].max(capacity);
        }
        let mut record = RoundRecord::new(self.rounds, complete);
        record.admitted_jobs = batch.jobs.len() as u64;
        record.capacity_changes = batch.capacity_changes.len() as u64;
        let result = self.run_round_inner(&batch, t, complete, &mut record);
        let wall_us = wall_start.elapsed().as_micros() as u64;
        mrls_obs::observe_wall_us("serve.round_us", wall_us);
        mrls_obs::gauge_set("serve.pending_jobs", self.pending.len() as u64);
        // The round's wall-clock budget, as a gauge next to the measured
        // `wall`-namespace latencies (deterministic: derived from config).
        mrls_obs::gauge_set("serve.tick_us", (self.config.tick * 1e6).round() as u64);
        self.obs.absorb(mrls_obs::take());
        match result {
            Ok(trace) => {
                record.wall_us = wall_us;
                record.over_tick =
                    self.config.tick > 0.0 && (wall_us as f64) > self.config.tick * 1e6;
                if record.over_tick {
                    eprintln!(
                        "mrls-serve: flight recorder: round {} exceeded its {}s tick budget: {}",
                        record.round,
                        self.config.tick,
                        serde_json::to_string(&record).expect("flight records serialise"),
                    );
                }
                self.flight.push(record);
                Ok(trace)
            }
            Err(e) => {
                self.fault = Some(e.clone());
                Err(e)
            }
        }
    }

    fn run_round_inner(
        &mut self,
        batch: &Batch,
        t: f64,
        complete: bool,
        record: &mut RoundRecord,
    ) -> Result<Option<RealizedTrace>, String> {
        let desired = mrls_core::time_phase!("plan", self.prepare_round(t)?);
        record.plan_planned = desired.len() as u64;
        // Planned finish times of newly submitted jobs, per tenant, in
        // admission order (`desired[i]` describes `pending[i]`).
        for &j in &batch.jobs {
            let idx = self
                .pending
                .binary_search(&j)
                .expect("freshly admitted jobs are pending");
            let finish = desired[idx].finish;
            let tenant = self.world[j].tenant.clone();
            self.metrics.record_planned(&tenant, finish);
        }
        let run = self.run.as_mut().expect("prepare_round created the run");
        let delta = mrls_core::time_phase!("diff", diff_plan_entries(run.plan(), &desired));
        self.plan_entries_unchanged += delta.unchanged as u64;
        let applied = mrls_core::time_phase!(
            "diff",
            run.apply_plan_updates(&delta.changed)
                .map_err(|e| e.to_string())?
        ) as u64;
        self.plan_updates_applied += applied;
        record.plan_updates = applied;
        record.plan_kept = delta.unchanged as u64;
        mrls_obs::observe("serve.plan_diff.planned", desired.len() as u64);
        mrls_obs::observe("serve.plan_diff.updates", applied);
        mrls_obs::observe("serve.plan_diff.kept", delta.unchanged as u64);

        // Refresh the persistent policy instance over the live frontier:
        // bit-equivalent to building a fresh policy and `on_start`-ing it
        // (the old per-round path), but O(live) instead of O(world). The
        // frontier is pending ∪ running — the same `!completed &&
        // !abandoned` universe the sim's resume path hands a policy. The
        // running jobs' keys are only ever read if a failure returns one of
        // them to the ready set, so failure-free rounds stay bit-identical
        // to the old pending-only frontier.
        let live = {
            let state = run.state();
            let mut live = self.pending.clone();
            live.extend(state.running.iter().map(|r| r.job));
            live.sort_unstable();
            live
        };
        mrls_core::time_phase!(
            "policy",
            self.policy
                .on_plan_update(&run.state(), &live)
                .map_err(|e| e.to_string())?
        );

        let (feeder, source) = self.feed.as_mut().expect("feed lives with the run");
        for &job in &batch.jobs {
            feeder.release(t, job);
        }
        for &(resource, capacity) in &batch.capacity_changes {
            feeder.capacity(t, resource, capacity);
        }
        mrls_core::time_phase!(
            "drive",
            run.drive_prepared(self.policy.as_mut(), source, (!complete).then_some(t))
                .map_err(|e| e.to_string())?
        );

        let _harvest = mrls_core::timing::scope("harvest");
        self.virtual_now = run.now();
        let watermark = run.now();
        let events = run.take_harvested_events();
        let retry_max = self.config.failures.retry.max_attempts;
        let mut started: Vec<usize> = Vec::new();
        for ev in &events {
            match ev {
                TraceEvent::JobStarted { job, .. } => {
                    let tenant = self.world[*job].tenant.clone();
                    self.metrics.record_scheduled(&tenant);
                    started.push(*job);
                }
                TraceEvent::JobCompleted { time, job, .. } => {
                    let tenant = self.world[*job].tenant.clone();
                    self.metrics.record_completed(&tenant, *time);
                    record.completed += 1;
                }
                TraceEvent::JobFailed {
                    time,
                    job,
                    attempt,
                    cause,
                } => {
                    let cascade = *cause == FailCause::Cascade;
                    if !cascade {
                        record.failed += 1;
                        mrls_obs::counter_add("serve.retry.failed_attempts", 1);
                    }
                    if cascade || *attempt >= retry_max {
                        // Terminal: the retry budget is exhausted (or an
                        // ancestor's was) — poison-quarantine the job.
                        let tenant = self.world[*job].tenant.clone();
                        self.metrics.record_quarantined(&tenant);
                        record.quarantined += 1;
                        mrls_obs::counter_add("serve.quarantine.jobs", 1);
                        self.quarantine.push(QuarantineEntry {
                            tenant,
                            job: *job as u64,
                            attempts: *attempt,
                            cause: cause.label(),
                            time: *time,
                        });
                    }
                }
                TraceEvent::JobRetried { job, .. } => {
                    let tenant = self.world[*job].tenant.clone();
                    self.metrics.record_retried(&tenant);
                    mrls_obs::counter_add("serve.retry.retries", 1);
                }
                _ => {}
            }
        }
        record.events_harvested = events.len() as u64;
        record.started = started.len() as u64;
        mrls_obs::counter_add("serve.harvest.events", events.len() as u64);
        self.ledger.absorb(events, watermark);
        if !started.is_empty() || record.failed > 0 || record.quarantined > 0 {
            // Re-derive the frontiers from the engine's flags rather than
            // replaying the event deltas: with failure injection one job can
            // start, fail and restart within a single drive, so only the
            // final flags say whether it is pending, running or gone.
            let state = run.state();
            self.pending = (0..self.grown)
                .filter(|&j| !state.started[j] && !state.abandoned[j])
                .chain(self.grown..self.world.len())
                .collect();
            started.sort_unstable();
            started.dedup();
            started.retain(|&j| state.started[j]);
            self.needs_sync.extend(started);
        }
        record.virtual_time = self.virtual_now;
        record.pending_after = self.pending.len() as u64;
        drop(_harvest);
        let trace = complete.then(|| {
            let run = self.run.as_ref().expect("run outlives the round");
            run.trace_with_prefix(self.config.policy.label(), self.ledger.archived())
        });
        Ok(trace)
    }

    /// Brings the persistent run in sync with the submitted world before a
    /// round: creates it at the first round, otherwise freezes realized
    /// placements of previously started jobs into the plan, grows the run by
    /// the jobs/edges/capacity bounds admitted since, and re-plans the
    /// pending frontier. Returns the desired placements (`[i]` describes
    /// `pending[i]`), ready to be diffed against the in-flight plan.
    fn prepare_round(&mut self, t: f64) -> Result<Vec<ScheduledJob>, String> {
        let d = self.num_resource_types();
        if let Some(run) = self.run.as_mut() {
            run.sync_realized(&self.needs_sync)
                .map_err(|e| e.to_string())?;
            self.needs_sync.clear();
            let n = self.world.len();
            let bounds_changed =
                run.instance().system.capacities() != self.capacities_max.as_slice();
            if n > self.grown || bounds_changed {
                let system =
                    SystemConfig::new(self.capacities_max.clone()).map_err(|e| e.to_string())?;
                let new_jobs: Vec<MoldableJob> = self.world[self.grown..]
                    .iter()
                    .map(|w| w.job.clone())
                    .collect();
                let placeholders: Vec<ScheduledJob> =
                    (self.grown..n).map(|j| placeholder_entry(j, d)).collect();
                run.grow(
                    system,
                    new_jobs,
                    &self.edges[self.edge_cursor..],
                    placeholders,
                )
                .map_err(|e| e.to_string())?;
                self.grown = n;
                self.edge_cursor = self.edges.len();
            }
        } else {
            let n = self.world.len();
            let system =
                SystemConfig::new(self.capacities_max.clone()).map_err(|e| e.to_string())?;
            let dag = Dag::from_edges(n, &self.edges).map_err(|e| e.to_string())?;
            let jobs: Vec<MoldableJob> = self.world.iter().map(|w| w.job.clone()).collect();
            let instance = Instance::new(system, dag, jobs).map_err(|e| e.to_string())?;
            // Nothing has started: the whole world is the pending frontier,
            // planned from scratch and installed as plan placeholders so the
            // uniform diff-and-apply below sees them as fresh.
            let plan = Schedule::new((0..n).map(|j| placeholder_entry(j, d)).collect());
            let mut run = PersistentRun::new(
                instance,
                plan,
                self.config.seed,
                self.config.perturbation.clone(),
                None,
                vec![false; n],
            )
            .map_err(|e| e.to_string())?;
            if !self.config.failures.is_failure_free() {
                run.set_failures(self.config.failures.clone());
            }
            self.run = Some(run);
            self.feed = Some(ChannelSource::feeder());
            self.grown = n;
            self.edge_cursor = self.edges.len();
        }
        let run = self.run.as_ref().expect("created above");
        plan_pending(
            run.instance(),
            &self.capacities_now,
            &self.pending,
            t,
            &self.config.scheduler,
        )
    }

    /// Validates the realized schedule of a drained world
    /// (capacity/precedence feasibility, durations relaxed).
    fn validate(&self, trace: &RealizedTrace) -> bool {
        let Some(run) = self.run.as_ref() else {
            return self.world.is_empty();
        };
        if run.instance().num_jobs() == 0 {
            return true;
        }
        validate_schedule_with(
            run.instance(),
            &trace.realized,
            ValidationOptions {
                check_durations: false,
            },
        )
        .is_valid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrls_model::ExecTimeSpec;

    fn config() -> ServeConfig {
        ServeConfig {
            capacities: vec![4, 4],
            tick: 1.0,
            ..ServeConfig::default()
        }
    }

    fn job(time: f64) -> MoldableJob {
        MoldableJob::new(0, ExecTimeSpec::Constant { time })
    }

    #[test]
    fn submit_flush_drain_completes_everything() {
        let mut core = ServiceCore::new(config());
        let a = core.submit_job("alice", job(2.0), &[]).unwrap();
        let b = core.submit_job("alice", job(1.0), &[a]).unwrap();
        assert_eq!((a, b), (0, 1));
        core.flush().unwrap();
        let ids = core
            .submit_dag("bob", vec![job(1.0), job(1.0)], &[(0, 1)])
            .unwrap();
        assert_eq!(ids, vec![2, 3]);
        let report = core.drain().unwrap();
        assert_eq!(report.submitted, 4);
        assert_eq!(report.completed, 4);
        assert!(report.feasible);
        assert!(report.virtual_makespan >= 3.0 - 1e-9);
        let alice = &report.metrics.tenants["alice"];
        assert_eq!((alice.submitted, alice.completed), (2, 2));
        // Draining again is idempotent.
        let again = core.drain().unwrap();
        assert_eq!(again.completed, 4);
    }

    #[test]
    fn rounds_overlap_in_virtual_time() {
        let mut core = ServiceCore::new(config());
        core.submit_job("a", job(10.0), &[]).unwrap();
        core.flush().unwrap();
        // The first job is still running at the second round's stamp.
        core.submit_job("a", job(1.0), &[]).unwrap();
        core.flush().unwrap();
        let report = core.drain().unwrap();
        let starts: Vec<f64> = report.trace.realized.jobs.iter().map(|j| j.start).collect();
        assert_eq!(starts, vec![0.0, 1.0], "second round stamped at tick");
        assert!((report.virtual_makespan - 10.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_changes_land_in_their_round() {
        let mut core = ServiceCore::new(config());
        core.submit_job("a", job(5.0), &[]).unwrap();
        core.flush().unwrap();
        core.submit_capacity(0, 2).unwrap();
        core.flush().unwrap();
        let report = core.drain().unwrap();
        assert!(report.feasible);
        assert!(report
            .trace
            .events
            .iter()
            .any(|e| matches!(e, mrls_sim::TraceEvent::CapacityChanged { capacity: 2, .. })));
        // A recovery above the initial capacity is also honoured.
        core.submit_capacity(0, 6).unwrap();
        core.submit_job("a", job(1.0), &[]).unwrap();
        let report = core.drain().unwrap();
        assert!(report.feasible);
        assert_eq!(report.completed, 2);
    }

    #[test]
    fn invalid_submissions_are_rejected() {
        let mut core = ServiceCore::new(config());
        // Unknown dependency.
        assert!(core.submit_job("a", job(1.0), &[5]).is_err());
        // Wrong dimensionality.
        let bad = MoldableJob::new(
            0,
            ExecTimeSpec::Amdahl {
                seq: 1.0,
                work: vec![1.0, 1.0, 1.0],
            },
        );
        assert!(core.submit_job("a", bad, &[]).is_err());
        // Non-positive execution time.
        assert!(core.submit_job("a", job(0.0), &[]).is_err());
        // Cyclic DAG.
        assert!(core
            .submit_dag("a", vec![job(1.0), job(1.0)], &[(0, 1), (1, 0)])
            .is_err());
        // Empty DAG.
        assert!(core.submit_dag("a", vec![], &[]).is_err());
        // Bad capacity change.
        assert!(core.submit_capacity(7, 2).is_err());
        assert!(core.submit_capacity(0, 0).is_err());
        // Rejections count jobs: 1 + 1 + 1 + 2 (cyclic DAG) + 1 (empty DAG).
        assert_eq!(core.status().jobs_rejected, 6);
        // Nothing was admitted, so draining completes trivially.
        let report = core.drain().unwrap();
        assert_eq!(report.submitted, 0);
        assert!(report.feasible);
    }

    #[test]
    fn backpressure_rejects_over_the_limit() {
        let mut core = ServiceCore::new(ServeConfig {
            capacities: vec![4, 4],
            max_pending_jobs: 2,
            ..ServeConfig::default()
        });
        core.submit_job("a", job(1.0), &[]).unwrap();
        core.submit_job("a", job(1.0), &[]).unwrap();
        let err = core.submit_job("a", job(1.0), &[]).unwrap_err();
        assert!(err.contains("backpressure"), "{err}");
        core.flush().unwrap();
        // The queue emptied: admissions resume.
        core.submit_job("a", job(1.0), &[]).unwrap();
        let report = core.drain().unwrap();
        assert_eq!(report.submitted, 3);
        assert_eq!(report.completed, 3);
    }

    #[test]
    fn same_submission_order_is_byte_identical() {
        let run = || {
            let mut core = ServiceCore::new(config());
            core.submit_dag("a", vec![job(2.0), job(1.0)], &[(0, 1)])
                .unwrap();
            core.flush().unwrap();
            core.submit_job("b", job(3.0), &[]).unwrap();
            core.flush().unwrap();
            core.submit_capacity(1, 2).unwrap();
            core.flush().unwrap();
            let report = core.drain().unwrap();
            (
                serde_json::to_string(&report.metrics).unwrap(),
                report.trace.to_json(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn engine_retains_no_events_between_rounds() {
        let mut core = ServiceCore::new(config());
        for i in 0..5 {
            core.submit_job("a", job(1.0 + i as f64), &[]).unwrap();
            core.flush().unwrap();
            let stats = core.round_state_stats();
            assert_eq!(
                stats.retained_events, 0,
                "round {i}: events must be harvested into the ledger"
            );
        }
        let stats = core.round_state_stats();
        assert!(stats.archived_events > 0);
        // The truncated checkpoint carries no history.
        let snapshot = SimSnapshot::from_json(&core.checkpoint_engine_json().unwrap()).unwrap();
        assert!(snapshot.events.is_empty());
        assert_eq!(snapshot.harvested_events, stats.archived_events);
        let report = core.drain().unwrap();
        assert_eq!(report.completed, 5);
        // The drain trace is complete despite the truncation: the ledger
        // re-attaches the archive.
        assert_eq!(
            report.trace.events.len(),
            core.round_state_stats().archived_events
        );
    }

    #[test]
    fn steady_state_skips_unchanged_placements() {
        let mut core = ServiceCore::new(config());
        for _ in 0..4 {
            core.submit_job("a", job(50.0), &[]).unwrap();
            core.flush().unwrap();
        }
        // Long jobs pile up pending behind capacity; re-planning them every
        // round must find at least some placements it can skip.
        core.flush().unwrap();
        let stats = core.round_state_stats();
        assert!(
            stats.plan_entries_unchanged > 0 || stats.plan_updates_applied > 0,
            "diff counters must move"
        );
    }

    #[test]
    fn timing_snapshot_attributes_round_phases() {
        let mut core = ServiceCore::new(ServeConfig {
            capacities: vec![4, 4],
            timing: true,
            ..ServeConfig::default()
        });
        core.submit_job("a", job(2.0), &[]).unwrap();
        core.flush().unwrap();
        let snap = core.status();
        let phases: Vec<&str> = snap.timings.iter().map(|t| t.phase.as_str()).collect();
        for p in ["diff", "drive", "harvest", "plan", "policy"] {
            assert!(phases.contains(&p), "missing phase {p} in {phases:?}");
        }
        assert!(snap.timings.iter().all(|t| t.calls > 0));
        // The query drains the registry: a second one reports only rounds
        // that ran since (none).
        assert!(core.status().timings.is_empty());
        // Snapshots of a timing-off core stay empty (and byte-stable) even
        // while another core enabled collection process-wide.
        let mut plain = ServiceCore::new(config());
        plain.submit_job("a", job(1.0), &[]).unwrap();
        plain.flush().unwrap();
        assert!(plain.status().timings.is_empty());
    }

    #[test]
    fn restore_from_checkpoint_is_transparent() {
        let script = |restore_at: Option<usize>| {
            let mut core = ServiceCore::new(config());
            for i in 0..6 {
                core.submit_job(if i % 2 == 0 { "a" } else { "b" }, job(1.5), &[])
                    .unwrap();
                core.flush().unwrap();
                if restore_at == Some(i) {
                    let json = core.checkpoint_engine_json().unwrap();
                    core.restore_engine_json(&json).unwrap();
                }
            }
            let report = core.drain().unwrap();
            (
                serde_json::to_string(&report.metrics).unwrap(),
                report.trace.to_json(),
            )
        };
        let baseline = script(None);
        assert_eq!(baseline, script(Some(2)));
        assert_eq!(baseline, script(Some(5)));
    }

    #[test]
    fn restore_rejects_garbage_and_mismatched_checkpoints() {
        let mut core = ServiceCore::new(config());
        assert!(core.restore_engine_json("{not json").is_err());
        core.submit_job("a", job(1.0), &[]).unwrap();
        core.flush().unwrap();
        let json = core.checkpoint_engine_json().unwrap();
        // A world-size mismatch is refused.
        core.submit_job("a", job(1.0), &[]).unwrap();
        core.flush().unwrap();
        assert!(core.restore_engine_json(&json).is_err());
        assert!(core.fault().is_none(), "a refused restore must not poison");
        let report = core.drain().unwrap();
        assert_eq!(report.completed, 2);
    }

    fn temp_dir() -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mrls-service-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_config(dir: &std::path::Path) -> ServeConfig {
        ServeConfig {
            capacities: vec![4, 4],
            tick: 1.0,
            durability: DurabilityMode::Buffered,
            dir: Some(dir.to_path_buf()),
            checkpoint_every_rounds: 2,
            ..ServeConfig::default()
        }
    }

    /// Drives the same op script against any core; the durability layer must
    /// be output-transparent for it.
    fn script(core: &mut ServiceCore) {
        core.submit_job("a", job(2.0), &[]).unwrap();
        core.submit_job("b", job(1.5), &[0]).unwrap();
        core.flush().unwrap();
        core.submit_dag("a", vec![job(1.0), job(1.0)], &[(0, 1)])
            .unwrap();
        core.submit_capacity(0, 2).unwrap();
        // A rejection: must replay identically (it mutates metrics).
        assert!(core.submit_job("b", job(1.0), &[99]).is_err());
        core.flush().unwrap();
        core.submit_job("b", job(0.5), &[2]).unwrap();
        core.flush().unwrap();
    }

    fn fingerprint(core: &mut ServiceCore) -> (String, String, String) {
        let status = serde_json::to_string(&core.status()).unwrap();
        let digests: Vec<_> = core.flight_records().iter().map(|r| r.digest()).collect();
        let report = core.drain().unwrap();
        (
            status,
            serde_json::to_string(&digests).unwrap(),
            serde_json::to_string(&report).unwrap(),
        )
    }

    #[test]
    fn recovered_core_is_byte_identical_to_uninterrupted() {
        let dir = temp_dir();
        let (mut durable, report) = ServiceCore::open(durable_config(&dir)).unwrap();
        assert!(report.is_none(), "a fresh directory has nothing to recover");
        script(&mut durable);
        // Unflushed admissions after the last round: logged, not yet rounded.
        durable.submit_job("a", job(3.0), &[]).unwrap();
        drop(durable); // crash

        let (mut recovered, report) = ServiceCore::recover(durable_config(&dir)).unwrap();
        assert_eq!(report.truncated_bytes, 0, "clean log, nothing torn");
        assert!(report.checkpoint_round.is_some(), "cadence 2 wrote one");

        let mut reference = ServiceCore::new(ServeConfig {
            capacities: vec![4, 4],
            tick: 1.0,
            ..ServeConfig::default()
        });
        script(&mut reference);
        reference.submit_job("a", job(3.0), &[]).unwrap();

        assert_eq!(fingerprint(&mut recovered), fingerprint(&mut reference));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_from_genesis_matches_checkpoint_recovery() {
        let dir = temp_dir();
        let (mut durable, _) = ServiceCore::open(durable_config(&dir)).unwrap();
        script(&mut durable);
        drop(durable);
        let (mut a, ra) = ServiceCore::recover(durable_config(&dir)).unwrap();
        let (mut b, rb) = ServiceCore::recover_from_genesis(durable_config(&dir)).unwrap();
        assert!(ra.checkpoint_round.is_some());
        assert_eq!(rb.checkpoint_round, None);
        assert!(rb.replayed_records > ra.replayed_records);
        assert_eq!(fingerprint(&mut a), fingerprint(&mut b));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_refuses_a_mismatched_configuration() {
        let dir = temp_dir();
        let (mut durable, _) = ServiceCore::open(durable_config(&dir)).unwrap();
        script(&mut durable);
        drop(durable);
        let mut other = durable_config(&dir);
        other.capacities = vec![8, 8];
        let err = ServiceCore::recover(other).unwrap_err();
        assert!(err.to_string().contains("different configuration"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durability_status_tracks_log_and_checkpoints() {
        let dir = temp_dir();
        let (mut core, _) = ServiceCore::open(durable_config(&dir)).unwrap();
        let before = core.durability_status();
        assert_eq!(before.mode, "buffered");
        assert_eq!(before.recoveries, 0);
        script(&mut core);
        let after = core.durability_status();
        // 5 submissions (one rejected) + 1 capacity + 3 rounds = 9 records.
        assert_eq!(after.wal_records, 9);
        assert!(after.wal_bytes > before.wal_bytes);
        assert!(after.checkpoints_written >= 1);
        assert!(after.last_checkpoint_seq.is_some());
        drop(core);
        let (core, _) = ServiceCore::recover(durable_config(&dir)).unwrap();
        let status = core.durability_status();
        assert_eq!(status.recoveries, 1);
        // The log grew by the `Recovered` audit record.
        assert_eq!(status.wal_records, 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plain_cores_stay_log_free() {
        let mut core = ServiceCore::new(config());
        core.submit_job("a", job(1.0), &[]).unwrap();
        core.flush().unwrap();
        let status = core.durability_status();
        assert_eq!(status.mode, "off");
        assert_eq!((status.wal_records, status.wal_bytes), (0, 0));
        assert_eq!(status.checkpoints_written, 0);
    }

    #[test]
    fn restore_rejects_stale_checkpoints_with_matching_world_size() {
        // A checkpoint taken earlier can cover the same *number* of jobs but
        // predate history the ledger already archived; restoring it would
        // rewind the engine and replay completions into metrics and trace.
        let mut core = ServiceCore::new(config());
        core.submit_job("a", job(50.0), &[]).unwrap();
        core.flush().unwrap();
        let stale = core.checkpoint_engine_json().unwrap();
        // Capacity-only rounds: the world size stays 1, but new events land
        // in the ledger and virtual time advances.
        core.submit_capacity(0, 2).unwrap();
        core.flush().unwrap();
        let err = core.restore_engine_json(&stale).unwrap_err();
        assert!(err.contains("stale"), "{err}");
        assert!(core.fault().is_none());
        let report = core.drain().unwrap();
        assert_eq!(report.completed, 1);
        assert_eq!(report.metrics.jobs_completed, 1, "no replayed completions");
        let completions = report
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobCompleted { .. }))
            .count();
        assert_eq!(completions, 1, "the trace must not double-count");
    }
}
