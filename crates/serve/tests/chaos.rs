//! Chaos smoke: connections die mid-stream and the system shrugs.
//!
//! Two layers of abuse. A **fake flaky server** drops the connection after
//! reading a submission without replying — the resilient client must
//! reconnect with capped backoff and resend the *same frame* (same
//! correlation id, same idempotency token), so the real server's dedup
//! window can collapse the replay. And a **real server under failure
//! injection** fed a paced tokened stream by a client that is killed and
//! recreated mid-stream, resending an overlap window of tokens: the server
//! must admit every distinct token exactly once, drain cleanly, and account
//! for every job as completed or quarantined.

use mrls_model::{ExecTimeSpec, MoldableJob};
use mrls_serve::{
    encode_line, read_frame, Client, ClientError, Response, ResponseBody, RetryConfig, ServeConfig,
    Server,
};
use mrls_sim::{FailureModel, FailurePlan, RetryPolicy};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::time::Duration;

fn job(time: f64) -> MoldableJob {
    MoldableJob::new(0, ExecTimeSpec::Constant { time })
}

/// The fake flaky server: drops the first connection after reading the
/// submission (no reply), then serves the resent frame on the second
/// connection — asserting it is byte-identical to the first.
#[test]
fn client_reconnects_and_resends_the_same_frame() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let server = std::thread::spawn(move || {
        // Connection 1: read the frame, say nothing, hang up.
        let (conn, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(conn);
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        drop(reader); // the "crash"

        // Connection 2: the client reconnected; the frame must be identical.
        let (conn, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut second = String::new();
        reader.read_line(&mut second).unwrap();
        assert_eq!(
            first, second,
            "the resent frame must be byte-identical (same id, same token)"
        );
        assert!(second.contains(r#""token":"chaos-1""#), "{second}");
        // Answer with the id the frame carried.
        let id = mrls_serve::probe_request_id(&second);
        let reply = Response {
            id,
            body: ResponseBody::Accepted { jobs: vec![7] },
        };
        let mut writer = conn;
        writer.write_all(encode_line(&reply).as_bytes()).unwrap();
        first
    });

    let mut client = Client::connect(addr, "t").unwrap().with_retry(RetryConfig {
        max_attempts: 3,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(5),
    });
    let id = client
        .submit_job_with_token(job(1.0), vec![], "chaos-1")
        .unwrap();
    assert_eq!(id, 7);
    server.join().unwrap();
}

/// With retries disabled, the same flaky server surfaces the typed
/// disconnect instead of hiding it.
#[test]
fn without_retry_a_dropped_connection_is_a_typed_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (conn, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(conn);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        // hang up without replying
    });
    let mut client = Client::connect(addr, "t")
        .unwrap()
        .with_retry(RetryConfig::none());
    let err = client
        .submit_job_with_token(job(1.0), vec![], "tok")
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Disconnected(_)),
        "expected Disconnected, got {err:?}"
    );
    server.join().unwrap();
}

/// A malformed reply is the other typed error, and is never retried (the
/// stream position is untrustworthy, and resending would not help).
#[test]
fn a_malformed_reply_is_a_typed_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (conn, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let mut writer = conn;
        writer.write_all(b"{ not json at all\n").unwrap();
    });
    let mut client = Client::connect(addr, "t").unwrap();
    let err = client
        .submit_job_with_token(job(1.0), vec![], "tok")
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Malformed(_)),
        "expected Malformed, got {err:?}"
    );
    server.join().unwrap();
}

/// The end-to-end chaos smoke: a real server under failure injection, a
/// paced tokened stream, the client killed and recreated twice mid-stream
/// with an overlap window of resent tokens. Every distinct token admits
/// exactly once; the drain is clean; completed + quarantined accounts for
/// every admitted job.
#[test]
fn killed_clients_resend_tokens_without_duplicate_admissions() {
    let handle = Server::spawn(
        ServeConfig {
            capacities: vec![4, 4],
            batch_window: Duration::ZERO,
            failures: FailurePlan {
                model: FailureModel::Random { prob: 0.3 },
                outages: vec![],
                retry: RetryPolicy {
                    max_attempts: 2,
                    backoff_base: 0.25,
                    backoff_factor: 2.0,
                },
            },
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind loopback");

    const JOBS: usize = 24;
    const OVERLAP: usize = 4; // tokens resent after each "crash"
    let crash_points = [8usize, 17];

    let mut ids = vec![None::<u64>; JOBS];
    let mut client = Client::connect(handle.addr(), "stream").unwrap();
    let mut crashed = [false; 2];
    let mut i = 0;
    while i < JOBS {
        let crash_now = crash_points
            .iter()
            .position(|&p| p == i)
            .is_some_and(|k| !std::mem::replace(&mut crashed[k], true));
        if crash_now {
            // Kill the client (drop the socket mid-stream) and start over
            // from a few tokens back — the crashed client never learned
            // whether its tail submissions were admitted.
            drop(client);
            client = Client::connect(handle.addr(), "stream").unwrap();
            i = i.saturating_sub(OVERLAP);
        }
        let token = format!("stream-{i}");
        let id = client
            .submit_job_with_token(job(0.5 + (i % 5) as f64 * 0.25), vec![], &token)
            .unwrap();
        if let Some(seen) = ids[i] {
            assert_eq!(seen, id, "token {token} admitted twice with new id {id}");
        }
        ids[i] = Some(id);
        i += 1;
    }

    let status = client.status().unwrap();
    assert_eq!(
        status.jobs_submitted, JOBS as u64,
        "resent tokens must not admit twice"
    );
    let report = client.drain().unwrap();
    assert!(report.feasible, "the drained schedule must validate");
    let quarantined = client.quarantine().unwrap().len() as u64;
    assert_eq!(
        report.completed + quarantined,
        JOBS as u64,
        "every admitted job is either completed or quarantined"
    );
    // All ids are distinct and dense: exactly one admission per token.
    let mut seen: Vec<u64> = ids.iter().map(|id| id.unwrap()).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), JOBS);

    client.shutdown().unwrap();
    handle.join();
}

/// `read_frame` is used directly by the chaos harness above; pin its EOF
/// contract here so the fake servers stay honest.
#[test]
fn read_frame_reports_clean_eof_as_none() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let t = std::thread::spawn(move || {
        let (conn, _) = listener.accept().unwrap();
        drop(conn);
    });
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream);
    assert_eq!(read_frame(&mut reader, 1 << 16).unwrap(), None);
    t.join().unwrap();
}
