//! End-to-end observability tests: the `QueryMetrics` protocol verb over
//! loopback TCP, byte-identical obs snapshots across same-order runs (with
//! the wall-clock namespace stripped), Prometheus rendering of a live
//! scrape, and Chrome trace-event export of a drained run's realized trace.

use mrls_obs::Snapshot;
use mrls_serve::{Client, DrainReport, ServeConfig, Server};
use mrls_sim::{FailureModel, FailurePlan, PolicyKind, RetryPolicy};
use mrls_workload::InstanceRecipe;
use std::time::Duration;

/// Drives a fixed 2-tenant stream (one DAG, chained singletons, one
/// validation reject, one capacity drop) against a fresh server and returns
/// the drain report plus the obs snapshot queried right after the drain.
fn run_stream() -> (DrainReport, Snapshot) {
    let handle = Server::spawn(
        ServeConfig {
            capacities: vec![8, 8],
            policy: PolicyKind::FullReschedule,
            batch_window: Duration::ZERO,
            tick: 1.0,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let addr = handle.addr();

    let mut alice = Client::connect(addr, "alice").unwrap();
    let mut bob = Client::connect(addr, "bob").unwrap();

    let dag = InstanceRecipe::default_layered(8, 2, 8)
        .generate(21)
        .instance;
    let ids = alice
        .submit_dag(dag.jobs.clone(), dag.dag.edges().collect())
        .unwrap();
    assert_eq!(ids.len(), 8);

    let singles = InstanceRecipe::default_layered(4, 2, 8)
        .generate(22)
        .instance;
    let mut prev: Option<u64> = None;
    for job in singles.jobs.clone() {
        let deps = prev.map(|p| vec![p]).unwrap_or_default();
        prev = Some(bob.submit_job(job, deps).unwrap());
    }

    // One validation reject: a dependency on an id the server never issued
    // must be refused, and lands in the per-reason reject counter.
    let bad = singles.jobs[0].clone();
    assert!(bob.submit_job(bad, vec![9999]).is_err());

    bob.change_capacity(0, 4).unwrap();

    let report = alice.drain().unwrap();
    let snap = alice.metrics().unwrap();
    alice.shutdown().unwrap();
    handle.join();
    (report, snap)
}

#[test]
fn query_metrics_reflects_the_run_and_is_deterministic() {
    let (report, snap) = run_stream();
    assert_eq!(report.completed, report.submitted);

    // Serve-layer counters agree with the protocol-level metrics.
    assert_eq!(
        snap.counters.get("serve.rounds").copied(),
        Some(report.metrics.rounds)
    );
    assert_eq!(
        snap.counters.get("serve.admitted_jobs").copied(),
        Some(report.submitted)
    );
    assert_eq!(
        snap.counters.get("serve.rejected.validation").copied(),
        Some(1)
    );

    // The instrumented layers below serve all contributed: the scheduling
    // core, the sim engine, and the per-round plan-diff distributions.
    let keys: Vec<&String> = snap.counters.keys().collect();
    assert!(
        keys.iter().any(|k| k.starts_with("core.")),
        "no core counters in {keys:?}"
    );
    assert!(
        keys.iter().any(|k| k.starts_with("sim.engine.")),
        "no engine counters in {keys:?}"
    );
    assert!(snap.histograms.contains_key("serve.plan_diff.updates"));
    assert!(snap.histograms.contains_key("serve.plan_diff.planned"));

    // Wall-clock timings exist but live in their own namespace: one sample
    // per executed round, plus the batch-empty completion rounds a drain
    // runs (timed but not counted as batching rounds).
    let round_us = snap.wall.get("serve.round_us").expect("wall round timing");
    assert!(
        round_us.count >= report.metrics.rounds,
        "{} wall samples < {} rounds",
        round_us.count,
        report.metrics.rounds
    );

    // Same-order reruns are byte-identical once the wall namespace is
    // stripped — the snapshot-determinism invariant pinned in ROADMAP.md.
    let (report2, snap2) = run_stream();
    assert_eq!(
        serde_json::to_string(&report.metrics).unwrap(),
        serde_json::to_string(&report2.metrics).unwrap(),
        "protocol metrics diverged between identical runs"
    );
    assert_eq!(
        snap.deterministic().to_json(),
        snap2.deterministic().to_json(),
        "obs snapshots diverged between identical runs"
    );
}

/// A failure-injected server surfaces the `serve.retry.*` and
/// `serve.quarantine.*` counters in `QueryMetrics`, and they agree exactly
/// with the quarantine contents at drain. Independent singletons only, so
/// there are no cascades and every failed attempt is either retried or
/// terminal: `failed_attempts = retries + quarantined`.
#[test]
fn retry_and_quarantine_counters_reach_query_metrics() {
    let handle = Server::spawn(
        ServeConfig {
            capacities: vec![8, 8],
            batch_window: Duration::ZERO,
            failures: FailurePlan {
                model: FailureModel::Random { prob: 0.5 },
                outages: vec![],
                retry: RetryPolicy {
                    max_attempts: 2,
                    backoff_base: 0.25,
                    backoff_factor: 2.0,
                },
            },
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind loopback");

    let mut client = Client::connect(handle.addr(), "t").unwrap();
    let singles = InstanceRecipe::default_layered(12, 2, 8)
        .generate(33)
        .instance;
    for job in singles.jobs.clone() {
        client.submit_job(job, vec![]).unwrap();
    }
    let report = client.drain().unwrap();
    let snap = client.metrics().unwrap();
    let quarantined = client.quarantine().unwrap().len() as u64;
    client.shutdown().unwrap();
    handle.join();

    let counter = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
    let failed = counter("serve.retry.failed_attempts");
    assert!(failed > 0, "the 50% failure plan must produce failed attempts");
    assert_eq!(
        counter("serve.quarantine.jobs"),
        quarantined,
        "quarantine counter must equal the quarantine contents"
    );
    assert_eq!(
        failed,
        counter("serve.retry.retries") + quarantined,
        "every failed attempt is either retried or terminal"
    );
    assert_eq!(
        report.completed + quarantined,
        12,
        "completed + quarantined must account for every admitted job"
    );
}

#[test]
fn flight_recorder_over_tcp_is_bounded_and_deterministic() {
    let run_flight = || {
        let handle = Server::spawn(
            ServeConfig {
                capacities: vec![8, 8],
                policy: PolicyKind::FullReschedule,
                batch_window: Duration::ZERO,
                tick: 1.0,
                ..ServeConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr(), "carol").unwrap();
        let jobs = InstanceRecipe::default_layered(5, 2, 8)
            .generate(31)
            .instance;
        let mut prev: Option<u64> = None;
        for job in jobs.jobs.clone() {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(client.submit_job(job, deps).unwrap());
        }
        let report = client.drain().unwrap();
        let (rounds, total) = client.flight_recorder().unwrap();
        client.shutdown().unwrap();
        handle.join();
        (report, rounds, total)
    };

    let (report, rounds, total) = run_flight();
    assert!(!rounds.is_empty(), "rounds must be recorded");
    assert!(rounds.len() <= mrls_serve::FLIGHT_RECORDER_CAPACITY);
    assert_eq!(total, rounds.len() as u64, "nothing evicted at this scale");
    let last = rounds.last().unwrap();
    assert!(last.drain, "the drain is the last recorded round");
    assert_eq!(last.pending_after, 0, "a drain leaves nothing pending");
    let admitted: u64 = rounds.iter().map(|r| r.admitted_jobs).sum();
    assert_eq!(admitted, report.submitted);
    let completed: u64 = rounds.iter().map(|r| r.completed).sum();
    assert_eq!(completed, report.completed);
    assert!(
        rounds.iter().all(|r| r.events_harvested > 0),
        "every recorded round processed engine events"
    );

    // The deterministic digest projection is byte-identical across
    // same-order reruns; the raw records are not (wall_us is measurement).
    let digest_json = |records: &[mrls_serve::RoundRecord]| {
        let digests: Vec<_> = records.iter().map(|r| r.digest()).collect();
        serde_json::to_string(&digests).unwrap()
    };
    let (_, rounds2, _) = run_flight();
    assert_eq!(
        digest_json(&rounds),
        digest_json(&rounds2),
        "flight digests diverged between identical runs"
    );
}

#[test]
fn live_scrape_renders_valid_prometheus_text() {
    let (_report, snap) = run_stream();
    let text = snap.render_prometheus();
    let samples = mrls_obs::prometheus::validate(&text).expect("valid exposition format");
    assert!(samples > 10, "only {samples} samples:\n{text}");
    assert!(text.contains("# TYPE mrls_serve_rounds counter\n"));
    assert!(text.contains("# TYPE mrls_serve_plan_diff_updates histogram\n"));
    // Wall-clock series are prefix-separated so a scrape can drop them.
    assert!(text.contains("mrls_wall_serve_round_us_count"));
}

#[test]
fn drained_trace_exports_valid_chrome_json() {
    let (report, _snap) = run_stream();
    let text = report.trace.to_chrome_trace_json();
    let doc = mrls_obs::chrome::validate(&text).expect("valid trace-event JSON");
    assert!(
        doc.spans_and_instants >= report.completed as usize,
        "expected at least one span per completed job: {doc:?}"
    );
}
