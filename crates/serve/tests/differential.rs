//! The differential harness: the incremental [`ServiceCore`] driven
//! side-by-side with the [`NaiveService`] reference (the original
//! checkpoint→clone→resume path) over randomized submission streams.
//!
//! After **every** operation the two services must agree byte-for-byte:
//! identical accept/reject replies, identical metrics JSON, and at the final
//! drain identical report JSON — which covers the realized trace (event log,
//! schedule, stress stats) down to the last bit. Mid-stream the incremental
//! core is additionally checkpointed and restored from JSON (`Recycle`),
//! which must be output-transparent.

use mrls_model::{ExecTimeSpec, MoldableJob};
use mrls_serve::{NaiveService, ServeConfig, ServiceCore};
use mrls_sim::{FailureModel, FailurePlan, Outage, PerturbationModel, PolicyKind, RetryPolicy};
use proptest::prelude::*;

const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

/// One step of a randomized submission stream. Dependency and DAG payloads
/// are encoded relative (offsets, chain flags) so the generated stream stays
/// valid — or invalid in interesting ways — whatever the world size is when
/// it executes.
#[derive(Debug, Clone)]
enum Op {
    /// Submit one moldable job for `tenant` with `deps` encoded as offsets
    /// back from the newest job id (an offset on an empty world produces an
    /// unknown-dependency rejection, equal on both paths).
    Job {
        tenant: u8,
        time_centi: u16,
        amdahl: bool,
        deps: Vec<u8>,
    },
    /// Submit a small DAG (chain or independent set) atomically.
    Dag {
        tenant: u8,
        times_centi: Vec<u16>,
        chain: bool,
    },
    /// Change a resource's capacity (resource 2 does not exist and capacity
    /// 0 is invalid — both must be rejected identically).
    Capacity { resource: u8, capacity: u8 },
    /// Query the metrics snapshot.
    Query,
    /// Close the batching window: run one scheduling round.
    Flush,
    /// Checkpoint the incremental engine to JSON and rebuild it from that
    /// JSON (no-op on the naive reference): must be output-transparent.
    Recycle,
}

fn job_spec(time_centi: u16, amdahl: bool) -> MoldableJob {
    let time = 0.25 + f64::from(time_centi) / 100.0;
    let spec = if amdahl {
        ExecTimeSpec::Amdahl {
            seq: 0.1 + time / 4.0,
            work: vec![time * 2.0, time],
        }
    } else {
        ExecTimeSpec::Constant { time }
    };
    MoldableJob::new(0, spec)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0u8..3,
            0u16..300,
            proptest::bool::Any,
            proptest::collection::vec(0u8..6, 0..3),
        )
            .prop_map(|(tenant, time_centi, amdahl, deps)| Op::Job {
                tenant,
                time_centi,
                amdahl,
                deps,
            }),
        (
            0u8..3,
            proptest::collection::vec(0u16..200, 1..4),
            proptest::bool::Any
        )
            .prop_map(|(tenant, times_centi, chain)| Op::Dag {
                tenant,
                times_centi,
                chain,
            }),
        (0u8..3, 0u8..5).prop_map(|(resource, capacity)| Op::Capacity { resource, capacity }),
        Just(Op::Query),
        Just(Op::Flush),
        Just(Op::Flush),
        Just(Op::Recycle),
    ]
}

/// The incremental core and the naive reference, fed in lockstep.
struct Pair {
    incremental: ServiceCore,
    naive: NaiveService,
}

impl Pair {
    fn new(policy: PolicyKind, perturbation: PerturbationModel) -> Self {
        Pair::with_config(ServeConfig {
            capacities: vec![4, 4],
            policy,
            perturbation,
            max_pending_jobs: 24,
            seed: 11,
            ..ServeConfig::default()
        })
    }

    fn with_config(config: ServeConfig) -> Self {
        Pair {
            incremental: ServiceCore::new(config.clone()),
            naive: NaiveService::new(config),
        }
    }

    fn assert_agreement(&self, context: &str) {
        assert_eq!(
            serde_json::to_string(&self.incremental.status()).unwrap(),
            serde_json::to_string(&self.naive.status()).unwrap(),
            "metrics diverged {context}"
        );
        assert_eq!(
            self.incremental.fault().map(str::to_string),
            self.naive.fault().map(str::to_string),
            "fault state diverged {context}"
        );
        // The flight recorder's deterministic projection must agree too:
        // same rounds, same counts, same virtual times (wall-clock fields
        // are excluded by the digest).
        let flights: Vec<_> = self
            .incremental
            .flight_records()
            .iter()
            .map(|r| r.digest())
            .collect();
        assert_eq!(
            flights,
            self.naive.flight_digests(),
            "flight digests diverged {context}"
        );
        // The poison quarantine — tenant, job, attempt count, cause label
        // and virtual quarantine time of every entry — byte-for-byte.
        assert_eq!(
            serde_json::to_string(&self.incremental.quarantine()).unwrap(),
            serde_json::to_string(&self.naive.quarantine()).unwrap(),
            "quarantine diverged {context}"
        );
    }

    fn step(&mut self, i: usize, op: &Op) {
        match op {
            Op::Job {
                tenant,
                time_centi,
                amdahl,
                deps,
            } => {
                let tenant = TENANTS[*tenant as usize];
                let n = self.incremental.status().jobs_submitted;
                let deps: Vec<u64> = deps
                    .iter()
                    .map(|&off| {
                        if n == 0 {
                            u64::from(off) // dangling: rejected on both paths
                        } else {
                            n - 1 - (u64::from(off) % n)
                        }
                    })
                    .collect();
                let job = job_spec(*time_centi, *amdahl);
                let a = self.incremental.submit_job(tenant, job.clone(), &deps);
                let b = self.naive.submit_job(tenant, job, &deps);
                assert_eq!(a, b, "submit_job replies diverged at op {i}");
            }
            Op::Dag {
                tenant,
                times_centi,
                chain,
            } => {
                let tenant = TENANTS[*tenant as usize];
                let jobs: Vec<MoldableJob> =
                    times_centi.iter().map(|&t| job_spec(t, false)).collect();
                let edges: Vec<(usize, usize)> = if *chain {
                    (1..jobs.len()).map(|i| (i - 1, i)).collect()
                } else {
                    Vec::new()
                };
                let a = self.incremental.submit_dag(tenant, jobs.clone(), &edges);
                let b = self.naive.submit_dag(tenant, jobs, &edges);
                assert_eq!(a, b, "submit_dag replies diverged at op {i}");
            }
            Op::Capacity { resource, capacity } => {
                let a = self
                    .incremental
                    .submit_capacity(*resource as usize, u64::from(*capacity));
                let b = self
                    .naive
                    .submit_capacity(*resource as usize, u64::from(*capacity));
                assert_eq!(a, b, "submit_capacity replies diverged at op {i}");
            }
            Op::Query => {} // the agreement check below is the query
            Op::Flush => {
                let a = self.incremental.flush();
                let b = self.naive.flush();
                assert_eq!(a, b, "flush outcomes diverged at op {i}");
                // The incremental invariant: after a round, every processed
                // event has been harvested into the ledger.
                assert_eq!(
                    self.incremental.round_state_stats().retained_events,
                    0,
                    "op {i}: engine retained events across a round"
                );
            }
            Op::Recycle => {
                if self.incremental.fault().is_none() {
                    if let Some(json) = self.incremental.checkpoint_engine_json() {
                        self.incremental
                            .restore_engine_json(&json)
                            .expect("restoring an own checkpoint must succeed");
                    }
                }
            }
        }
        self.assert_agreement(&format!("after op {i} ({op:?})"));
    }

    fn finish(&mut self) {
        let a = self.incremental.drain();
        let b = self.naive.drain();
        match (a, b) {
            (Ok(a), Ok(b)) => {
                // The full report — metrics, counters, the realized trace's
                // event log, schedule and stress statistics — byte-for-byte.
                assert_eq!(
                    serde_json::to_string(&a).unwrap(),
                    serde_json::to_string(&b).unwrap(),
                    "drain reports diverged"
                );
            }
            (a, b) => assert_eq!(a.map(|_| ()), b.map(|_| ()), "drain outcomes diverged"),
        }
        self.assert_agreement("after drain");
    }
}

fn policies() -> [PolicyKind; 3] {
    [
        PolicyKind::FullReschedule,
        PolicyKind::ReactiveList,
        PolicyKind::Static,
    ]
}

proptest! {
    // Fixed seed (also the CI smoke contract): the vendored runner derives
    // every case from `seed + case`, so failures replay exactly.
    #![proptest_config(ProptestConfig { cases: 20, seed: 0x5eed_d1ff })]

    #[test]
    fn incremental_equals_naive_over_random_streams(
        ops in proptest::collection::vec(op_strategy(), 6..36),
        policy_idx in 0usize..3,
        noisy in proptest::bool::Any,
    ) {
        let perturbation = if noisy {
            PerturbationModel::Multiplicative { sigma: 0.3 }
        } else {
            PerturbationModel::None
        };
        let mut pair = Pair::new(policies()[policy_idx], perturbation);
        for (i, op) in ops.iter().enumerate() {
            pair.step(i, op);
        }
        pair.finish();
    }
}

/// A deterministic anchor covering every op kind, readable without the
/// proptest machinery: 3 tenants, cross-submission deps, an atomic DAG, a
/// capacity drop and recovery, a mid-stream engine recycle, two drains.
#[test]
fn deterministic_mixed_stream_is_byte_identical() {
    let mut pair = Pair::new(
        PolicyKind::FullReschedule,
        PerturbationModel::Multiplicative { sigma: 0.25 },
    );
    let ops = [
        Op::Job {
            tenant: 0,
            time_centi: 200,
            amdahl: false,
            deps: vec![],
        },
        Op::Job {
            tenant: 1,
            time_centi: 150,
            amdahl: true,
            deps: vec![0],
        },
        Op::Flush,
        Op::Dag {
            tenant: 2,
            times_centi: vec![100, 80, 120],
            chain: true,
        },
        Op::Capacity {
            resource: 0,
            capacity: 2,
        },
        Op::Flush,
        Op::Recycle,
        Op::Job {
            tenant: 0,
            time_centi: 90,
            amdahl: false,
            deps: vec![1, 3],
        },
        Op::Capacity {
            resource: 0,
            capacity: 4,
        },
        Op::Flush,
        Op::Query,
    ];
    for (i, op) in ops.iter().enumerate() {
        pair.step(i, op);
    }
    pair.finish();
    // Draining twice is idempotent on both paths, and still byte-identical.
    pair.finish();
}

/// A failure plan for the injection streams: random mid-run faults, a
/// straggler deadline, one timed outage, and a tight retry budget so
/// streams actually exhaust it and quarantine jobs.
fn failure_plan() -> FailurePlan {
    FailurePlan {
        model: FailureModel::Compose(vec![
            FailureModel::Random { prob: 0.35 },
            FailureModel::StragglerKill {
                deadline_factor: 2.5,
            },
        ]),
        outages: vec![Outage {
            time: 3.0,
            resource: 0,
        }],
        retry: RetryPolicy {
            max_attempts: 2,
            backoff_base: 0.25,
            backoff_factor: 2.0,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, seed: 0x5eed_fa11 })]

    // The failure-injection differential: same streams, but attempts die
    // (faults, straggler kills, an outage), retries re-enter the ready set
    // after virtual-time backoff, and exhausted jobs land in quarantine —
    // all of which must stay byte-identical between the two cores.
    // `Static` is excluded by design: a static plan cannot re-place a
    // retried job, so failure plans under it deadlock (documented).
    #[test]
    fn incremental_equals_naive_under_failure_injection(
        ops in proptest::collection::vec(op_strategy(), 6..30),
        reactive in proptest::bool::Any,
        noisy in proptest::bool::Any,
    ) {
        let policy = if reactive {
            PolicyKind::ReactiveList
        } else {
            PolicyKind::FullReschedule
        };
        let perturbation = if noisy {
            PerturbationModel::Multiplicative { sigma: 0.3 }
        } else {
            PerturbationModel::None
        };
        let mut pair = Pair::with_config(ServeConfig {
            capacities: vec![4, 4],
            policy,
            perturbation,
            failures: failure_plan(),
            max_pending_jobs: 24,
            seed: 11,
            ..ServeConfig::default()
        });
        for (i, op) in ops.iter().enumerate() {
            pair.step(i, op);
        }
        pair.finish();
    }
}

/// A deterministic failure-injection anchor: enough work under a tight
/// retry budget that retries *and* quarantines demonstrably happen, with
/// every observable — replies, metrics JSON, quarantine contents, flight
/// digests, drain report — byte-identical between the two cores.
#[test]
fn failure_stream_quarantines_identically() {
    let mut pair = Pair::with_config(ServeConfig {
        capacities: vec![4, 4],
        policy: PolicyKind::FullReschedule,
        perturbation: PerturbationModel::Multiplicative { sigma: 0.25 },
        failures: failure_plan(),
        max_pending_jobs: 24,
        seed: 11,
        ..ServeConfig::default()
    });
    let ops = [
        Op::Job {
            tenant: 0,
            time_centi: 200,
            amdahl: false,
            deps: vec![],
        },
        Op::Dag {
            tenant: 1,
            times_centi: vec![120, 90, 150],
            chain: true,
        },
        Op::Flush,
        Op::Job {
            tenant: 2,
            time_centi: 180,
            amdahl: true,
            deps: vec![0],
        },
        Op::Flush,
        Op::Recycle,
        Op::Dag {
            tenant: 0,
            times_centi: vec![60, 60],
            chain: false,
        },
        Op::Flush,
    ];
    for (i, op) in ops.iter().enumerate() {
        pair.step(i, op);
    }
    pair.finish();
    // The plan must actually have bitten: failed attempts were recorded and
    // at least one job exhausted its budget into quarantine, identically.
    let status = pair.incremental.status();
    let retried: u64 = status.tenants.values().map(|t| t.retried).sum();
    let quarantine = pair.incremental.quarantine();
    assert!(
        retried > 0 || !quarantine.is_empty(),
        "the failure plan never bit: no retries and an empty quarantine"
    );
    assert_eq!(
        serde_json::to_string(&quarantine).unwrap(),
        serde_json::to_string(&pair.naive.quarantine()).unwrap()
    );
}

/// Duplicate idempotency tokens are deduplicated identically: the replay
/// returns the original ids without a second admission, on both cores.
#[test]
fn duplicate_tokens_are_deduplicated_identically() {
    let config = ServeConfig {
        capacities: vec![4, 4],
        dedup_window: 4,
        ..ServeConfig::default()
    };
    let mut pair = Pair::with_config(config);
    let job = || MoldableJob::new(0, ExecTimeSpec::Constant { time: 1.0 });

    let first = (
        pair.incremental
            .submit_job_token("t", job(), &[], Some("tok-1")),
        pair.naive.submit_job_token("t", job(), &[], Some("tok-1")),
    );
    assert_eq!(first.0, first.1, "first submission replies diverged");
    let replay = (
        pair.incremental
            .submit_job_token("t", job(), &[], Some("tok-1")),
        pair.naive.submit_job_token("t", job(), &[], Some("tok-1")),
    );
    assert_eq!(replay.0, replay.1, "replayed submission replies diverged");
    assert_eq!(first.0, replay.0, "replay must return the original id");
    assert_eq!(
        pair.incremental.status().jobs_submitted,
        1,
        "the replay must not admit a second job"
    );

    let dag_first = (
        pair.incremental
            .submit_dag_token("t", vec![job(), job()], &[(0, 1)], Some("tok-2")),
        pair.naive
            .submit_dag_token("t", vec![job(), job()], &[(0, 1)], Some("tok-2")),
    );
    assert_eq!(dag_first.0, dag_first.1);
    let dag_replay = (
        pair.incremental
            .submit_dag_token("t", vec![job(), job()], &[(0, 1)], Some("tok-2")),
        pair.naive
            .submit_dag_token("t", vec![job(), job()], &[(0, 1)], Some("tok-2")),
    );
    assert_eq!(dag_replay.0, dag_replay.1);
    assert_eq!(dag_first.0, dag_replay.0);
    assert_eq!(pair.incremental.status().jobs_submitted, 3);
    pair.assert_agreement("after token dedup");
    pair.finish();
}

/// The overload guard sheds identically: beyond the pending-backlog
/// high-water mark both cores refuse with the same typed overload reply,
/// and both resume admitting once a round drains the backlog.
#[test]
fn overload_shedding_is_byte_identical() {
    let mut pair = Pair::with_config(ServeConfig {
        capacities: vec![4, 4],
        overload_high_water: Some(3),
        ..ServeConfig::default()
    });
    let job = || MoldableJob::new(0, ExecTimeSpec::Constant { time: 1.0 });
    for i in 0..6 {
        let a = pair.incremental.submit_job("t", job(), &[]);
        let b = pair.naive.submit_job("t", job(), &[]);
        assert_eq!(a, b, "overload replies diverged at submission {i}");
        if i >= 3 {
            let reason = a.unwrap_err();
            assert!(reason.contains("overload"), "{reason}");
        }
    }
    // A dag over the mark is shed atomically on both cores.
    assert_eq!(
        pair.incremental.submit_dag("t", vec![job(), job()], &[]),
        pair.naive.submit_dag("t", vec![job(), job()], &[])
    );
    pair.assert_agreement("under overload");
    assert_eq!(pair.incremental.flush(), pair.naive.flush());
    // The round drained the backlog below the mark: admission resumes.
    let a = pair.incremental.submit_job("t", job(), &[]);
    let b = pair.naive.submit_job("t", job(), &[]);
    assert_eq!(a, b);
    assert!(a.is_ok(), "admission must resume after the backlog drains");
    pair.finish();
}

/// Backpressure and rejection paths agree under a tiny admission limit.
#[test]
fn rejection_paths_are_byte_identical() {
    let config = ServeConfig {
        capacities: vec![4, 4],
        max_pending_jobs: 2,
        ..ServeConfig::default()
    };
    let mut incremental = ServiceCore::new(config.clone());
    let mut naive = NaiveService::new(config);
    let job = || MoldableJob::new(0, ExecTimeSpec::Constant { time: 1.0 });
    for _ in 0..4 {
        assert_eq!(
            incremental.submit_job("t", job(), &[]),
            naive.submit_job("t", job(), &[])
        );
    }
    assert_eq!(
        incremental.submit_dag("t", vec![job(), job(), job()], &[(0, 1), (1, 2)]),
        naive.submit_dag("t", vec![job(), job(), job()], &[(0, 1), (1, 2)])
    );
    assert_eq!(incremental.flush(), naive.flush());
    let a = incremental.drain().unwrap();
    let b = naive.drain().unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}
