//! The crash-injection differential harness: the durability layer's headline
//! proof.
//!
//! A recorded op-stream drives a durable [`ServiceCore`]; the harness kills
//! the core at **every** op boundary (which covers every round boundary),
//! recovers from the directory, finishes the stream, and asserts replies,
//! metrics JSON, flight digests and the drain report byte-identical to an
//! uninterrupted [`NaiveService`] run. A second sweep truncates the log at
//! **every** byte offset within the tail record (and at every record
//! boundary): recovery must rebuild exactly the longest valid prefix and
//! report the cut bytes. A corruption matrix (bit flips in header, checksum
//! and payload; garbage tails; empty files; duplicated records) and a
//! fixed-seed crash-injection proptest round it out: recovery never panics
//! and never serves a half-applied round — it either lands on a consistent
//! round boundary or rejects with a typed [`RecoverError`].

use mrls_model::{ExecTimeSpec, MoldableJob};
use mrls_serve::wal::{scan_wal, wal_path};
use mrls_serve::{
    DurabilityMode, NaiveService, RecoverError, ServeConfig, ServiceCore, WalOp, WalRecord,
    WalWriter,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mrls-crash-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn job(time: f64) -> MoldableJob {
    MoldableJob::new(0, ExecTimeSpec::Constant { time })
}

fn durable_config(dir: &Path) -> ServeConfig {
    ServeConfig {
        capacities: vec![4, 4],
        tick: 1.0,
        durability: DurabilityMode::Buffered,
        dir: Some(dir.to_path_buf()),
        checkpoint_every_rounds: 2,
        ..ServeConfig::default()
    }
}

fn plain_config() -> ServeConfig {
    ServeConfig {
        capacities: vec![4, 4],
        tick: 1.0,
        ..ServeConfig::default()
    }
}

/// One step of the recorded op-stream, applied identically to the durable
/// core, the recovered core and the naive reference.
#[derive(Debug, Clone)]
enum Op {
    /// `submit_job` with absolute dependency ids (a dangling id is a
    /// rejection — logged and replayed like any accepted submission).
    Job {
        tenant: usize,
        time: f64,
        deps: Vec<u64>,
    },
    /// `submit_dag`, chained or independent.
    Dag {
        tenant: usize,
        times: Vec<f64>,
        chain: bool,
    },
    /// `submit_capacity`.
    Capacity { resource: usize, capacity: u64 },
    /// Close the batching window: one scheduling round.
    Flush,
}

/// The common drive surface of [`ServiceCore`] and [`NaiveService`], so one
/// `apply` feeds both sides of the differential.
trait Drive {
    fn submit_job(&mut self, tenant: &str, job: MoldableJob, deps: &[u64]) -> Result<u64, String>;
    fn submit_dag(
        &mut self,
        tenant: &str,
        jobs: Vec<MoldableJob>,
        edges: &[(usize, usize)],
    ) -> Result<Vec<u64>, String>;
    fn submit_capacity(&mut self, resource: usize, capacity: u64) -> Result<(), String>;
    fn flush(&mut self) -> Result<(), String>;
    fn submitted(&self) -> u64;
}

impl Drive for ServiceCore {
    fn submit_job(&mut self, tenant: &str, job: MoldableJob, deps: &[u64]) -> Result<u64, String> {
        ServiceCore::submit_job(self, tenant, job, deps)
    }
    fn submit_dag(
        &mut self,
        tenant: &str,
        jobs: Vec<MoldableJob>,
        edges: &[(usize, usize)],
    ) -> Result<Vec<u64>, String> {
        ServiceCore::submit_dag(self, tenant, jobs, edges)
    }
    fn submit_capacity(&mut self, resource: usize, capacity: u64) -> Result<(), String> {
        ServiceCore::submit_capacity(self, resource, capacity)
    }
    fn flush(&mut self) -> Result<(), String> {
        ServiceCore::flush(self)
    }
    fn submitted(&self) -> u64 {
        self.status().jobs_submitted
    }
}

impl Drive for NaiveService {
    fn submit_job(&mut self, tenant: &str, job: MoldableJob, deps: &[u64]) -> Result<u64, String> {
        NaiveService::submit_job(self, tenant, job, deps)
    }
    fn submit_dag(
        &mut self,
        tenant: &str,
        jobs: Vec<MoldableJob>,
        edges: &[(usize, usize)],
    ) -> Result<Vec<u64>, String> {
        NaiveService::submit_dag(self, tenant, jobs, edges)
    }
    fn submit_capacity(&mut self, resource: usize, capacity: u64) -> Result<(), String> {
        NaiveService::submit_capacity(self, resource, capacity)
    }
    fn flush(&mut self) -> Result<(), String> {
        NaiveService::flush(self)
    }
    fn submitted(&self) -> u64 {
        self.status().jobs_submitted
    }
}

/// Applies one op and returns the reply rendered for byte-comparison.
fn apply<S: Drive>(svc: &mut S, op: &Op) -> String {
    match op {
        Op::Job { tenant, time, deps } => {
            format!("{:?}", svc.submit_job(TENANTS[*tenant], job(*time), deps))
        }
        Op::Dag {
            tenant,
            times,
            chain,
        } => {
            let jobs: Vec<MoldableJob> = times.iter().map(|&t| job(t)).collect();
            let edges: Vec<(usize, usize)> = if *chain {
                (1..jobs.len()).map(|i| (i - 1, i)).collect()
            } else {
                Vec::new()
            };
            format!("{:?}", svc.submit_dag(TENANTS[*tenant], jobs, &edges))
        }
        Op::Capacity { resource, capacity } => {
            format!("{:?}", svc.submit_capacity(*resource, *capacity))
        }
        Op::Flush => format!("{:?}", svc.flush()),
    }
}

/// The deterministic fingerprint the differential compares: metrics JSON,
/// the flight recorder's deterministic digests, and the full drain report
/// (trace included) — everything except wall-clock and the durability
/// status, which is *intentionally* excluded (a recovered core differs from
/// an uninterrupted one exactly there, and nowhere else).
fn fingerprint(core: &mut ServiceCore) -> (String, String, String) {
    let status = serde_json::to_string(&core.status()).unwrap();
    let digests: Vec<_> = core.flight_records().iter().map(|r| r.digest()).collect();
    let report = core.drain().unwrap();
    (
        status,
        serde_json::to_string(&digests).unwrap(),
        serde_json::to_string(&report).unwrap(),
    )
}

fn naive_fingerprint(naive: &mut NaiveService) -> (String, String, String) {
    let status = serde_json::to_string(&naive.status()).unwrap();
    let digests = naive.flight_digests();
    let report = naive.drain().unwrap();
    (
        status,
        serde_json::to_string(&digests).unwrap(),
        serde_json::to_string(&report).unwrap(),
    )
}

/// The recorded op-stream: four rounds, cross-batch dependencies, an atomic
/// DAG, a capacity drop and recovery, a rejection (replayed — it mutates
/// metrics), and a trailing unflushed submission so the tail WAL record is a
/// `Job` frame with a payload worth sweeping byte-by-byte.
fn script() -> Vec<Op> {
    vec![
        Op::Job {
            tenant: 0,
            time: 2.0,
            deps: vec![],
        },
        Op::Job {
            tenant: 1,
            time: 1.5,
            deps: vec![0],
        },
        Op::Flush,
        Op::Dag {
            tenant: 0,
            times: vec![1.0, 1.0],
            chain: true,
        },
        Op::Capacity {
            resource: 0,
            capacity: 2,
        },
        Op::Job {
            tenant: 1,
            time: 1.0,
            deps: vec![99],
        },
        Op::Flush,
        Op::Job {
            tenant: 1,
            time: 0.5,
            deps: vec![2],
        },
        Op::Job {
            tenant: 2,
            time: 2.5,
            deps: vec![],
        },
        Op::Flush,
        Op::Capacity {
            resource: 0,
            capacity: 4,
        },
        Op::Dag {
            tenant: 2,
            times: vec![0.8, 0.6],
            chain: false,
        },
        Op::Flush,
        Op::Job {
            tenant: 0,
            time: 3.0,
            deps: vec![5],
        },
    ]
}

/// The uninterrupted reference: the naive service over the full script.
fn naive_reference(ops: &[Op]) -> (Vec<String>, (String, String, String)) {
    let mut naive = NaiveService::new(plain_config());
    let replies: Vec<String> = ops.iter().map(|op| apply(&mut naive, op)).collect();
    let fp = naive_fingerprint(&mut naive);
    (replies, fp)
}

// ---------------------------------------------------------------------------
// Sweep 1: kill the core at every op boundary (covers every round boundary).
// ---------------------------------------------------------------------------

#[test]
fn crash_at_every_op_boundary_recovers_byte_identical() {
    let ops = script();
    let (want_replies, want_fp) = naive_reference(&ops);
    for crash_at in 0..=ops.len() {
        let dir = temp_dir("boundary");
        let (mut core, report) = ServiceCore::open(durable_config(&dir)).unwrap();
        assert!(report.is_none());
        let mut replies: Vec<String> = ops[..crash_at]
            .iter()
            .map(|op| apply(&mut core, op))
            .collect();
        drop(core); // crash

        let (mut recovered, report) = ServiceCore::recover(durable_config(&dir))
            .unwrap_or_else(|e| panic!("crash point {crash_at}: recovery failed: {e}"));
        assert_eq!(
            report.truncated_bytes, 0,
            "crash point {crash_at}: a clean log has nothing to cut"
        );
        replies.extend(ops[crash_at..].iter().map(|op| apply(&mut recovered, op)));

        assert_eq!(
            replies, want_replies,
            "crash point {crash_at}: replies diverged"
        );
        assert_eq!(
            fingerprint(&mut recovered),
            want_fp,
            "crash point {crash_at}: state diverged from the uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Crash **mid-retry-backoff**: under a failure plan, some flushed rounds
/// pause with a failed job sitting in its virtual-time backoff window —
/// failed once, not yet re-run. Killing the core at every op boundary also
/// kills it at those states; recovery must resume the failure sampler's
/// random stream exactly (by replaying the recorded attempt count) and
/// continue byte-identical to an uninterrupted run, quarantine included.
#[test]
fn crash_mid_retry_backoff_recovers_byte_identical() {
    let failures = mrls_sim::FailurePlan {
        model: mrls_sim::FailureModel::Random { prob: 0.6 },
        outages: vec![],
        retry: mrls_sim::RetryPolicy {
            max_attempts: 2,
            backoff_base: 1.5,
            backoff_factor: 2.0,
        },
    };
    let durable = |dir: &Path| ServeConfig {
        failures: failures.clone(),
        ..durable_config(dir)
    };
    let plain = ServeConfig {
        failures: failures.clone(),
        ..plain_config()
    };
    let ops = script();

    // The uninterrupted reference, on both the naive core (a different code
    // path entirely) and a plain incremental core.
    let mut naive = NaiveService::new(plain.clone());
    let want_replies: Vec<String> = ops.iter().map(|op| apply(&mut naive, op)).collect();
    let want_quarantine = {
        let mut probe = ServiceCore::new(plain.clone());
        for op in &ops {
            apply(&mut probe, op);
        }
        let _ = probe.drain().unwrap();
        let status = probe.status();
        let retried: u64 = status.tenants.values().map(|t| t.retried).sum();
        let quarantined: u64 = status.tenants.values().map(|t| t.quarantined).sum();
        assert!(
            retried > 0 && quarantined > 0,
            "the failure plan must actually bite for this test to mean anything \
             (retried {retried}, quarantined {quarantined})"
        );
        serde_json::to_string(&probe.quarantine()).unwrap()
    };
    let _ = naive.drain().unwrap();
    assert_eq!(
        want_quarantine,
        serde_json::to_string(&naive.quarantine()).unwrap(),
        "the two uninterrupted cores disagree on the quarantine"
    );
    let want_fp = {
        let mut probe = ServiceCore::new(plain.clone());
        for op in &ops {
            apply(&mut probe, op);
        }
        fingerprint(&mut probe)
    };

    for crash_at in 0..=ops.len() {
        let dir = temp_dir("backoff");
        let (mut core, _) = ServiceCore::open(durable(&dir)).unwrap();
        let mut replies: Vec<String> = ops[..crash_at]
            .iter()
            .map(|op| apply(&mut core, op))
            .collect();
        drop(core); // crash — possibly with a job mid-backoff

        let (mut recovered, _) = ServiceCore::recover(durable(&dir))
            .unwrap_or_else(|e| panic!("crash point {crash_at}: recovery failed: {e}"));
        replies.extend(ops[crash_at..].iter().map(|op| apply(&mut recovered, op)));
        assert_eq!(
            replies, want_replies,
            "crash point {crash_at}: replies diverged under failure injection"
        );
        assert_eq!(
            fingerprint(&mut recovered),
            want_fp,
            "crash point {crash_at}: state diverged under failure injection"
        );
        assert_eq!(
            serde_json::to_string(&recovered.quarantine()).unwrap(),
            want_quarantine,
            "crash point {crash_at}: quarantine diverged"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Double crashes: recovery of a recovered directory must be just as exact
/// (the `Recovered` audit record replays as a no-op).
#[test]
fn repeated_crashes_stay_byte_identical() {
    let ops = script();
    let (want_replies, want_fp) = naive_reference(&ops);
    let dir = temp_dir("double");
    let (mut core, _) = ServiceCore::open(durable_config(&dir)).unwrap();
    let mut replies: Vec<String> = ops[..5].iter().map(|op| apply(&mut core, op)).collect();
    drop(core);
    let (mut core, _) = ServiceCore::recover(durable_config(&dir)).unwrap();
    replies.extend(ops[5..9].iter().map(|op| apply(&mut core, op)));
    drop(core);
    let (mut core, _) = ServiceCore::recover(durable_config(&dir)).unwrap();
    replies.extend(ops[9..].iter().map(|op| apply(&mut core, op)));
    assert_eq!(core.durability_status().recoveries, 2);
    assert_eq!(replies, want_replies);
    assert_eq!(fingerprint(&mut core), want_fp);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Sweep 2: truncate the log at every byte offset within the tail record.
// ---------------------------------------------------------------------------

/// Reads the frame layout of a log: `ends[k]` is the byte offset after the
/// `k`-th record (so `ends[0]` is the magic length). Walked from the raw
/// length prefixes, independently of the scanner under test.
fn frame_ends(bytes: &[u8]) -> Vec<u64> {
    let mut ends = vec![8u64];
    let mut pos = 8usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + 8 + len > bytes.len() {
            break;
        }
        pos += 8 + len;
        ends.push(pos as u64);
    }
    ends
}

/// The independent reference for a log prefix: a plain (non-durable) core
/// fed the logged inputs through the public API. What recovery of a log cut
/// to `records` must be byte-identical to.
fn reference_for_prefix(records: &[WalRecord]) -> (String, String, String) {
    let mut core = ServiceCore::new(plain_config());
    for record in records {
        match &record.op {
            WalOp::Job { tenant, job, deps } => {
                let _ = core.submit_job(tenant, job.clone(), deps);
            }
            WalOp::Dag {
                tenant,
                jobs,
                edges,
            } => {
                let _ = core.submit_dag(tenant, jobs.clone(), edges);
            }
            WalOp::TokenJob {
                tenant,
                job,
                deps,
                token,
            } => {
                let _ = core.submit_job_token(tenant, job.clone(), deps, Some(token));
            }
            WalOp::TokenDag {
                tenant,
                jobs,
                edges,
                token,
            } => {
                let _ = core.submit_dag_token(tenant, jobs.clone(), edges, Some(token));
            }
            WalOp::Capacity { resource, capacity } => {
                let _ = core.submit_capacity(*resource, *capacity);
            }
            WalOp::Round { drain, .. } => {
                if *drain {
                    let _ = core.drain();
                } else {
                    let _ = core.flush();
                }
            }
            WalOp::Recovered { .. } => {}
        }
    }
    fingerprint(&mut core)
}

/// Truncates a copy of `dir`'s log to `len` bytes and recovers from it,
/// returning the recovery report's cut-byte count and the fingerprint.
fn recover_truncated(dir: &Path, len: u64, tag: &str) -> (u64, u64, (String, String, String)) {
    let copy = temp_dir(tag);
    copy_dir(dir, &copy);
    let wal = wal_path(&copy);
    std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .unwrap()
        .set_len(len)
        .unwrap();
    let (mut core, report) = ServiceCore::recover(durable_config(&copy))
        .unwrap_or_else(|e| panic!("truncation to {len} bytes: recovery failed: {e}"));
    let status = core.durability_status();
    assert_eq!(status.truncated_bytes, report.truncated_bytes);
    assert_eq!(status.recoveries, 1);
    let fp = fingerprint(&mut core);
    std::fs::remove_dir_all(&copy).unwrap();
    (report.truncated_bytes, report.checkpoint_seq, fp)
}

#[test]
fn truncation_at_every_byte_offset_recovers_the_longest_valid_prefix() {
    let dir = temp_dir("bytes");
    let (mut core, _) = ServiceCore::open(durable_config(&dir)).unwrap();
    for op in &script() {
        apply(&mut core, op);
    }
    drop(core);

    let bytes = std::fs::read(wal_path(&dir)).unwrap();
    let scan = scan_wal(&wal_path(&dir)).unwrap();
    let ends = frame_ends(&bytes);
    assert_eq!(ends.len(), scan.records.len() + 1, "frame walk disagrees");
    assert_eq!(*ends.last().unwrap(), bytes.len() as u64, "clean log");
    let n = scan.records.len();

    // Expected fingerprints per whole-record prefix, from the independent
    // replay of the scanned records — computed once per length.
    let expected: Vec<(String, String, String)> = (0..=n)
        .map(|k| reference_for_prefix(&scan.records[..k]))
        .collect();

    // Every record boundary: recovery rebuilds exactly that prefix, cutting
    // nothing (the file *ends* at a boundary).
    for k in 0..=n {
        let (cut, _, fp) = recover_truncated(&dir, ends[k], "bytes-edge");
        assert_eq!(cut, 0, "boundary {k}: nothing to cut");
        assert_eq!(fp, expected[k], "boundary {k}: wrong prefix recovered");
    }

    // Every byte offset within the tail record: the torn frame is cut, the
    // prefix before it recovered. The tail record is a `Job` submission, so
    // the sweep crosses its length prefix, checksum and payload.
    let tail_start = ends[n - 1];
    let tail_end = ends[n];
    assert!(
        matches!(scan.records[n - 1].op, WalOp::Job { .. }),
        "the script must leave a Job frame as the tail record"
    );
    for offset in tail_start..tail_end {
        let (cut, _, fp) = recover_truncated(&dir, offset, "bytes-tail");
        assert_eq!(
            cut,
            offset - tail_start,
            "offset {offset}: the torn tail is what gets cut"
        );
        assert_eq!(
            fp,
            expected[n - 1],
            "offset {offset}: recovery must land on the longest valid prefix"
        );
    }

    // Offsets inside the magic: no valid prefix at all — recovery starts
    // from genesis with an empty log and cuts every surviving byte.
    for offset in 0..8 {
        let (cut, _, fp) = recover_truncated(&dir, offset, "bytes-magic");
        assert_eq!(cut, offset);
        assert_eq!(fp, expected[0]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Corruption matrix.
// ---------------------------------------------------------------------------

/// Flips one bit of a copy of `dir`'s log at byte `offset` and recovers.
fn recover_flipped(dir: &Path, offset: usize, expect: &(String, String, String), what: &str) {
    let copy = temp_dir("flip");
    copy_dir(dir, &copy);
    let wal = wal_path(&copy);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes[offset] ^= 0x10;
    std::fs::write(&wal, &bytes).unwrap();
    let (mut core, report) = ServiceCore::recover(durable_config(&copy))
        .unwrap_or_else(|e| panic!("{what}: recovery failed: {e}"));
    assert!(
        report.truncated_bytes > 0,
        "{what}: the corrupt tail must be cut"
    );
    assert_eq!(
        &fingerprint(&mut core),
        expect,
        "{what}: recovery must rebuild the prefix before the flip"
    );
    std::fs::remove_dir_all(&copy).unwrap();
}

#[test]
fn bit_flips_cut_the_log_at_the_corrupt_record() {
    let dir = temp_dir("matrix");
    let (mut core, _) = ServiceCore::open(durable_config(&dir)).unwrap();
    for op in &script() {
        apply(&mut core, op);
    }
    drop(core);
    let bytes = std::fs::read(wal_path(&dir)).unwrap();
    let ends = frame_ends(&bytes);
    let scan = scan_wal(&wal_path(&dir)).unwrap();
    let n = scan.records.len();
    // Flip targets: the first record, one mid-log, and the tail record —
    // each hit in its length prefix, its checksum, and its payload.
    for &k in &[0usize, n / 2, n - 1] {
        let start = ends[k] as usize;
        let payload_mid = start + 8 + (ends[k + 1] as usize - start - 8) / 2;
        let expect = reference_for_prefix(&scan.records[..k]);
        recover_flipped(&dir, start, &expect, &format!("record {k} length prefix"));
        recover_flipped(&dir, start + 4, &expect, &format!("record {k} checksum"));
        recover_flipped(
            &dir,
            start + 8,
            &expect,
            &format!("record {k} payload head"),
        );
        recover_flipped(
            &dir,
            payload_mid,
            &expect,
            &format!("record {k} payload mid"),
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn garbage_tails_empty_files_and_duplicates_recover_to_the_valid_prefix() {
    let dir = temp_dir("tails");
    let (mut core, _) = ServiceCore::open(durable_config(&dir)).unwrap();
    for op in &script() {
        apply(&mut core, op);
    }
    drop(core);
    let bytes = std::fs::read(wal_path(&dir)).unwrap();
    let scan = scan_wal(&wal_path(&dir)).unwrap();
    let n = scan.records.len();
    let full = reference_for_prefix(&scan.records);
    let ends = frame_ends(&bytes);

    // Garbage tail: cut in full, everything before it recovered. The obs
    // counter mirrors the report (per-thread store, drained around the
    // recovery).
    {
        let copy = temp_dir("garbage");
        copy_dir(&dir, &copy);
        let mut corrupt = bytes.clone();
        corrupt.extend(std::iter::repeat_n(0xA5, 100));
        std::fs::write(wal_path(&copy), &corrupt).unwrap();
        mrls_obs::set_enabled(true);
        let _ = mrls_obs::take();
        let (mut core, report) = ServiceCore::recover(durable_config(&copy)).unwrap();
        let counters = mrls_obs::take().counters;
        assert_eq!(report.truncated_bytes, 100);
        assert_eq!(counters.get("serve.wal.truncated_bytes"), Some(&100));
        assert_eq!(counters.get("serve.wal.recoveries"), Some(&1));
        assert_eq!(fingerprint(&mut core), full);
        std::fs::remove_dir_all(&copy).unwrap();
    }

    // Empty file: recovery starts clean and the core still serves.
    {
        let copy = temp_dir("empty");
        copy_dir(&dir, &copy);
        std::fs::write(wal_path(&copy), b"").unwrap();
        let (mut core, report) = ServiceCore::recover(durable_config(&copy)).unwrap();
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(
            report.checkpoint_round, None,
            "no log, no usable checkpoint"
        );
        core.submit_job("alpha", job(1.0), &[]).unwrap();
        let drained = core.drain().unwrap();
        assert_eq!(drained.completed, 1);
        std::fs::remove_dir_all(&copy).unwrap();
    }

    // Duplicated tail record: the sequence break cuts the copy, the original
    // prefix replays once — records never apply twice.
    {
        let copy = temp_dir("dup");
        copy_dir(&dir, &copy);
        let frame = &bytes[ends[n - 1] as usize..];
        let mut corrupt = bytes.clone();
        corrupt.extend_from_slice(frame);
        std::fs::write(wal_path(&copy), &corrupt).unwrap();
        let (mut core, report) = ServiceCore::recover(durable_config(&copy)).unwrap();
        assert_eq!(report.truncated_bytes, frame.len() as u64);
        assert_eq!(fingerprint(&mut core), full);
        std::fs::remove_dir_all(&copy).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Half-applied rounds are typed errors, not silent divergence.
// ---------------------------------------------------------------------------

/// Rewrites a log with the same ops but a tampered round stamp: the frames
/// are checksum-valid, so only the replay cross-check can catch it — and it
/// must, with a typed error instead of serving diverged state.
#[test]
fn a_tampered_round_stamp_is_a_typed_replay_error() {
    let dir = temp_dir("tamper");
    let (mut core, _) = ServiceCore::open(durable_config(&dir)).unwrap();
    for op in &script() {
        apply(&mut core, op);
    }
    drop(core);
    let scan = scan_wal(&wal_path(&dir)).unwrap();
    let last_round = scan
        .records
        .iter()
        .rposition(|r| matches!(r.op, WalOp::Round { .. }))
        .unwrap();
    let mut writer = WalWriter::create(&wal_path(&dir), DurabilityMode::Buffered).unwrap();
    for (i, record) in scan.records[..=last_round].iter().enumerate() {
        let op = match &record.op {
            WalOp::Round { stamp, drain } if i == last_round => WalOp::Round {
                stamp: stamp + 0.5,
                drain: *drain,
            },
            other => other.clone(),
        };
        writer.append(op).unwrap();
    }
    drop(writer);
    // Drop the checkpoints: the newest one covers the tampered record and
    // would legitimately mask it — the point here is the replay cross-check.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("checkpoint-"))
        {
            std::fs::remove_file(path).unwrap();
        }
    }
    // Only the tampered marker's stamp disagrees; every earlier round is
    // intact, so replay fails exactly there.
    let err = ServiceCore::recover(durable_config(&dir)).unwrap_err();
    match err {
        RecoverError::Replay { seq, detail } => {
            assert_eq!(seq, last_round as u64);
            assert!(detail.contains("stamp"), "{detail}");
        }
        other => panic!("expected a typed replay error, got: {other}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A round marker with nothing batched before it cannot come from the real
/// logger; replay rejects it instead of running a phantom round.
#[test]
fn a_round_marker_with_an_empty_batch_is_a_typed_replay_error() {
    let dir = temp_dir("phantom");
    let (core, _) = ServiceCore::open(durable_config(&dir)).unwrap();
    drop(core);
    let mut writer = WalWriter::create(&wal_path(&dir), DurabilityMode::Buffered).unwrap();
    writer
        .append(WalOp::Round {
            stamp: 0.0,
            drain: false,
        })
        .unwrap();
    drop(writer);
    let err = ServiceCore::recover(durable_config(&dir)).unwrap_err();
    assert!(
        matches!(err, RecoverError::Replay { seq: 0, .. }),
        "expected a typed replay error at record 0, got: {err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Crash-injection proptest: random streams × random crash points × random
// tail cuts. Recovery must never panic and never serve a half-applied round:
// it lands on a consistent boundary (proved by the genesis replay agreeing)
// or rejects with a typed error (never observed for prefix damage).
// ---------------------------------------------------------------------------

/// Randomized op: dependencies are offsets back from the newest id (dangling
/// on an empty world — a rejection, identical on every path).
#[derive(Debug, Clone)]
enum RandOp {
    Job {
        tenant: u8,
        time_centi: u16,
        deps: Vec<u8>,
    },
    Dag {
        tenant: u8,
        times_centi: Vec<u16>,
        chain: bool,
    },
    Capacity {
        resource: u8,
        capacity: u8,
    },
    Flush,
}

fn rand_op_strategy() -> impl Strategy<Value = RandOp> {
    prop_oneof![
        (0u8..3, 1u16..300, proptest::collection::vec(0u8..6, 0..3)).prop_map(
            |(tenant, time_centi, deps)| RandOp::Job {
                tenant,
                time_centi,
                deps,
            }
        ),
        (
            0u8..3,
            proptest::collection::vec(1u16..200, 1..4),
            proptest::bool::Any
        )
            .prop_map(|(tenant, times_centi, chain)| RandOp::Dag {
                tenant,
                times_centi,
                chain,
            }),
        (0u8..3, 0u8..5).prop_map(|(resource, capacity)| RandOp::Capacity { resource, capacity }),
        Just(RandOp::Flush),
        Just(RandOp::Flush),
    ]
}

/// Resolves a randomized op against the service's current world size and
/// applies it, returning the rendered reply.
fn apply_rand<S: Drive>(svc: &mut S, op: &RandOp) -> String {
    let resolved = match op {
        RandOp::Job {
            tenant,
            time_centi,
            deps,
        } => {
            let n = svc.submitted();
            Op::Job {
                tenant: *tenant as usize,
                time: 0.25 + f64::from(*time_centi) / 100.0,
                deps: deps
                    .iter()
                    .map(|&off| {
                        if n == 0 {
                            u64::from(off)
                        } else {
                            n - 1 - (u64::from(off) % n)
                        }
                    })
                    .collect(),
            }
        }
        RandOp::Dag {
            tenant,
            times_centi,
            chain,
        } => Op::Dag {
            tenant: *tenant as usize,
            times: times_centi
                .iter()
                .map(|&t| 0.25 + f64::from(t) / 100.0)
                .collect(),
            chain: *chain,
        },
        RandOp::Capacity { resource, capacity } => Op::Capacity {
            resource: *resource as usize,
            capacity: u64::from(*capacity),
        },
        RandOp::Flush => Op::Flush,
    };
    apply(svc, &resolved)
}

proptest! {
    // Fixed seed, like the main differential: every case replays exactly.
    #![proptest_config(ProptestConfig { cases: 16, seed: 0x5eed_c4a5 })]

    #[test]
    fn random_crashes_and_cuts_recover_to_a_consistent_boundary(
        ops in proptest::collection::vec(rand_op_strategy(), 4..20),
        crash_raw in 0usize..32,
        cut in 0u64..96,
    ) {
        let crash_at = crash_raw % (ops.len() + 1);
        let dir = temp_dir("prop");
        let (mut core, _) = ServiceCore::open(durable_config(&dir)).unwrap();
        let mut replies: Vec<String> =
            ops[..crash_at].iter().map(|op| apply_rand(&mut core, op)).collect();
        drop(core); // crash

        if cut == 0 {
            // Clean crash: the full differential against the naive reference.
            let (mut recovered, report) = ServiceCore::recover(durable_config(&dir)).unwrap();
            prop_assert_eq!(report.truncated_bytes, 0);
            replies.extend(ops[crash_at..].iter().map(|op| apply_rand(&mut recovered, op)));
            let mut naive = NaiveService::new(plain_config());
            let want: Vec<String> = ops.iter().map(|op| apply_rand(&mut naive, op)).collect();
            prop_assert_eq!(replies, want);
            prop_assert_eq!(fingerprint(&mut recovered), naive_fingerprint(&mut naive));
        } else {
            // Torn crash: cut `cut` bytes off the tail (clamped — cutting
            // into the magic is fair game), then prove consistency by the
            // two independent recovery paths agreeing byte-for-byte:
            // checkpoint+suffix on one copy, genesis replay on the other.
            let wal = wal_path(&dir);
            let len = std::fs::metadata(&wal).unwrap().len();
            let target = len.saturating_sub(cut);
            std::fs::OpenOptions::new()
                .write(true)
                .open(&wal)
                .unwrap()
                .set_len(target)
                .unwrap();
            let twin = temp_dir("prop-twin");
            copy_dir(&dir, &twin);
            let (mut a, ra) = ServiceCore::recover(durable_config(&dir)).unwrap();
            let (mut b, rb) = ServiceCore::recover_from_genesis(durable_config(&twin)).unwrap();
            prop_assert_eq!(ra.truncated_bytes, rb.truncated_bytes);
            prop_assert_eq!(fingerprint(&mut a), fingerprint(&mut b));
            std::fs::remove_dir_all(&twin).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
