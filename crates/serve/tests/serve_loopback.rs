//! Loopback end-to-end test of the acceptance criterion: an in-process
//! server fed a 3-tenant mixed stream (two DAGs + singleton jobs + one
//! capacity drop) over real TCP must complete every admitted job, produce a
//! feasible realized schedule, and be **byte-identical** across same-order
//! runs.

use mrls_serve::{Client, DrainReport, ServeConfig, Server};
use mrls_sim::{PolicyKind, TraceEvent};
use mrls_workload::InstanceRecipe;
use std::time::Duration;

/// Instantiates the mixed 3-tenant stream against a fresh server and drains
/// it. Returns the drain report.
fn run_mixed_stream() -> DrainReport {
    let handle = Server::spawn(
        ServeConfig {
            capacities: vec![8, 8],
            policy: PolicyKind::FullReschedule,
            batch_window: Duration::ZERO,
            tick: 1.0,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let addr = handle.addr();

    let mut alice = Client::connect(addr, "alice").unwrap();
    let mut bob = Client::connect(addr, "bob").unwrap();
    let mut carol = Client::connect(addr, "carol").unwrap();

    // Tenant 1: a layered DAG, submitted atomically.
    let dag_a = InstanceRecipe::default_layered(8, 2, 8)
        .generate(1)
        .instance;
    let ids_a = alice
        .submit_dag(dag_a.jobs.clone(), dag_a.dag.edges().collect())
        .unwrap();
    assert_eq!(ids_a.len(), 8);

    // Tenant 2: a second DAG.
    let dag_b = InstanceRecipe::default_layered(6, 2, 8)
        .generate(2)
        .instance;
    let ids_b = bob
        .submit_dag(dag_b.jobs.clone(), dag_b.dag.edges().collect())
        .unwrap();
    assert_eq!(ids_b.len(), 6);

    // Tenant 3: singleton jobs, chained by dependencies on global ids.
    let singles = InstanceRecipe::default_layered(3, 2, 8)
        .generate(3)
        .instance;
    let mut prev: Option<u64> = None;
    for job in singles.jobs.clone() {
        let deps = prev.map(|p| vec![p]).unwrap_or_default();
        prev = Some(carol.submit_job(job, deps).unwrap());
    }

    // One capacity drop lands mid-stream, while earlier rounds still run.
    carol.change_capacity(0, 4).unwrap();

    // More singletons after the drop.
    let late = InstanceRecipe::default_layered(2, 2, 8)
        .generate(4)
        .instance;
    for job in late.jobs.clone() {
        carol.submit_job(job, vec![]).unwrap();
    }

    let report = alice.drain().unwrap();
    alice.shutdown().unwrap();
    handle.join();
    report
}

#[test]
fn mixed_stream_completes_feasibly_and_deterministically() {
    let report = run_mixed_stream();

    // (a) Every admitted job completes.
    assert_eq!(report.submitted, 8 + 6 + 3 + 2);
    assert_eq!(report.completed, report.submitted);
    for (tenant, m) in &report.metrics.tenants {
        assert_eq!(m.completed, m.submitted, "tenant {tenant}");
        assert_eq!(m.scheduled, m.submitted, "tenant {tenant}");
        assert_eq!(m.rejected, 0, "tenant {tenant}");
        assert!(m.stretch >= 0.0 && m.stretch.is_finite(), "tenant {tenant}");
    }
    assert_eq!(report.metrics.tenants.len(), 3);
    assert_eq!(report.metrics.queue_depth, 0);

    // (b) The realized schedule is capacity/precedence feasible (validated
    // server-side with durations relaxed).
    assert!(report.feasible);
    assert!(report.virtual_makespan > 0.0);

    // The capacity drop really happened mid-run, and the policy reacted.
    assert!(report
        .trace
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::CapacityChanged { capacity: 4, .. })));
    assert!(report.trace.stats.num_reschedules > 0);
    // Rounds were spaced by the tick, so arrivals overlap running work.
    assert!(report.metrics.rounds > 1);

    // (c) Same-seed, same-submission-order runs are byte-identical.
    let again = run_mixed_stream();
    assert_eq!(
        serde_json::to_string(&report.metrics).unwrap(),
        serde_json::to_string(&again.metrics).unwrap(),
        "metrics JSON diverged between identical runs"
    );
    assert_eq!(
        report.trace.to_json(),
        again.trace.to_json(),
        "trace JSON diverged between identical runs"
    );
}

#[test]
fn interleaved_clients_all_complete() {
    let handle = Server::spawn(
        ServeConfig {
            capacities: vec![8, 8],
            batch_window: Duration::from_millis(2),
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = handle.addr();

    // Three tenants submit concurrently; the interleaving is arbitrary but
    // every admitted job must complete.
    let workers: Vec<_> = (0..3)
        .map(|w| {
            std::thread::spawn(move || {
                let tenant = format!("tenant{w}");
                let mut client = Client::connect(addr, &tenant).unwrap();
                let jobs = InstanceRecipe::default_layered(6, 2, 8)
                    .generate(10 + w)
                    .instance;
                let mut submitted = 0u64;
                let mut prev: Option<u64> = None;
                for job in jobs.jobs.clone() {
                    let deps = prev.map(|p| vec![p]).unwrap_or_default();
                    prev = Some(client.submit_job(job, deps).unwrap());
                    submitted += 1;
                }
                submitted
            })
        })
        .collect();
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(total, 18);

    let mut client = Client::connect(addr, "driver").unwrap();
    let report = client.drain().unwrap();
    assert_eq!(report.submitted, 18);
    assert_eq!(report.completed, 18);
    assert!(report.feasible);
    client.shutdown().unwrap();
    handle.join();
}
