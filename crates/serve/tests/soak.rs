//! Soak test for the incremental round state: a long-lived service fed
//! thousands of submissions over many rounds must keep its engine-retained
//! event count bounded (the harvest watermark advances every round) and its
//! per-round service time flat — the O(n²) lifetime cost of the old
//! clone-and-replay path must not creep back in.
//!
//! `#[ignore]`d locally because of its scale; CI runs it at reduced scale
//! (the `serve-soak-smoke` job sets `MRLS_SOAK_SUBMISSIONS`):
//!
//! ```sh
//! MRLS_SOAK_SUBMISSIONS=300 cargo test -p mrls-serve --test soak -- --ignored
//! ```

use mrls_model::{ExecTimeSpec, MoldableJob};
use mrls_serve::{DurabilityMode, ServeConfig, ServiceCore};
use mrls_sim::{PerturbationModel, PolicyKind};
use std::time::Instant;

fn env_scale(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
#[ignore = "soak scale — run explicitly or via the serve-soak-smoke CI job (MRLS_SOAK_SUBMISSIONS scales it down)"]
fn long_lived_service_stays_flat_per_round() {
    let submissions = env_scale("MRLS_SOAK_SUBMISSIONS", 2000);
    let mut core = ServiceCore::new(ServeConfig {
        capacities: vec![8, 8],
        policy: PolicyKind::ReactiveList,
        perturbation: PerturbationModel::Multiplicative { sigma: 0.2 },
        max_pending_jobs: submissions + 1,
        ..ServeConfig::default()
    });

    let mut round_times = Vec::with_capacity(submissions);
    let mut peak_retained = 0usize;
    let mut last_watermark = f64::NEG_INFINITY;
    for i in 0..submissions {
        // A light dependency structure: every fourth job chains onto its
        // predecessor, so the DAG keeps growing edges too.
        let deps: Vec<u64> = if i % 4 == 3 {
            vec![i as u64 - 1]
        } else {
            vec![]
        };
        let time = 0.5 + (i % 7) as f64 * 0.3;
        core.submit_job(
            ["a", "b", "c"][i % 3],
            MoldableJob::new(0, ExecTimeSpec::Constant { time }),
            &deps,
        )
        .expect("submission admitted");
        let t0 = Instant::now();
        core.flush().expect("round succeeded");
        round_times.push(t0.elapsed());

        let stats = core.round_state_stats();
        peak_retained = peak_retained.max(stats.retained_events);
        assert!(
            stats.harvested_until >= last_watermark,
            "round {i}: harvest watermark regressed"
        );
        last_watermark = stats.harvested_until;
    }

    // Bounded live state: the engine never holds events across rounds (the
    // harvest empties the retained log every round), so the peak is exactly
    // zero measured *between* rounds — and the checkpoint stays truncated.
    assert_eq!(
        peak_retained, 0,
        "engine retained events across rounds (watermark stopped advancing)"
    );
    let stats = core.round_state_stats();
    assert!(
        stats.archived_events >= submissions,
        "every submission produces at least a release event in the ledger"
    );
    assert!(stats.harvested_until > 0.0, "watermark never advanced");

    // Per-round service time must not trend upward with the round index.
    // Compare robust (median) early vs. late cost with a generous factor so
    // scheduler-noise and CI jitter cannot flake the test: the naive path's
    // linear growth fails this by an order of magnitude at soak scale.
    let eighth = (round_times.len() / 8).max(1);
    let median = |window: &[std::time::Duration]| {
        let mut sorted: Vec<_> = window.to_vec();
        sorted.sort();
        sorted[sorted.len() / 2]
    };
    let early = median(&round_times[..eighth]);
    let late = median(&round_times[round_times.len() - eighth..]);
    let slack = std::time::Duration::from_millis(2);
    assert!(
        late <= early * 4 + slack,
        "per-round service time trends upward: early median {early:?}, late median {late:?}"
    );

    let report = core.drain().expect("drain");
    assert_eq!(report.completed, submissions as u64);
    assert!(report.feasible, "realized trace must validate");
    // The drain report's event log is complete despite the truncation.
    assert_eq!(
        report.trace.events.len(),
        core.round_state_stats().archived_events
    );
}

/// The durable variant: the soak is killed halfway through and recovered
/// from its directory. The recovered core must carry the incremental
/// invariants across the restart — the harvest watermark stays monotone,
/// the engine still retains zero events between rounds, and the per-round
/// service time after recovery is as flat as before the kill (recovery must
/// not reintroduce the clone-and-replay lifetime cost it replaces).
#[test]
#[ignore = "soak scale — run explicitly or via the serve-soak-smoke CI job (MRLS_SOAK_SUBMISSIONS scales it down)"]
fn mid_soak_kill_and_recovery_stays_flat_and_monotone() {
    let submissions = env_scale("MRLS_SOAK_SUBMISSIONS", 2000);
    let dir = std::env::temp_dir().join(format!("mrls-soak-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServeConfig {
        capacities: vec![8, 8],
        policy: PolicyKind::ReactiveList,
        perturbation: PerturbationModel::Multiplicative { sigma: 0.2 },
        max_pending_jobs: submissions + 1,
        durability: DurabilityMode::Buffered,
        dir: Some(dir.clone()),
        checkpoint_every_rounds: 64,
        ..ServeConfig::default()
    };
    let (mut core, report) = ServiceCore::open(config()).expect("fresh durable core");
    assert!(report.is_none());

    let kill_at = submissions / 2;
    let mut round_times = Vec::with_capacity(submissions);
    let mut last_watermark = f64::NEG_INFINITY;
    let drive = |core: &mut ServiceCore,
                 range: std::ops::Range<usize>,
                 round_times: &mut Vec<std::time::Duration>,
                 last_watermark: &mut f64| {
        for i in range {
            let deps: Vec<u64> = if i % 4 == 3 {
                vec![i as u64 - 1]
            } else {
                vec![]
            };
            let time = 0.5 + (i % 7) as f64 * 0.3;
            core.submit_job(
                ["a", "b", "c"][i % 3],
                MoldableJob::new(0, ExecTimeSpec::Constant { time }),
                &deps,
            )
            .expect("submission admitted");
            let t0 = Instant::now();
            core.flush().expect("round succeeded");
            round_times.push(t0.elapsed());
            let stats = core.round_state_stats();
            assert_eq!(stats.retained_events, 0, "round {i}: retained events");
            assert!(
                stats.harvested_until >= *last_watermark,
                "round {i}: harvest watermark regressed"
            );
            *last_watermark = stats.harvested_until;
        }
    };

    drive(&mut core, 0..kill_at, &mut round_times, &mut last_watermark);
    drop(core); // kill -9, in-process form

    let (mut core, report) = ServiceCore::recover(config()).expect("recovery");
    assert_eq!(report.truncated_bytes, 0, "a clean kill tears nothing");
    assert!(
        report.checkpoint_round.is_some(),
        "cadence 64 wrote checkpoints before the kill"
    );
    // Monotonicity holds across the restart: the recovered watermark must
    // not sit below where the killed core left it.
    let stats = core.round_state_stats();
    assert!(
        stats.harvested_until >= last_watermark,
        "recovery rewound the harvest watermark"
    );
    drive(
        &mut core,
        kill_at..submissions,
        &mut round_times,
        &mut last_watermark,
    );

    // Flatness across the kill: the same early/late median comparison as the
    // uninterrupted soak, with the late window entirely post-recovery.
    let eighth = (round_times.len() / 8).max(1);
    let median = |window: &[std::time::Duration]| {
        let mut sorted: Vec<_> = window.to_vec();
        sorted.sort();
        sorted[sorted.len() / 2]
    };
    let early = median(&round_times[..eighth]);
    let late = median(&round_times[round_times.len() - eighth..]);
    let slack = std::time::Duration::from_millis(2);
    assert!(
        late <= early * 4 + slack,
        "per-round service time trends upward across recovery: early median {early:?}, late median {late:?}"
    );

    let status = core.durability_status();
    assert_eq!(status.recoveries, 1);
    assert!(status.checkpoints_written >= 1, "post-recovery checkpoints");
    let report = core.drain().expect("drain");
    assert_eq!(report.completed, submissions as u64);
    assert!(report.feasible, "realized trace must validate");
    std::fs::remove_dir_all(&dir).unwrap();
}
