//! Edge cases of the protocol layer over real loopback TCP: malformed JSON,
//! unknown request kinds, oversized lines, half-closed connections, and a
//! server that keeps serving other clients through all of it.

use mrls_serve::{
    read_frame, Client, DurabilityMode, Request, RequestBody, Response, ResponseBody, ServeConfig,
    Server, ServerHandle,
};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn spawn_server(max_line_bytes: usize) -> ServerHandle {
    Server::spawn(
        ServeConfig {
            capacities: vec![4, 4],
            batch_window: Duration::ZERO,
            max_line_bytes,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind loopback")
}

/// Sends a raw line and reads one raw response line.
fn raw_roundtrip(stream: &mut TcpStream, line: &str) -> Response {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let reply = read_frame(&mut reader, 1 << 20).unwrap().expect("a reply");
    serde_json::from_str(&reply).unwrap()
}

#[test]
fn malformed_json_gets_an_error_reply() {
    let handle = spawn_server(1 << 16);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let response = raw_roundtrip(&mut stream, "this is { not json");
    assert_eq!(response.id, 0);
    assert!(matches!(response.body, ResponseBody::Error { .. }));
    // The connection survives a parse error; a valid request still works.
    let response = raw_roundtrip(&mut stream, r#"{"id":9,"tenant":"t","body":"QueryStatus"}"#);
    assert_eq!(response.id, 9);
    assert!(matches!(response.body, ResponseBody::Status { .. }));

    Client::connect(handle.addr(), "t")
        .unwrap()
        .shutdown()
        .unwrap();
    handle.join();
}

#[test]
fn unknown_request_kinds_echo_the_id() {
    let handle = spawn_server(1 << 16);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let response = raw_roundtrip(&mut stream, r#"{"id":41,"tenant":"t","body":"Flarb"}"#);
    assert_eq!(response.id, 41, "id recovered from the unparsable request");
    let ResponseBody::Error { message } = response.body else {
        panic!("expected an error response");
    };
    assert!(message.contains("malformed request"), "{message}");
    // Unknown payload-carrying kinds are errors too.
    let response = raw_roundtrip(
        &mut stream,
        r#"{"id":42,"tenant":"t","body":{"Reticulate":{"splines":3}}}"#,
    );
    assert_eq!(response.id, 42);
    assert!(matches!(response.body, ResponseBody::Error { .. }));

    Client::connect(handle.addr(), "t")
        .unwrap()
        .shutdown()
        .unwrap();
    handle.join();
}

#[test]
fn oversized_lines_are_rejected_and_the_connection_dropped() {
    let handle = spawn_server(256);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let long = format!(
        r#"{{"id":1,"tenant":"{}","body":"QueryStatus"}}"#,
        "x".repeat(1000)
    );
    stream.write_all(long.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let reply = read_frame(&mut reader, 1 << 20).unwrap().expect("a reply");
    let response: Response = serde_json::from_str(&reply).unwrap();
    let ResponseBody::Error { message } = response.body else {
        panic!("expected an error response");
    };
    assert!(message.contains("256-byte limit"), "{message}");
    // The server closed this connection — there is no way to resynchronise.
    assert_eq!(read_frame(&mut reader, 1 << 20).unwrap(), None);
    // Other clients are unaffected.
    let mut client = Client::connect(handle.addr(), "t").unwrap();
    assert_eq!(client.status().unwrap().jobs_submitted, 0);
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn half_closed_connections_still_get_their_responses() {
    let handle = spawn_server(1 << 16);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let request = Request {
        id: 7,
        tenant: "half".into(),
        token: None,
        body: RequestBody::QueryStatus,
    };
    stream
        .write_all(mrls_serve::encode_line(&request).as_bytes())
        .unwrap();
    stream.flush().unwrap();
    // Close the write half before reading: the server must still process the
    // request and deliver the response on the intact read half.
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reader = BufReader::new(stream);
    let reply = read_frame(&mut reader, 1 << 20).unwrap().expect("a reply");
    let response: Response = serde_json::from_str(&reply).unwrap();
    assert_eq!(response.id, 7);
    assert!(matches!(response.body, ResponseBody::Status { .. }));
    // And the server then sees EOF and drops the connection quietly.
    assert_eq!(read_frame(&mut reader, 1 << 20).unwrap(), None);

    Client::connect(handle.addr(), "t")
        .unwrap()
        .shutdown()
        .unwrap();
    handle.join();
}

#[test]
fn query_durability_reports_the_log_position_over_the_wire() {
    // A plain server answers with mode `off` and an empty log.
    let handle = spawn_server(1 << 16);
    let mut client = Client::connect(handle.addr(), "t").unwrap();
    let status = client.durability().unwrap();
    assert_eq!(status.mode, "off");
    assert_eq!((status.wal_records, status.wal_bytes), (0, 0));
    assert_eq!(status.recoveries, 0);
    client.shutdown().unwrap();
    handle.join();

    // A durable server reports its live log position and checkpoint
    // watermark, and the raw unit-variant wire form works too.
    let dir = std::env::temp_dir().join(format!("mrls-protocol-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = Server::spawn(
        ServeConfig {
            capacities: vec![4, 4],
            batch_window: Duration::ZERO,
            durability: DurabilityMode::Buffered,
            dir: Some(dir.clone()),
            checkpoint_every_rounds: 1,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let mut client = Client::connect(handle.addr(), "t").unwrap();
    let job = mrls_model::MoldableJob::new(0, mrls_model::ExecTimeSpec::Constant { time: 1.0 });
    client.submit_job(job, vec![]).unwrap();
    client.drain().unwrap();
    let status = client.durability().unwrap();
    assert_eq!(status.mode, "buffered");
    assert!(status.wal_records >= 2, "a Job and a Round record at least");
    assert!(status.wal_bytes > 8, "more than the magic");
    assert!(status.last_checkpoint_seq.is_some(), "drain checkpoints");
    assert_eq!(status.recoveries, 0);

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let response = raw_roundtrip(
        &mut stream,
        r#"{"id":21,"tenant":"t","body":"QueryDurability"}"#,
    );
    assert_eq!(response.id, 21);
    assert!(matches!(response.body, ResponseBody::Durability { .. }));

    // Malformed shapes of the new verb are errors that keep the connection:
    // a payload where none belongs, and a misspelled variant.
    let response = raw_roundtrip(
        &mut stream,
        r#"{"id":22,"tenant":"t","body":{"QueryDurability":{"extra":1}}}"#,
    );
    assert_eq!(response.id, 22);
    assert!(matches!(response.body, ResponseBody::Error { .. }));
    let response = raw_roundtrip(
        &mut stream,
        r#"{"id":23,"tenant":"t","body":"QueryDurabilty"}"#,
    );
    assert_eq!(response.id, 23);
    assert!(matches!(response.body, ResponseBody::Error { .. }));
    // The connection survived all of it.
    let response = raw_roundtrip(
        &mut stream,
        r#"{"id":24,"tenant":"t","body":"QueryDurability"}"#,
    );
    assert!(matches!(response.body, ResponseBody::Durability { .. }));

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn oversized_query_durability_drops_the_connection() {
    let handle = spawn_server(128);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let long = format!(
        r#"{{"id":1,"tenant":"{}","body":"QueryDurability"}}"#,
        "x".repeat(500)
    );
    stream.write_all(long.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let reply = read_frame(&mut reader, 1 << 20).unwrap().expect("a reply");
    let response: Response = serde_json::from_str(&reply).unwrap();
    let ResponseBody::Error { message } = response.body else {
        panic!("expected an error response");
    };
    assert!(message.contains("128-byte limit"), "{message}");
    assert_eq!(read_frame(&mut reader, 1 << 20).unwrap(), None);

    Client::connect(handle.addr(), "t")
        .unwrap()
        .shutdown()
        .unwrap();
    handle.join();
}

#[test]
fn query_quarantine_works_and_rejects_malformed_shapes() {
    // A server whose every attempt dies and whose retry budget is one
    // attempt: the submitted job must land in quarantine, visible both via
    // the typed client and the raw unit-variant wire form.
    let handle = Server::spawn(
        ServeConfig {
            capacities: vec![4, 4],
            batch_window: Duration::ZERO,
            failures: mrls_sim::FailurePlan {
                model: mrls_sim::FailureModel::Random { prob: 1.0 },
                outages: vec![],
                retry: mrls_sim::RetryPolicy {
                    max_attempts: 1,
                    backoff_base: 0.5,
                    backoff_factor: 2.0,
                },
            },
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let mut client = Client::connect(handle.addr(), "doomed").unwrap();
    let job = mrls_model::MoldableJob::new(0, mrls_model::ExecTimeSpec::Constant { time: 1.0 });
    client.submit_job(job, vec![]).unwrap();
    client.drain().unwrap();
    let entries = client.quarantine().unwrap();
    assert_eq!(entries.len(), 1, "the only attempt failed into quarantine");
    assert_eq!(entries[0].tenant, "doomed");
    assert_eq!(entries[0].job, 0);
    assert_eq!(entries[0].cause, "fault");

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let response = raw_roundtrip(
        &mut stream,
        r#"{"id":31,"tenant":"t","body":"QueryQuarantine"}"#,
    );
    assert_eq!(response.id, 31);
    assert!(matches!(response.body, ResponseBody::Quarantine { .. }));
    // Malformed shapes are errors that keep the connection: a payload where
    // none belongs, and a misspelled variant.
    let response = raw_roundtrip(
        &mut stream,
        r#"{"id":32,"tenant":"t","body":{"QueryQuarantine":{"extra":1}}}"#,
    );
    assert_eq!(response.id, 32);
    assert!(matches!(response.body, ResponseBody::Error { .. }));
    let response = raw_roundtrip(
        &mut stream,
        r#"{"id":33,"tenant":"t","body":"QueryQuarantene"}"#,
    );
    assert_eq!(response.id, 33);
    assert!(matches!(response.body, ResponseBody::Error { .. }));
    // The connection survived all of it.
    let response = raw_roundtrip(
        &mut stream,
        r#"{"id":34,"tenant":"t","body":"QueryQuarantine"}"#,
    );
    assert!(matches!(response.body, ResponseBody::Quarantine { .. }));

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn oversized_query_quarantine_drops_the_connection() {
    let handle = spawn_server(128);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let long = format!(
        r#"{{"id":1,"tenant":"{}","body":"QueryQuarantine"}}"#,
        "x".repeat(500)
    );
    stream.write_all(long.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let reply = read_frame(&mut reader, 1 << 20).unwrap().expect("a reply");
    let response: Response = serde_json::from_str(&reply).unwrap();
    let ResponseBody::Error { message } = response.body else {
        panic!("expected an error response");
    };
    assert!(message.contains("128-byte limit"), "{message}");
    assert_eq!(read_frame(&mut reader, 1 << 20).unwrap(), None);

    Client::connect(handle.addr(), "t")
        .unwrap()
        .shutdown()
        .unwrap();
    handle.join();
}

#[test]
fn duplicate_idempotency_tokens_admit_once_over_the_wire() {
    let handle = spawn_server(1 << 16);
    let job = || mrls_model::MoldableJob::new(0, mrls_model::ExecTimeSpec::Constant { time: 1.0 });

    // The typed client: resending the same pinned token yields the
    // original id and no second admission.
    let mut client = Client::connect(handle.addr(), "t").unwrap();
    let first = client
        .submit_job_with_token(job(), vec![], "tok-a")
        .unwrap();
    let replay = client
        .submit_job_with_token(job(), vec![], "tok-a")
        .unwrap();
    assert_eq!(first, replay, "the replay must return the original id");
    assert_eq!(client.status().unwrap().jobs_submitted, 1);

    // Even from a *different connection* (the crashed-and-reconnected
    // client): the dedup window lives in the server, not the socket.
    let mut second = Client::connect(handle.addr(), "t").unwrap();
    let replay = second
        .submit_job_with_token(job(), vec![], "tok-a")
        .unwrap();
    assert_eq!(first, replay);
    assert_eq!(second.status().unwrap().jobs_submitted, 1);

    // The raw wire form: a token field on the request JSON.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let tokened = Request {
        id: 51,
        tenant: "t".into(),
        token: Some("tok-a".to_string()),
        body: RequestBody::SubmitJob {
            job: job(),
            deps: vec![],
        },
    };
    let line = mrls_serve::encode_line(&tokened);
    assert!(line.contains(r#""token":"tok-a""#), "{line}");
    let response = raw_roundtrip(&mut stream, line.trim_end());
    assert_eq!(response.id, 51);
    let ResponseBody::Accepted { jobs } = response.body else {
        panic!("expected an accepted response");
    };
    assert_eq!(jobs, vec![first]);

    // Distinct tokens admit distinct jobs, and auto tokens never collide.
    let other = second
        .submit_job_with_token(job(), vec![], "tok-b")
        .unwrap();
    assert_ne!(first, other);
    let auto = second.submit_job(job(), vec![]).unwrap();
    assert_ne!(other, auto);
    assert_eq!(second.status().unwrap().jobs_submitted, 3);

    second.drain().unwrap();
    second.shutdown().unwrap();
    handle.join();
}

#[test]
fn empty_lines_are_skipped() {
    let handle = spawn_server(1 << 16);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(b"\n\n").unwrap();
    let response = raw_roundtrip(&mut stream, r#"{"id":3,"tenant":"t","body":"QueryStatus"}"#);
    assert_eq!(response.id, 3);

    Client::connect(handle.addr(), "t")
        .unwrap()
        .shutdown()
        .unwrap();
    handle.join();
}
