//! # mrls-bench — the experiment harness
//!
//! Shared infrastructure for the binaries that regenerate every table and
//! figure of the paper (see `DESIGN.md` §4 and `EXPERIMENTS.md`):
//!
//! * `fig1_ratio_curves` — Figure 1 (Theorem 2 estimated vs. actual ratio).
//! * `fig2_lower_bound` — Figure 2 / Theorem 6 (local list-scheduling gap).
//! * `table1_ratios` — Table 1 (theoretical ratios + empirical verification).
//! * `ext_campaign` — extended simulation campaign (mrls vs. baselines).
//! * `ext_ablation` — parameter/priority/allocator ablations.
//!
//! All binaries write CSV files into `results/` (relative to the workspace
//! root, configurable through the `MRLS_RESULTS_DIR` environment variable)
//! and print the same tables to stdout.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use mrls_analysis::export::ResultTable;
use mrls_analysis::validate_schedule;
use mrls_baseline::{BaselineScheduler, RigidListScheduler, RigidRule, SequentialScheduler};
use mrls_core::scheduler::{MrlsConfig, MrlsScheduler};
use mrls_core::PriorityRule;
use mrls_model::Instance;
use mrls_workload::InstanceRecipe;
use std::path::PathBuf;

/// Where result CSVs are written.
pub fn results_dir() -> PathBuf {
    std::env::var("MRLS_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Writes a table to `results/<name>.csv` and prints its Markdown rendering.
pub fn emit(name: &str, table: &ResultTable) {
    let path = results_dir().join(format!("{name}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("\n[{name}] written to {}\n", path.display()),
        Err(e) => eprintln!("\n[{name}] could not write {}: {e}\n", path.display()),
    }
    println!("{}", table.to_markdown());
}

/// The outcome of running one algorithm on one instance, normalised by a
/// shared lower bound.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Algorithm label.
    pub algorithm: String,
    /// Achieved makespan.
    pub makespan: f64,
    /// Makespan divided by the certified lower bound.
    pub normalized: f64,
}

/// Runs the paper's algorithm plus the standard baselines on one instance and
/// returns outcomes normalised by the mrls-certified lower bound. Every
/// schedule is re-validated; a panic here means a bug in a scheduler.
pub fn run_algorithms(instance: &Instance, include_sequential: bool) -> Vec<RunOutcome> {
    let result = MrlsScheduler::new(MrlsConfig::default())
        .schedule(instance)
        .expect("mrls must schedule every generated instance");
    assert!(
        validate_schedule(instance, &result.schedule).is_valid(),
        "mrls produced an invalid schedule"
    );
    let lb = result.lower_bound.max(1e-12);
    let mut outcomes = vec![RunOutcome {
        algorithm: "mrls".into(),
        makespan: result.schedule.makespan,
        normalized: result.schedule.makespan / lb,
    }];
    let baselines: Vec<Box<dyn BaselineScheduler>> = vec![
        Box::new(RigidListScheduler::new(
            RigidRule::Fastest,
            PriorityRule::CriticalPath,
        )),
        Box::new(RigidListScheduler::new(
            RigidRule::Cheapest,
            PriorityRule::CriticalPath,
        )),
        Box::new(RigidListScheduler::new(
            RigidRule::Balanced,
            PriorityRule::CriticalPath,
        )),
    ];
    for b in baselines {
        let out = b.run(instance).expect("baselines must run");
        assert!(
            validate_schedule(instance, &out.schedule).is_valid(),
            "baseline {} produced an invalid schedule",
            b.name()
        );
        outcomes.push(RunOutcome {
            algorithm: b.name().into(),
            makespan: out.schedule.makespan,
            normalized: out.schedule.makespan / lb,
        });
    }
    if include_sequential {
        let out = SequentialScheduler::new()
            .run(instance)
            .expect("sequential baseline must run");
        outcomes.push(RunOutcome {
            algorithm: "sequential".into(),
            makespan: out.schedule.makespan,
            normalized: out.schedule.makespan / lb,
        });
    }
    outcomes
}

/// Runs `f` over `seeds` in parallel (a scoped worker thread per core, pulling
/// indices off a shared counter) and collects the results in seed order.
pub fn parallel_over_seeds<T, F>(seeds: &[u64], recipe: &InstanceRecipe, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, &InstanceRecipe) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(seeds.len().max(1));
    let results = std::sync::Mutex::new(Vec::<(usize, T)>::with_capacity(seeds.len()));
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= seeds.len() {
                    break;
                }
                let value = f(seeds[idx], recipe);
                results
                    .lock()
                    .expect("worker threads do not panic")
                    .push((idx, value));
            });
        }
    });
    let mut collected = results.into_inner().expect("worker threads do not panic");
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, v)| v).collect()
}

/// Synthetic workloads for the list-scheduler **event-loop** benchmarks
/// (`core_event_loop` binary, `scheduler_scaling` criterion group): shapes
/// chosen so the per-event bookkeeping — not Phase 1 — dominates.
pub mod event_loop {
    use mrls_dag::Dag;
    use mrls_model::{Allocation, ExecTimeSpec, Instance, MoldableJob, SystemConfig};

    /// Pairwise-distinct execution times (so every completion is its own
    /// event) with a fixed pseudo-random jitter. The modulus is prime and
    /// larger than any benchmarked `n`, and the multiplier is coprime to
    /// it, so `j ↦ time` is injective below the modulus — no two jobs of a
    /// wave finish within the event-grouping tolerance of each other.
    fn jittered_time(j: usize) -> f64 {
        const P: usize = 999_983; // prime > max benchmarked n
        1.0 + (j.wrapping_mul(7919) % P) as f64 * 1e-6
    }

    fn jobs(n: usize) -> Vec<MoldableJob> {
        (0..n)
            .map(|j| {
                MoldableJob::new(
                    j,
                    ExecTimeSpec::Constant {
                        time: jittered_time(j),
                    },
                )
            })
            .collect()
    }

    /// A **wide independent layer**: `n` unit-allocation jobs on a
    /// two-type machine with capacity `n/8` per type, so thousands run
    /// concurrently, the ready queue stays hot the whole run, and every
    /// completion is a distinct event. The regime where the pre-index
    /// loop's per-event min-scan and re-sort are quadratic overall.
    pub fn wide(n: usize) -> (Instance, Vec<Allocation>) {
        let cap = ((n / 8).max(4)) as u64;
        let system = SystemConfig::new(vec![cap, cap]).expect("capacities >= 1");
        let instance = Instance::new(system, Dag::independent(n), jobs(n)).expect("valid instance");
        let decision = vec![Allocation::new(vec![1, 1]); n];
        (instance, decision)
    }

    /// A **deep chain**: `n` jobs in strict sequence. Running and ready
    /// sets never exceed one job — the skinny regime that checks the
    /// indexed structures add no overhead where the naive loop was already
    /// O(1) per event.
    pub fn deep(n: usize) -> (Instance, Vec<Allocation>) {
        let system = SystemConfig::new(vec![4, 4]).expect("capacities >= 1");
        let instance = Instance::new(system, Dag::chain(n), jobs(n)).expect("valid instance");
        let decision = vec![Allocation::new(vec![1, 1]); n];
        (instance, decision)
    }

    /// A **heterogeneous mix**: mostly narrow unit jobs with a scattered
    /// minority (one in 16) of long, near-capacity **wide** jobs on a
    /// two-type machine. The placement-mode stress shape: at-event greedy
    /// placement backfills narrow jobs around a wide job that never finds a
    /// free machine (head-of-line starvation), while look-ahead placement
    /// reserves the wide job's window. Also the `placement_modes` criterion
    /// workload, where the slot-set timeline carries many concurrent
    /// windows.
    pub fn heterogeneous(n: usize) -> (Instance, Vec<Allocation>) {
        let cap = ((n / 16).max(8)) as u64;
        let system = SystemConfig::new(vec![cap, cap]).expect("capacities >= 1");
        let wide_alloc = Allocation::new(vec![cap - cap / 4, cap - cap / 4]);
        let mut job_list = Vec::with_capacity(n);
        let mut decision = Vec::with_capacity(n);
        for j in 0..n {
            if j % 16 == 15 {
                // Wide: three quarters of the machine, several times longer
                // than the narrow background.
                job_list.push(MoldableJob::new(
                    j,
                    ExecTimeSpec::Constant {
                        time: 8.0 + jittered_time(j),
                    },
                ));
                decision.push(wide_alloc.clone());
            } else {
                job_list.push(MoldableJob::new(
                    j,
                    ExecTimeSpec::Constant {
                        time: jittered_time(j),
                    },
                ));
                decision.push(Allocation::new(vec![1, 1]));
            }
        }
        let instance =
            Instance::new(system, Dag::independent(n), job_list).expect("valid instance");
        (instance, decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrls_analysis::stats::Summary;

    #[test]
    fn run_algorithms_produces_normalised_outcomes() {
        let gi = InstanceRecipe::default_layered(15, 2, 8).generate(1);
        let outcomes = run_algorithms(&gi.instance, true);
        assert_eq!(outcomes.len(), 5);
        assert_eq!(outcomes[0].algorithm, "mrls");
        for o in &outcomes {
            assert!(
                o.normalized >= 1.0 - 1e-9,
                "{} below lower bound",
                o.algorithm
            );
            assert!(o.makespan > 0.0);
        }
    }

    #[test]
    fn parallel_over_seeds_preserves_order_and_determinism() {
        let recipe = InstanceRecipe::default_layered(10, 2, 8);
        let seeds: Vec<u64> = (0..6).collect();
        let a = parallel_over_seeds(&seeds, &recipe, |s, r| {
            r.generate(s).instance.num_jobs() as u64 + s
        });
        let b: Vec<u64> = seeds
            .iter()
            .map(|&s| recipe.generate(s).instance.num_jobs() as u64 + s)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn emit_writes_csv() {
        let dir = std::env::temp_dir().join("mrls_bench_emit_test");
        std::env::set_var("MRLS_RESULTS_DIR", &dir);
        let mut t = ResultTable::new(&["a"]);
        t.push_row(vec!["1".into()]);
        emit("unit_test_table", &t);
        assert!(dir.join("unit_test_table.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
        std::env::remove_var("MRLS_RESULTS_DIR");
        let _ = Summary::of(&[1.0]);
    }
}
