//! **Observability-overhead benchmark** — cost of the `mrls-obs` counter
//! layer on the hottest instrumented path, the offline list scheduler's
//! indexed event loop (`ListScheduler::schedule` over the
//! [`mrls_bench::event_loop`] shapes).
//!
//! Three timings per configuration:
//!
//! * `disabled_ms` — collection off: every `counter_add` call site is one
//!   relaxed atomic load and a branch. This is the default state everywhere
//!   except inside a serve core, so it is the cost every non-serving user of
//!   the library pays for the instrumentation existing at all.
//! * `enabled_ms` — collection on: call sites update the thread-local store
//!   (drained with `mrls_obs::take()` after every run so it cannot grow).
//! * `overhead_pct` — `(disabled - baseline) / baseline` where `baseline`
//!   re-times the same loop with collection off after a warm-up, i.e. the
//!   run-to-run noise floor; the headline `disabled_vs_ref_pct` column
//!   instead compares against a fixed reference from the pre-obs commit
//!   (`ref-ms`, default 10.70 — the PR 6 `core_event_loop` wide n=20000
//!   indexed median on the same container class). All timings are
//!   best-of-`reps` (see [`best_ms`]); an interleaved A/B against a
//!   pre-obs worktree build of the same binary put the true disabled-path
//!   cost at the measurement floor (9.86ms pre vs 9.87ms instrumented).
//!   On shared containers the wall clock drifts hour to hour far more than
//!   2%, so for a like-for-like gate measure the pre-obs `core_event_loop`
//!   in the same window (e.g. from a `git worktree` build) and pass it as
//!   `ref-ms=` — the committed CSV records whichever reference was used.
//!
//! The acceptance gate for the observability PR is `disabled_vs_ref_pct`
//! under 2% on `wide n=20000` — the disabled path must be free.
//!
//! The causal-explainability layer's call sites are part of what this bench
//! measures: the list scheduler's wait-reason recording (blame categories)
//! sits inside the timed event loop behind the same `mrls_obs::enabled()`
//! gate, so the gate also covers the span/blame instrumentation added on
//! top of the original counters. (The engine's per-job ready-time record
//! and the serve flight recorder are plain field writes on paths this
//! bench does not exercise — they are always on and O(1) per event.)
//!
//! Arguments (`key=value`, all optional): `n=1000,5000,20000 reps=5
//! ref-ms=10.70`. CI-sized smoke: `n=600,1200 reps=2`.
//! Results go to `results/obs_overhead.csv`.

use mrls_analysis::export::{fmt3, ResultTable};
use mrls_bench::{emit, event_loop};
use mrls_core::{ListScheduler, PriorityRule};
use std::time::Instant;

const ARG_KEYS: &[&str] = &["n", "reps", "ref-ms"];

/// Strict `key=value` lookup (same contract as the `mrls` CLI): unknown
/// keys, malformed tokens and unparsable values exit with code 2.
fn args() -> (Vec<usize>, usize, f64) {
    let mut ns = vec![1000usize, 5000, 20000];
    let mut reps = 5usize;
    let mut ref_ms = 10.70f64;
    for a in std::env::args().skip(1) {
        let Some((k, v)) = a.split_once('=') else {
            eprintln!("malformed argument `{a}` (expected key=value)");
            std::process::exit(2);
        };
        if !ARG_KEYS.contains(&k) {
            eprintln!(
                "unknown key `{k}` (expected one of: {})",
                ARG_KEYS.join(", ")
            );
            std::process::exit(2);
        }
        match k {
            "reps" => reps = v.parse().unwrap_or_else(|_| invalid(k, v)),
            "ref-ms" => ref_ms = v.parse().unwrap_or_else(|_| invalid(k, v)),
            _ => {
                ns = v
                    .split(',')
                    .map(|w| w.parse().unwrap_or_else(|_| invalid(k, v)))
                    .collect();
            }
        }
    }
    (ns, reps.max(1), ref_ms)
}

fn invalid(k: &str, v: &str) -> ! {
    eprintln!("invalid value `{v}` for `{k}`");
    std::process::exit(2);
}

/// Best (minimum) wall time of `reps` runs of `f`, in milliseconds.
///
/// Minimum, not median: on a shared container, scheduler preemption and
/// frequency scaling add strictly positive noise (run-to-run medians here
/// swing ±25%), so the minimum is the least-biased estimator of intrinsic
/// cost — the same reasoning as `timeit`'s `min(repeat(...))`. Both sides
/// of every comparison in this bench get the same statistic.
fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let (ns, reps, ref_ms) = args();
    let scheduler = ListScheduler::new(PriorityRule::CriticalPath);
    let mut table = ResultTable::new(&[
        "shape",
        "n",
        "baseline_ms",
        "disabled_ms",
        "enabled_ms",
        "overhead_pct",
        "enabled_pct",
        "ref_ms",
        "disabled_vs_ref_pct",
    ]);

    type Workload = fn(usize) -> (mrls_model::Instance, Vec<mrls_model::Allocation>);
    for (shape, build) in [
        ("wide", event_loop::wide as Workload),
        ("deep", event_loop::deep as Workload),
    ] {
        for &n in &ns {
            let (instance, decision) = build(n);
            let run = || {
                scheduler
                    .schedule(&instance, &decision)
                    .expect("schedule succeeds");
            };

            // Warm-up, then two disabled timings: `baseline_ms` is the noise
            // floor the `overhead_pct` column is measured against.
            mrls_obs::set_enabled(false);
            run();
            let baseline_ms = best_ms(reps, run);
            let disabled_ms = best_ms(reps, run);

            mrls_obs::set_enabled(true);
            let _ = mrls_obs::take();
            let enabled_ms = best_ms(reps, || {
                scheduler
                    .schedule(&instance, &decision)
                    .expect("schedule succeeds");
                // Drain per run so the thread-local store stays flat.
                let _ = mrls_obs::take();
            });
            mrls_obs::set_enabled(false);
            let _ = mrls_obs::take();

            let overhead_pct = (disabled_ms - baseline_ms) / baseline_ms.max(1e-9) * 100.0;
            let enabled_pct = (enabled_ms - baseline_ms) / baseline_ms.max(1e-9) * 100.0;
            let vs_ref_pct = if shape == "wide" && n == 20000 {
                (disabled_ms - ref_ms) / ref_ms * 100.0
            } else {
                f64::NAN
            };
            println!(
                "{shape:>4}  n {n:>6}  baseline {baseline_ms:>8.2}ms  disabled {disabled_ms:>8.2}ms \
                 ({overhead_pct:>+6.2}%)  enabled {enabled_ms:>8.2}ms ({enabled_pct:>+6.2}%)"
            );
            if vs_ref_pct.is_finite() {
                println!(
                    "      gate: disabled vs pre-obs reference {ref_ms:.2}ms = {vs_ref_pct:+.2}% \
                     (acceptance: < 2%)"
                );
            }
            table.push_row(vec![
                shape.to_string(),
                n.to_string(),
                fmt3(baseline_ms),
                fmt3(disabled_ms),
                fmt3(enabled_ms),
                fmt3(overhead_pct),
                fmt3(enabled_pct),
                if vs_ref_pct.is_finite() {
                    fmt3(ref_ms)
                } else {
                    String::new()
                },
                if vs_ref_pct.is_finite() {
                    fmt3(vs_ref_pct)
                } else {
                    String::new()
                },
            ]);
        }
    }

    emit("obs_overhead", &table);
}
