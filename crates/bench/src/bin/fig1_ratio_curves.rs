//! **Figure 1 reproduction** — comparison of the *estimated* ratio of
//! Theorem 2 (obtained with the closed-form `µ ≈ d^{-1/3}`), the *actual*
//! ratio (obtained with the numerically optimal `µ*`, the root of
//! `h_d(µ) = 0`), and the ratio of Theorem 1, for `22 ≤ d ≤ 50`.
//!
//! The paper's figure shows that (a) the estimate is very close to the actual
//! value and (b) both clearly improve on Theorem 1 in this range. The harness
//! prints the three series plus the asymptotic expansion `d + 3·d^{2/3}` and
//! writes them to `results/fig1_ratio_curves.csv`.

use mrls_analysis::export::{fmt3, ResultTable};
use mrls_bench::emit;
use mrls_core::theory;

fn main() {
    let mut table = ResultTable::new(&[
        "d",
        "theorem1_ratio",
        "theorem2_estimated",
        "theorem2_actual",
        "asymptotic_d_plus_3d23",
        "mu_star",
        "mu_estimate",
    ]);
    println!("Figure 1 — Theorem 2 ratio: estimated vs actual vs Theorem 1 (22 <= d <= 50)");
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>14} {:>10} {:>10}",
        "d", "Thm1", "Thm2 est", "Thm2 actual", "d+3d^(2/3)", "mu*", "1/cbrt(d)"
    );
    for d in 22..=50usize {
        let t1 = theory::theorem1_ratio(d);
        let est = theory::theorem2_estimated_ratio(d);
        let act = theory::theorem2_actual_ratio(d);
        let asy = theory::theorem2_asymptotic(d);
        let mu_star = theory::theorem2_mu_star(d);
        let mu_est = 1.0 / (d as f64).cbrt();
        println!(
            "{:>4} {:>12.3} {:>12.3} {:>12.3} {:>14.3} {:>10.4} {:>10.4}",
            d, t1, est, act, asy, mu_star, mu_est
        );
        table.push_row(vec![
            d.to_string(),
            fmt3(t1),
            fmt3(est),
            fmt3(act),
            fmt3(asy),
            format!("{mu_star:.5}"),
            format!("{mu_est:.5}"),
        ]);
    }
    emit("fig1_ratio_curves", &table);

    // Reproduce the qualitative claims of the figure.
    let worst_gap = (22..=50)
        .map(|d| {
            let est = theory::theorem2_estimated_ratio(d);
            let act = theory::theorem2_actual_ratio(d);
            (est - act) / act
        })
        .fold(0.0f64, f64::max);
    let min_improvement = (22..=50)
        .map(|d| theory::theorem1_ratio(d) - theory::theorem2_actual_ratio(d))
        .fold(f64::INFINITY, f64::min);
    println!(
        "largest relative gap between estimate and actual ratio: {:.2}%",
        100.0 * worst_gap
    );
    println!("smallest absolute improvement over Theorem 1 in the range: {min_improvement:.3}");
    assert!(
        worst_gap < 0.05,
        "the estimate should track the actual ratio closely"
    );
    assert!(
        min_improvement > 0.0,
        "Theorem 2 must improve on Theorem 1 for d >= 22"
    );
}
