//! **Table 1 reproduction** — the summary of approximation results.
//!
//! Two parts:
//!
//! 1. The *theoretical* table itself: for every graph class and a range of
//!    `d`, the guaranteed approximation ratio exactly as printed in Table 1
//!    of the paper.
//! 2. An *empirical verification*: for every row we generate many random
//!    instances of that class, run the full two-phase algorithm with the
//!    theorem-prescribed parameters, and report the worst and mean measured
//!    ratio `T / LB` (where `LB ≤ T_opt` is the certified lower bound). The
//!    measured ratios must never exceed the theoretical guarantee — and in
//!    practice they are far below it, which is the usual message of
//!    simulation sections for this class of algorithms.
//!
//! Results go to `results/table1_theory.csv` and `results/table1_empirical.csv`.

use mrls_analysis::export::{fmt3, ResultTable};
use mrls_analysis::stats::Summary;
use mrls_bench::{emit, parallel_over_seeds};
use mrls_core::scheduler::{MrlsConfig, MrlsScheduler};
use mrls_core::theory;
use mrls_model::AllocationSpace;
use mrls_workload::{DagRecipe, InstanceRecipe, JobRecipe, SpeedupFamily, SystemRecipe};

fn main() {
    let epsilon = 0.1;
    // -------- Part 1: the theoretical Table 1. --------
    let mut theory_table = ResultTable::new(&[
        "d",
        "general_thm1",
        "general_thm2_actual",
        "sp_trees_thm3",
        "sp_trees_thm4",
        "independent_thm5",
        "local_list_lower_bound",
    ]);
    println!("Table 1 (theoretical) — approximation ratios per graph class (epsilon = {epsilon})");
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "d", "Thm1", "Thm2", "Thm3", "Thm4", "Thm5", "LB (Thm6)"
    );
    for d in 1..=30usize {
        let thm4 = if d >= 4 {
            theory::theorem4_ratio(d, epsilon)
        } else {
            f64::NAN
        };
        println!(
            "{:>4} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>10.1}",
            d,
            theory::theorem1_ratio(d),
            theory::theorem2_actual_ratio(d),
            theory::theorem3_ratio(d, epsilon),
            thm4,
            theory::independent_ratio(d),
            theory::theorem6_lower_bound(d)
        );
        theory_table.push_row(vec![
            d.to_string(),
            fmt3(theory::theorem1_ratio(d)),
            fmt3(theory::theorem2_actual_ratio(d)),
            fmt3(theory::theorem3_ratio(d, epsilon)),
            if d >= 4 { fmt3(thm4) } else { "n/a".into() },
            fmt3(theory::independent_ratio(d)),
            fmt3(theory::theorem6_lower_bound(d)),
        ]);
    }
    emit("table1_theory", &theory_table);

    // -------- Part 2: empirical verification per class. --------
    let seeds: Vec<u64> = (0..30).collect();
    let n = 30usize;
    let p = 16u64;
    let classes: Vec<(&str, DagRecipe)> = vec![
        (
            "general",
            DagRecipe::RandomLayered {
                n,
                layers: 6,
                edge_prob: 0.3,
            },
        ),
        (
            "series-parallel",
            DagRecipe::RandomSeriesParallel {
                n,
                series_prob: 0.5,
            },
        ),
        ("tree", DagRecipe::RandomOutTree { n, max_children: 3 }),
        ("independent", DagRecipe::Independent { n }),
    ];

    let mut empirical = ResultTable::new(&[
        "class",
        "d",
        "seeds",
        "mean_measured_ratio",
        "p95_measured_ratio",
        "worst_measured_ratio",
        "theoretical_guarantee",
        "within_guarantee",
    ]);
    println!(
        "\nTable 1 (empirical verification) — measured T/LB vs guarantee ({} seeds per cell)",
        seeds.len()
    );
    println!(
        "{:<16} {:>3} {:>10} {:>10} {:>10} {:>12} {:>8}",
        "class", "d", "mean", "p95", "worst", "guarantee", "ok"
    );
    for (label, dag) in &classes {
        for d in 1..=4usize {
            let recipe = InstanceRecipe {
                system: SystemRecipe::Uniform { d, p },
                dag: dag.clone(),
                jobs: JobRecipe {
                    family: SpeedupFamily::Amdahl,
                    work_range: (10.0, 80.0),
                    seq_fraction_range: (0.0, 0.25),
                    space: AllocationSpace::PowersOfTwo,
                    heavy_kind_factor: 2.0,
                },
            };
            let results = parallel_over_seeds(&seeds, &recipe, |seed, r| {
                let gi = r.generate(seed);
                let res = MrlsScheduler::new(MrlsConfig {
                    epsilon,
                    ..MrlsConfig::default()
                })
                .schedule(&gi.instance)
                .expect("mrls schedules every instance");
                (res.measured_ratio(), res.params.ratio_guarantee)
            });
            let ratios: Vec<f64> = results.iter().map(|(r, _)| *r).collect();
            let guarantee = results.iter().map(|(_, g)| *g).fold(0.0f64, f64::max);
            let summary = Summary::of(&ratios);
            let ok = summary.max <= guarantee + 1e-6;
            println!(
                "{:<16} {:>3} {:>10.3} {:>10.3} {:>10.3} {:>12.3} {:>8}",
                label, d, summary.mean, summary.p95, summary.max, guarantee, ok
            );
            empirical.push_row(vec![
                label.to_string(),
                d.to_string(),
                seeds.len().to_string(),
                fmt3(summary.mean),
                fmt3(summary.p95),
                fmt3(summary.max),
                fmt3(guarantee),
                ok.to_string(),
            ]);
            assert!(
                ok,
                "class {label}, d={d}: measured ratio exceeded the guarantee"
            );
        }
    }
    emit("table1_empirical", &empirical);
}
