//! **Placement-mode benchmark** — `AtEvent` greedy placement against
//! `LookAhead` slot-set reservation (see `mrls_core::PlacementMode`) on a
//! capacity-churn heterogeneous mix, measured by **mean per-job stretch**
//! `(finish - release) / nominal` over an online simulation.
//!
//! The mix is built to exhibit the classic greedy-backfill pathology:
//!
//! * a handful of near-capacity **stage** jobs (3/4 of the machine for a
//!   few seconds), each gating a fan-out of narrow children — think
//!   synchronisation or reduction phases;
//! * a **background stream** of unit narrow jobs trickling in at ~55% of
//!   machine capacity for the whole horizon;
//! * two **capacity-churn** drop/recovery cycles (to 7/8 capacity, above
//!   the stage requirement) exercising the slot-set under online shifts.
//!
//! Under `AtEvent` the instantaneous free capacity hovers around 45% — the
//! stage job at the queue head never fits *now*, every event backfills more
//! background narrows, and the stages (plus every child behind them) starve
//! until the stream dries up. Under `LookAhead` the blocked stage claims a
//! reservation roughly one narrow-length out, the pass stops backfilling
//! across it, and the fan-out runs ~immediately — trading a small
//! background delay for the rescue of ~37% of all jobs.
//!
//! Runs are deterministic (no perturbation; fixed release pattern), so the
//! stretch columns are byte-stable across machines; only `wall_ms` varies.
//!
//! Arguments (`key=value`, all optional): `n=1000,5000,20000`.
//! Results go to `results/placement_modes.csv`.

use mrls_analysis::export::{fmt3, ResultTable};
use mrls_bench::emit;
use mrls_core::{ListScheduler, PlacementMode, PriorityRule};
use mrls_dag::Dag;
use mrls_model::{Allocation, ExecTimeSpec, Instance, MoldableJob, SystemConfig};
use mrls_sim::{ReactiveListPolicy, Scenario, SimConfig, Simulator};
use std::time::Instant;

const ARG_KEYS: &[&str] = &["n"];

/// Number of stage jobs — constant in `n` so stage work stays a bounded
/// fraction of the machine-time budget at every size.
const STAGES: usize = 5;

/// Strict `key=value` lookup (same contract as the `mrls` CLI): unknown
/// keys, malformed tokens and unparsable values exit with code 2.
fn args() -> Vec<usize> {
    let mut ns = vec![1000usize, 5000, 20000];
    for a in std::env::args().skip(1) {
        let Some((k, v)) = a.split_once('=') else {
            eprintln!("malformed argument `{a}` (expected key=value)");
            std::process::exit(2);
        };
        if !ARG_KEYS.contains(&k) {
            eprintln!(
                "unknown key `{k}` (expected one of: {})",
                ARG_KEYS.join(", ")
            );
            std::process::exit(2);
        }
        ns = v
            .split(',')
            .map(|w| w.parse().unwrap_or_else(|_| invalid(k, v)))
            .collect();
    }
    ns
}

fn invalid(k: &str, v: &str) -> ! {
    eprintln!("invalid value `{v}` for `{k}`");
    std::process::exit(2);
}

/// Sub-microsecond deterministic jitter so no two completions coalesce into
/// one event (same construction as `mrls_bench::event_loop`).
fn jitter(j: usize) -> f64 {
    const P: usize = 999_983;
    (j.wrapping_mul(7919) % P) as f64 * 1e-6
}

/// Instance + Phase-1 decision + per-job release times + capacity changes
/// `(time, resource, capacity)`.
type Mix = (Instance, Vec<Allocation>, Vec<f64>, Vec<(f64, usize, u64)>);

/// The capacity-churn heterogeneous mix.
fn mix(n: usize) -> Mix {
    let cap = ((n / 16).max(8)) as u64;
    let system = SystemConfig::new(vec![cap, cap]).expect("capacities >= 1");
    let stage_alloc = Allocation::new(vec![cap - cap / 4, cap - cap / 4]);
    let narrow_alloc = Allocation::new(vec![1, 1]);

    // Layout: STAGES groups of (1 stage + `children` narrows that depend on
    // it), then the independent background stream. Sized well below
    // saturation (~70% of machine-time over the horizon): a saturated mix
    // would drown the placement signal in pure queueing that no policy can
    // avoid, and the reservation's transient backlog must drain between
    // consecutive stages.
    let children = n / 20;
    let group = 1 + children;
    let structured = STAGES * group;
    assert!(structured < n, "n too small for {STAGES} stage groups");
    let background = n - structured;

    // Background admission rate: ~35% of per-type capacity per second, so
    // the greedy free headroom hovers around 65% — below the stage
    // requirement of 75% — for the whole horizon.
    let rate = 0.35 * cap as f64;
    let horizon = background as f64 / rate;

    let mut jobs = Vec::with_capacity(n);
    let mut decision = Vec::with_capacity(n);
    let mut releases = vec![0.0f64; n];
    let mut edges = Vec::with_capacity(STAGES * children);
    for g in 0..STAGES {
        let s = g * group;
        // Stages spread over the interior of the horizon: the background
        // stream is already in steady state at the first and still flowing
        // after the last.
        let release = (g + 1) as f64 * horizon / (STAGES + 1) as f64;
        jobs.push(MoldableJob::new(
            s,
            ExecTimeSpec::Constant {
                time: 2.0 + jitter(s),
            },
        ));
        decision.push(stage_alloc.clone());
        for c in s + 1..s + group {
            // Children are short: their stretch is dominated by how long
            // the gating stage sat blocked, which is exactly the
            // placement-mode difference.
            jobs.push(MoldableJob::new(
                c,
                ExecTimeSpec::Constant {
                    time: 0.5 + jitter(c),
                },
            ));
            decision.push(narrow_alloc.clone());
            edges.push((s, c));
        }
        // The stage and its whole fan-out are released together.
        releases[s..s + group].fill(release);
    }
    for (i, j) in (structured..n).enumerate() {
        jobs.push(MoldableJob::new(
            j,
            ExecTimeSpec::Constant {
                time: 1.0 + jitter(j),
            },
        ));
        decision.push(narrow_alloc.clone());
        releases[j] = i as f64 / rate;
    }

    // Two churn cycles per run: alternating single-type drops to 7/8
    // capacity (still above the stage requirement) with full recoveries.
    let dropped = cap - cap / 8;
    let changes = vec![
        (0.20 * horizon, 0, dropped),
        (0.35 * horizon, 0, cap),
        (0.50 * horizon, 1, dropped),
        (0.65 * horizon, 1, cap),
    ];

    let dag = Dag::from_edges(n, &edges).expect("stage edges are acyclic");
    let instance = Instance::new(system, dag, jobs).expect("valid instance");
    (instance, decision, releases, changes)
}

fn main() {
    let ns = args();
    let scheduler = ListScheduler::new(PriorityRule::CriticalPath);
    let mut table = ResultTable::new(&[
        "n",
        "mode",
        "mean_stretch",
        "max_stretch",
        "makespan",
        "wall_ms",
    ]);

    for &n in &ns {
        let (instance, decision, releases, changes) = mix(n);
        let plan = scheduler
            .schedule(&instance, &decision)
            .expect("offline plan");
        let config = SimConfig {
            scenario: Scenario::offline()
                .with_release_times(releases.clone())
                .with_capacity_changes(changes.clone()),
            ..SimConfig::default()
        };
        let sim = Simulator::new(config);

        for mode in [PlacementMode::AtEvent, PlacementMode::LookAhead] {
            let mut policy =
                ReactiveListPolicy::new(PriorityRule::CriticalPath).with_placement(mode);
            let t = Instant::now();
            let trace = sim
                .run(&instance, &plan, &mut policy)
                .expect("run completes");
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;

            // Mean per-job stretch: (finish - release) / nominal time under
            // the allocation the job actually ran with.
            let (mut sum, mut max) = (0.0f64, 0.0f64);
            assert_eq!(trace.realized.jobs.len(), n, "all jobs must complete");
            for sj in &trace.realized.jobs {
                let nominal = instance.jobs[sj.job].spec.time(&sj.alloc);
                let stretch = (sj.finish - releases[sj.job]) / nominal;
                sum += stretch;
                max = max.max(stretch);
            }
            let mean = sum / n as f64;

            let label = match mode {
                PlacementMode::AtEvent => "at_event",
                PlacementMode::LookAhead => "look_ahead",
            };
            println!(
                "n {n:>6}  {label:>10}  mean stretch {mean:>7.3}  max {max:>8.3}  \
                 makespan {:>8.2}  wall {wall_ms:>8.2}ms",
                trace.stats.realized_makespan
            );
            table.push_row(vec![
                n.to_string(),
                label.to_string(),
                fmt3(mean),
                fmt3(max),
                fmt3(trace.stats.realized_makespan),
                fmt3(wall_ms),
            ]);
        }
    }

    emit("placement_modes", &table);
}
