//! **Extended experiment E2** — ablations of the design knobs DESIGN.md calls
//! out:
//!
//! * the rounding parameter `ρ` (vs. the theorem value `ρ* = 1/(√(φd)+1)`),
//! * the adjustment parameter `µ` (vs. `µ* = 1 − 1/φ`) and disabling the
//!   adjustment entirely,
//! * the Phase-1 allocator (LP rounding vs. FPTAS vs. per-job heuristics),
//! * the Phase-2 priority rule (critical path vs. local rules).
//!
//! Results go to `results/ext_ablation_*.csv`.

use mrls_analysis::export::{fmt3, ResultTable};
use mrls_analysis::stats::Summary;
use mrls_bench::{emit, parallel_over_seeds};
use mrls_core::scheduler::{AllocatorKind, MrlsConfig, MrlsScheduler};
use mrls_core::{theory, PriorityRule};
use mrls_model::AllocationSpace;
use mrls_workload::{DagRecipe, InstanceRecipe, JobRecipe, SpeedupFamily, SystemRecipe};

fn base_recipe(d: usize) -> InstanceRecipe {
    InstanceRecipe {
        system: SystemRecipe::Uniform { d, p: 16 },
        dag: DagRecipe::RandomLayered {
            n: 40,
            layers: 6,
            edge_prob: 0.25,
        },
        jobs: JobRecipe {
            family: SpeedupFamily::Amdahl,
            work_range: (10.0, 80.0),
            seq_fraction_range: (0.0, 0.2),
            space: AllocationSpace::PowersOfTwo,
            heavy_kind_factor: 2.0,
        },
    }
}

fn run_config(
    label: &str,
    config: MrlsConfig,
    recipe: &InstanceRecipe,
    seeds: &[u64],
    table: &mut ResultTable,
) {
    let ratios = parallel_over_seeds(seeds, recipe, |seed, r| {
        let gi = r.generate(seed);
        MrlsScheduler::new(config.clone())
            .schedule(&gi.instance)
            .expect("scheduling succeeds")
            .measured_ratio()
    });
    let s = Summary::of(&ratios);
    println!(
        "  {:<34} mean {:>6.3}  p95 {:>6.3}  worst {:>6.3}",
        label, s.mean, s.p95, s.max
    );
    table.push_row(vec![
        label.to_string(),
        fmt3(s.mean),
        fmt3(s.p95),
        fmt3(s.max),
    ]);
}

fn main() {
    let seeds: Vec<u64> = (0..15).collect();
    let d = 3usize;
    let recipe = base_recipe(d);
    let (mu_star, rho_star) = theory::general_params(d);

    // ---- Ablation A: the rounding parameter rho. ----
    println!("E2a — rounding parameter ρ (LP allocator, layered, d = {d}); ρ* = {rho_star:.3}");
    let mut table = ResultTable::new(&["configuration", "mean_ratio", "p95_ratio", "worst_ratio"]);
    for rho in [0.1, 0.25, rho_star, 0.5, 0.75, 0.9] {
        let config = MrlsConfig {
            allocator: AllocatorKind::LpRounding,
            rho: Some(rho),
            ..MrlsConfig::default()
        };
        run_config(
            &format!("rho={rho:.3}"),
            config,
            &recipe,
            &seeds,
            &mut table,
        );
    }
    emit("ext_ablation_rho", &table);

    // ---- Ablation B: the adjustment parameter mu. ----
    println!("\nE2b — adjustment parameter µ (LP allocator, layered, d = {d}); µ* = {mu_star:.3}");
    let mut table = ResultTable::new(&["configuration", "mean_ratio", "p95_ratio", "worst_ratio"]);
    for mu in [0.1, 0.2, mu_star, 0.45, 0.49] {
        let config = MrlsConfig {
            allocator: AllocatorKind::LpRounding,
            mu: Some(mu),
            ..MrlsConfig::default()
        };
        run_config(&format!("mu={mu:.3}"), config, &recipe, &seeds, &mut table);
    }
    let no_adjust = MrlsConfig {
        allocator: AllocatorKind::LpRounding,
        apply_adjustment: false,
        ..MrlsConfig::default()
    };
    run_config("no-adjustment", no_adjust, &recipe, &seeds, &mut table);
    emit("ext_ablation_mu", &table);

    // ---- Ablation C: the Phase-1 allocator. ----
    println!("\nE2c — Phase-1 allocator (layered general DAGs, d = {d})");
    let mut table = ResultTable::new(&["configuration", "mean_ratio", "p95_ratio", "worst_ratio"]);
    for (label, kind) in [
        ("lp-rounding", AllocatorKind::LpRounding),
        ("min-time", AllocatorKind::MinTime),
        ("min-area", AllocatorKind::MinArea),
        ("min-local-max", AllocatorKind::MinLocalMax),
    ] {
        let config = MrlsConfig {
            allocator: kind,
            ..MrlsConfig::default()
        };
        run_config(label, config, &recipe, &seeds, &mut table);
    }
    emit("ext_ablation_allocator", &table);

    // On SP graphs, also compare the FPTAS against the LP path.
    println!("\nE2c' — Phase-1 allocator on series-parallel graphs (d = {d})");
    let sp_recipe = InstanceRecipe {
        dag: DagRecipe::RandomSeriesParallel {
            n: 40,
            series_prob: 0.5,
        },
        ..base_recipe(d)
    };
    let mut table = ResultTable::new(&["configuration", "mean_ratio", "p95_ratio", "worst_ratio"]);
    for (label, kind) in [
        ("sp-fptas", AllocatorKind::SpFptas),
        ("lp-rounding", AllocatorKind::LpRounding),
        ("min-local-max", AllocatorKind::MinLocalMax),
    ] {
        let config = MrlsConfig {
            allocator: kind,
            ..MrlsConfig::default()
        };
        run_config(label, config, &sp_recipe, &seeds, &mut table);
    }
    emit("ext_ablation_allocator_sp", &table);

    // ---- Ablation D: the Phase-2 priority rule. ----
    println!("\nE2d — Phase-2 priority rule (LP allocator, layered, d = {d})");
    let mut table = ResultTable::new(&["configuration", "mean_ratio", "p95_ratio", "worst_ratio"]);
    for (label, rule) in [
        ("critical-path", PriorityRule::CriticalPath),
        ("fifo", PriorityRule::Fifo),
        ("longest-time", PriorityRule::LongestTimeFirst),
        ("largest-area", PriorityRule::LargestAreaFirst),
    ] {
        let config = MrlsConfig {
            allocator: AllocatorKind::LpRounding,
            priority: rule,
            ..MrlsConfig::default()
        };
        run_config(label, config, &recipe, &seeds, &mut table);
    }
    emit("ext_ablation_priority", &table);
}
