//! **Event-loop benchmark** — the offline list scheduler's indexed event
//! loop ([`ListScheduler::schedule`]: completion heap + persistent ready
//! queue + requirement-floor sweep exit) against the retained pre-index
//! reference ([`ListScheduler::schedule_naive`]: linear min-scan per event,
//! full ready re-sort per pass, `Vec::remove` per start).
//!
//! Two shapes per size (see [`mrls_bench::event_loop`]):
//!
//! * `wide` — one independent layer of `n` unit-allocation jobs on a
//!   machine with capacity `n/8`: the event-heavy regime where the naive
//!   loop degrades to O(n) per completion event;
//! * `deep` — a chain of `n` jobs: running/ready sets of size one, checking
//!   the indexed structures cost nothing where the naive loop was already
//!   cheap.
//!
//! Every configuration first asserts the two paths produce **byte-identical
//! schedule JSON** (so the CI smoke run doubles as an equivalence gate),
//! then reports the median wall time of each over `reps` runs and their
//! ratio. Results go to `results/core_event_loop.csv`.
//!
//! Both placement modes run: the `AtEvent` equivalence gate above, plus the
//! `LookAhead` slot-set loop ([`ListScheduler::schedule_lookahead`]), which
//! at CI sizes (n <= 2000) is additionally pinned byte-identical to its own
//! brute-force timestep-prober reference
//! ([`ListScheduler::schedule_lookahead_reference`]).
//!
//! Arguments (`key=value`, all optional): `n=1000,5000,20000 reps=3`.
//! CI-sized smoke: `n=600,1200 reps=2`.

use mrls_analysis::export::{fmt3, ResultTable};
use mrls_bench::{emit, event_loop};
use mrls_core::{ListScheduler, PriorityRule};
use std::time::Instant;

const ARG_KEYS: &[&str] = &["n", "reps"];

/// Strict `key=value` lookup (same contract as the `mrls` CLI): unknown
/// keys, malformed tokens and unparsable values exit with code 2.
fn args() -> (Vec<usize>, usize) {
    let mut ns = vec![1000usize, 5000, 20000];
    let mut reps = 3usize;
    for a in std::env::args().skip(1) {
        let Some((k, v)) = a.split_once('=') else {
            eprintln!("malformed argument `{a}` (expected key=value)");
            std::process::exit(2);
        };
        if !ARG_KEYS.contains(&k) {
            eprintln!(
                "unknown key `{k}` (expected one of: {})",
                ARG_KEYS.join(", ")
            );
            std::process::exit(2);
        }
        match k {
            "reps" => reps = v.parse().unwrap_or_else(|_| invalid(k, v)),
            _ => {
                ns = v
                    .split(',')
                    .map(|w| w.parse().unwrap_or_else(|_| invalid(k, v)))
                    .collect();
            }
        }
    }
    (ns, reps.max(1))
}

fn invalid(k: &str, v: &str) -> ! {
    eprintln!("invalid value `{v}` for `{k}`");
    std::process::exit(2);
}

/// Median wall time of `reps` runs of `f`, in milliseconds.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let (ns, reps) = args();
    let scheduler = ListScheduler::new(PriorityRule::CriticalPath);
    let mut table = ResultTable::new(&[
        "shape",
        "n",
        "events",
        "naive_ms",
        "indexed_ms",
        "speedup",
        "lookahead_ms",
    ]);

    type Workload = fn(usize) -> (mrls_model::Instance, Vec<mrls_model::Allocation>);
    for (shape, build) in [
        ("wide", event_loop::wide as Workload),
        ("deep", event_loop::deep as Workload),
    ] {
        for &n in &ns {
            let (instance, decision) = build(n);

            // Equivalence gate first: the indexed loop must be a pure
            // data-structure change.
            let indexed = scheduler
                .schedule(&instance, &decision)
                .expect("indexed schedule");
            let naive = scheduler
                .schedule_naive(&instance, &decision)
                .expect("naive schedule");
            assert_eq!(
                indexed.to_json(),
                naive.to_json(),
                "{shape} n={n}: indexed and naive schedules diverged"
            );

            // Look-ahead is new semantics with its own oracle: pin the
            // tree-indexed slot-set loop against the brute-force timestep
            // prober at CI sizes (the prober is quadratic, so large n only
            // run the indexed loop for timing).
            let lookahead = scheduler
                .schedule_lookahead(&instance, &decision)
                .expect("lookahead schedule");
            if n <= 2000 {
                let reference = scheduler
                    .schedule_lookahead_reference(&instance, &decision)
                    .expect("lookahead reference schedule");
                assert_eq!(
                    lookahead.to_json(),
                    reference.to_json(),
                    "{shape} n={n}: lookahead and its timestep prober diverged"
                );
            }

            let lookahead_ms = median_ms(reps, || {
                scheduler
                    .schedule_lookahead(&instance, &decision)
                    .expect("lookahead schedule");
            });
            let indexed_ms = median_ms(reps, || {
                scheduler
                    .schedule(&instance, &decision)
                    .expect("indexed schedule");
            });
            let naive_ms = median_ms(reps, || {
                scheduler
                    .schedule_naive(&instance, &decision)
                    .expect("naive schedule");
            });
            let speedup = naive_ms / indexed_ms.max(1e-9);
            println!(
                "{shape:>4}  n {n:>6}  naive {naive_ms:>9.2}ms  indexed {indexed_ms:>8.2}ms  \
                 speedup {speedup:>7.1}x  lookahead {lookahead_ms:>8.2}ms"
            );
            table.push_row(vec![
                shape.to_string(),
                n.to_string(),
                n.to_string(),
                fmt3(naive_ms),
                fmt3(indexed_ms),
                fmt3(speedup),
                fmt3(lookahead_ms),
            ]);
        }
    }

    emit("core_event_loop", &table);
}
