//! **Serving benchmark** — submission throughput, time-to-first-placement,
//! and per-round latency of the `mrls-serve` online scheduling service.
//!
//! Two sweeps:
//!
//! 1. **TCP sweep** (per batching window): an in-process server on an
//!    ephemeral loopback port, a client replaying `jobs` singleton
//!    submissions flat out. Reported per window:
//!    * `submit_per_s` — admissions per wall-clock second,
//!    * `ttfp_ms` — wall-clock time from the first submission until a
//!      `QueryStatus` poll first observes a placed job (the latency cost of
//!      batching),
//!    * `submit_p50_us` / `submit_p99_us` — request/response round-trip
//!      percentiles over the bulk stream,
//!    * `rounds` — how many scheduling rounds the stream coalesced into.
//!
//! 2. **Rounds-vs-latency sweep** (`rounds` one-job rounds, in-process, no
//!    TCP): the incremental [`ServiceCore`] and the [`NaiveService`]
//!    reference (the old checkpoint→clone→resume path) driven side by side,
//!    timing every `flush`. Reported per path: p50/p99 over all rounds plus
//!    first-decile vs last-decile medians and their ratio (`growth`) — the
//!    O(history)→O(live) change makes the incremental path flat in the
//!    round index where the naive path grows linearly.
//!
//! 3. **Durability sweep** (`rounds` four-submission rounds, in-process):
//!    the steady-state workload against a durable [`ServiceCore`] in each
//!    durability mode (`off` / `buffered` / `fsync`), timing every `flush`
//!    (round latency, same definition as sweep 2) and every submission (the
//!    WAL append of the admitted record rides the submit path, before the
//!    reply). Rounds carry a four-job batch — the coalescing regime the
//!    serve tier exists for; the durable flush appends one round marker
//!    regardless of batch size, so its cost is constant per round (the
//!    one-job worst case for that constant is sweep 2's regime). Reported per mode: p50/p99 round latency, the round-latency
//!    p50 overhead relative to `off`, the submit p50, and the log volume
//!    (bytes, checkpoints) the run produced. The `buffered` round overhead
//!    is the headline number: the write-through round marker must stay
//!    within a few percent of `off` at p50 (checkpoints ride the cadence
//!    and surface at p99; `fsync` pays a disk sync per record by design).
//!
//! Arguments (`key=value`, all optional): `jobs=120 windows-ms=0,10,50
//! rounds=320 timing=false` (`rounds=0` skips the second and third sweeps;
//! `timing=true` turns on the service's per-phase round instrumentation —
//! see `mrls_core::timing` — and fills the `timed_us_per_round` column,
//! which stays `0.000` in the default timing-off runs).
//! CI-sized smoke: `jobs=20 windows-ms=0,25 rounds=120`.
//!
//! Results go to `results/serve_throughput.csv`,
//! `results/serve_rounds_latency.csv` and `results/serve_durability.csv`.

use mrls_analysis::export::{fmt3, ResultTable};
use mrls_bench::emit;
use mrls_model::MoldableJob;
use mrls_serve::{Client, DurabilityMode, NaiveService, ServeConfig, Server, ServiceCore};
use mrls_sim::PolicyKind;
use mrls_workload::InstanceRecipe;
use std::time::{Duration, Instant};

const ARG_KEYS: &[&str] = &["jobs", "windows-ms", "rounds", "timing"];

/// Strict `key=value` lookup (same contract as the `mrls` CLI): unknown
/// keys, malformed tokens and unparsable values exit with code 2.
fn args() -> (usize, Vec<u64>, usize, bool) {
    let mut jobs = 120usize;
    let mut windows = vec![0u64, 10, 50];
    let mut rounds = 320usize;
    let mut timing = false;
    for a in std::env::args().skip(1) {
        let Some((k, v)) = a.split_once('=') else {
            eprintln!("malformed argument `{a}` (expected key=value)");
            std::process::exit(2);
        };
        if !ARG_KEYS.contains(&k) {
            eprintln!(
                "unknown key `{k}` (expected one of: {})",
                ARG_KEYS.join(", ")
            );
            std::process::exit(2);
        }
        match k {
            "jobs" => jobs = v.parse().unwrap_or_else(|_| invalid(k, v)),
            "rounds" => rounds = v.parse().unwrap_or_else(|_| invalid(k, v)),
            "timing" => timing = v.parse().unwrap_or_else(|_| invalid(k, v)),
            _ => {
                windows = v
                    .split(',')
                    .map(|w| w.parse().unwrap_or_else(|_| invalid(k, v)))
                    .collect();
            }
        }
    }
    (jobs.max(1), windows, rounds, timing)
}

fn invalid(k: &str, v: &str) -> ! {
    eprintln!("invalid value `{v}` for `{k}`");
    std::process::exit(2);
}

/// The `q`-quantile of a sample (nearest-rank on the sorted copy).
fn percentile(samples: &[Duration], q: f64) -> Duration {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn tcp_sweep(pool: &[MoldableJob], jobs: usize, windows: &[u64], timing: bool) {
    let mut table = ResultTable::new(&[
        "window_ms",
        "jobs",
        "rounds",
        "submit_per_s",
        "ttfp_ms",
        "submit_p50_us",
        "submit_p99_us",
        "timed_us_per_round",
        "virtual_makespan",
    ]);

    for &window_ms in windows {
        let handle = Server::spawn(
            ServeConfig {
                capacities: vec![8, 8],
                policy: PolicyKind::ReactiveList,
                batch_window: Duration::from_millis(window_ms),
                timing,
                ..ServeConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr(), "bench").expect("connect");

        // First submission, then poll until the service placed it: the
        // window is the dominant term of time-to-first-placement.
        let t0 = Instant::now();
        client.submit_job(pool[0].clone(), vec![]).expect("submit");
        let ttfp = loop {
            let status = client.status().expect("status");
            if status.jobs_scheduled >= 1 {
                break t0.elapsed();
            }
            std::thread::sleep(Duration::from_micros(200));
        };

        // Then the bulk of the stream, flat out, timing every round trip.
        let mut round_trips: Vec<Duration> = Vec::with_capacity(jobs.saturating_sub(1));
        let bulk = Instant::now();
        for job in pool.iter().skip(1).cloned() {
            let t = Instant::now();
            client.submit_job(job, vec![]).expect("submit");
            round_trips.push(t.elapsed());
        }
        let elapsed = bulk.elapsed().as_secs_f64().max(1e-9);
        let submit_per_s = (jobs.saturating_sub(1)) as f64 / elapsed;
        let (p50, p99) = if round_trips.is_empty() {
            (Duration::ZERO, Duration::ZERO)
        } else {
            (
                percentile(&round_trips, 0.5),
                percentile(&round_trips, 0.99),
            )
        };

        // With timing on, the service thread accumulated per-phase wall
        // clocks for every round since the last ttfp poll drained them; pull
        // them before the drain round so the column attributes the bulk
        // stream only. Off (the default) the snapshot's timings stay empty.
        let timings = if timing {
            client.status().expect("status").timings
        } else {
            Vec::new()
        };

        let report = client.drain().expect("drain");
        assert_eq!(
            report.completed, jobs as u64,
            "window {window_ms}ms: {} of {jobs} jobs completed",
            report.completed
        );
        assert!(report.feasible, "window {window_ms}ms: infeasible trace");
        client.shutdown().expect("shutdown");
        handle.join();

        // Per-phase instrumentation aggregate: total timed microseconds
        // across all phases, averaged over the bulk-stream rounds. Zero in
        // the default timing-off runs.
        let timed_us = timings.iter().map(|t| t.nanos).sum::<u64>() as f64 / 1e3;
        let timed_us_per_round = timed_us / (report.metrics.rounds.max(1)) as f64;
        if !timings.is_empty() {
            let detail: Vec<String> = timings
                .iter()
                .map(|t| {
                    format!(
                        "{} {:.1}us/{} calls",
                        t.phase,
                        t.nanos as f64 / 1e3,
                        t.calls
                    )
                })
                .collect();
            println!("         phases: {}", detail.join(", "));
        }

        println!(
            "window {window_ms:>3}ms  {jobs:>4} jobs  rounds {:>4}  {submit_per_s:>9.0} submit/s  \
             ttfp {:>7.2}ms  rt p50 {:>6.1}us p99 {:>7.1}us  timed {timed_us_per_round:>7.1}us/round  \
             makespan {:.2}",
            report.metrics.rounds,
            ttfp.as_secs_f64() * 1e3,
            p50.as_secs_f64() * 1e6,
            p99.as_secs_f64() * 1e6,
            report.virtual_makespan
        );
        table.push_row(vec![
            window_ms.to_string(),
            jobs.to_string(),
            report.metrics.rounds.to_string(),
            fmt3(submit_per_s),
            fmt3(ttfp.as_secs_f64() * 1e3),
            fmt3(p50.as_secs_f64() * 1e6),
            fmt3(p99.as_secs_f64() * 1e6),
            fmt3(timed_us_per_round),
            fmt3(report.virtual_makespan),
        ]);
    }

    emit("serve_throughput", &table);
}

/// A steady-state workload for the rounds sweep: short jobs that complete
/// within a few ticks of their round, so the pending backlog stays bounded
/// while the *history* grows with every round — the regime where the naive
/// path's O(history) world rebuild shows as linear per-round growth and the
/// incremental path stays flat. (Long jobs would grow the backlog itself,
/// and re-planning a growing backlog is O(backlog) on any path.)
fn steady_state_job(round: usize) -> MoldableJob {
    use mrls_model::ExecTimeSpec;
    MoldableJob::new(
        round,
        ExecTimeSpec::Constant {
            time: 0.5 + (round % 7) as f64 * 0.3,
        },
    )
}

/// Times `rounds` one-submission rounds against a service core, returning
/// the per-round flush latencies.
fn time_rounds<S, F>(core: &mut S, rounds: usize, mut step: F) -> Vec<Duration>
where
    F: FnMut(&mut S, MoldableJob) -> Duration,
{
    (0..rounds)
        .map(|r| step(core, steady_state_job(r)))
        .collect()
}

fn rounds_sweep(rounds: usize) {
    let config = ServeConfig {
        capacities: vec![8, 8],
        policy: PolicyKind::ReactiveList,
        ..ServeConfig::default()
    };
    let mut table = ResultTable::new(&[
        "path",
        "policy_instance",
        "rounds",
        "round_p50_us",
        "round_p99_us",
        "early_p50_us",
        "late_p50_us",
        "growth",
    ]);

    // The incremental core keeps ONE policy instance alive across rounds
    // (refreshed with `Policy::on_plan_update`); the naive reference builds
    // a fresh one per round. The column records which mode produced the
    // row, so regressions of the reused-instance path show up in the CSV
    // history: incremental `round_p50_us` must not exceed its pre-reuse
    // numbers (and stays flat where naive grows).
    let mut row = |path: &str, policy_instance: &str, times: Vec<Duration>, completed: u64| {
        assert_eq!(completed, rounds as u64, "{path}: all rounds must complete");
        let decile = (times.len() / 10).max(1);
        let early = percentile(&times[..decile], 0.5);
        let late = percentile(&times[times.len() - decile..], 0.5);
        let growth = late.as_secs_f64() / early.as_secs_f64().max(1e-9);
        println!(
            "{path:>11}  {rounds:>5} rounds  p50 {:>7.1}us  p99 {:>8.1}us  early {:>7.1}us  \
             late {:>8.1}us  growth {growth:>6.2}x  ({policy_instance} policy)",
            percentile(&times, 0.5).as_secs_f64() * 1e6,
            percentile(&times, 0.99).as_secs_f64() * 1e6,
            early.as_secs_f64() * 1e6,
            late.as_secs_f64() * 1e6,
        );
        table.push_row(vec![
            path.to_string(),
            policy_instance.to_string(),
            rounds.to_string(),
            fmt3(percentile(&times, 0.5).as_secs_f64() * 1e6),
            fmt3(percentile(&times, 0.99).as_secs_f64() * 1e6),
            fmt3(early.as_secs_f64() * 1e6),
            fmt3(late.as_secs_f64() * 1e6),
            fmt3(growth),
        ]);
    };

    let mut incremental = ServiceCore::new(config.clone());
    let times = time_rounds(&mut incremental, rounds, |core, job| {
        core.submit_job("bench", job, &[]).expect("submit");
        let t = Instant::now();
        core.flush().expect("round");
        t.elapsed()
    });
    let completed = incremental.drain().expect("drain").completed;
    row("incremental", "reused", times, completed);

    let mut naive = NaiveService::new(config);
    let times = time_rounds(&mut naive, rounds, |core, job| {
        core.submit_job("bench", job, &[]).expect("submit");
        let t = Instant::now();
        core.flush().expect("round");
        t.elapsed()
    });
    let completed = naive.drain().expect("drain").completed;
    row("naive", "per-round", times, completed);

    emit("serve_rounds_latency", &table);
}

/// One-submission rounds per durability mode, timing the submit+flush pair
/// (the submission carries the WAL append, the flush carries the round
/// marker and any due checkpoint).
fn durability_sweep(rounds: usize) {
    let mut table = ResultTable::new(&[
        "durability",
        "rounds",
        "checkpoint_every",
        "round_p50_us",
        "round_p99_us",
        "overhead_p50_pct",
        "submit_p50_us",
        "wal_bytes",
        "checkpoints",
    ]);
    let checkpoint_every = 32u64;
    let modes = [
        DurabilityMode::Off,
        DurabilityMode::Buffered,
        DurabilityMode::Fsync,
    ];
    // One core per mode, all alive at once: every round is driven through
    // every core back to back, so all three modes sample the same clock
    // frequency, cache state and background interference. Measuring the
    // modes sequentially instead lets minute-scale machine drift land
    // entirely on one mode and swing the overhead column by more than the
    // effect being measured.
    let mut cores = Vec::new();
    for mode in modes {
        let dir = (mode != DurabilityMode::Off).then(|| {
            std::env::temp_dir().join(format!(
                "mrls-bench-durability-{}-{}",
                mode.label(),
                std::process::id()
            ))
        });
        if let Some(d) = &dir {
            let _ = std::fs::remove_dir_all(d);
        }
        let config = ServeConfig {
            capacities: vec![8, 8],
            policy: PolicyKind::ReactiveList,
            durability: mode,
            dir: dir.clone(),
            checkpoint_every_rounds: checkpoint_every,
            ..ServeConfig::default()
        };
        let (core, _) = ServiceCore::open(config).expect("open durable core");
        let submits: Vec<Duration> = Vec::with_capacity(rounds * 4);
        let times: Vec<Duration> = Vec::with_capacity(rounds);
        cores.push((mode, dir, core, submits, times));
    }
    // Four-submission rounds: the batch-coalescing regime the serve tier
    // exists for. The durable flush appends ONE round marker regardless of
    // batch size, so this measures the constant per-round record cost
    // against a representative flush; the per-submission Job-record cost is
    // timed separately into `submit_p50_us`. The first rounds are untimed
    // warmup (cold caches, clock ramp-up).
    let batch = 4usize;
    let warmup = 64usize;
    for round in 0..warmup + rounds {
        for (_, _, core, submits, times) in &mut cores {
            for k in 0..batch {
                let job = steady_state_job(round * batch + k);
                let t = Instant::now();
                core.submit_job("bench", job, &[]).expect("submit");
                if round >= warmup {
                    submits.push(t.elapsed());
                }
            }
            let t = Instant::now();
            core.flush().expect("round");
            if round >= warmup {
                times.push(t.elapsed());
            }
        }
    }
    let mut off_p50 = None;
    for (mode, dir, mut core, submits, times) in cores {
        let status = core.durability_status();
        let completed = core.drain().expect("drain").completed;
        assert_eq!(
            completed,
            ((warmup + rounds) * batch) as u64,
            "{}: all submissions complete",
            mode.label()
        );
        if let Some(d) = &dir {
            let _ = std::fs::remove_dir_all(d);
        }

        let p50 = percentile(&times, 0.5).as_secs_f64() * 1e6;
        let p99 = percentile(&times, 0.99).as_secs_f64() * 1e6;
        let submit_p50 = percentile(&submits, 0.5).as_secs_f64() * 1e6;
        let base = *off_p50.get_or_insert(p50);
        let overhead_pct = (p50 / base.max(1e-9) - 1.0) * 100.0;
        println!(
            "{:>9}  {rounds:>5} rounds  round p50 {p50:>7.1}us  p99 {p99:>8.1}us  overhead {overhead_pct:>+6.1}%  \
             submit p50 {submit_p50:>6.1}us  wal {:>8} bytes  {} checkpoints",
            mode.label(),
            status.wal_bytes,
            status.checkpoints_written,
        );
        table.push_row(vec![
            mode.label().to_string(),
            rounds.to_string(),
            checkpoint_every.to_string(),
            fmt3(p50),
            fmt3(p99),
            fmt3(overhead_pct),
            fmt3(submit_p50),
            status.wal_bytes.to_string(),
            status.checkpoints_written.to_string(),
        ]);
    }
    emit("serve_durability", &table);
}

fn main() {
    let (jobs, windows, rounds, timing) = args();
    // A pool of singleton moldable jobs drawn from the standard mixed recipe.
    let pool = InstanceRecipe::default_layered(jobs, 2, 8)
        .generate(7)
        .instance
        .jobs;

    tcp_sweep(&pool, jobs, &windows, timing);
    if rounds > 0 {
        rounds_sweep(rounds);
        durability_sweep(rounds);
    }
}
